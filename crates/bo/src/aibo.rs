//! AIBO — Acquisition-function-maximiser Initialisation for Bayesian
//! Optimisation (thesis Ch. 4, Algorithm 1).
//!
//! Each iteration, every initialisation strategy (CMA-ES, GA, random, …)
//! generates `k` raw candidates from the *black-box history*; the top-`n` by
//! AF seed a gradient-based AF maximiser; the strategy whose refined
//! candidate has the highest AF wins and its point is evaluated; the
//! evaluated sample is told back to every heuristic.

use crate::acquisition::Acquisition;
use crate::heuristics::{AskTell, CmaEs, GaOpt, RandomOpt};
use crate::maximizer::{boltzmann_select, cmaes_on_af, gaussian_spray, top_n_by_af, GradMaximizer};
use crate::space::Bounds;
use citroen_gp::{Gp, GpConfig, Mat};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::SeedableRng;
use std::time::{Duration, Instant};

/// An AF-maximiser initialisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random candidates, top-n by AF (the standard-BO default).
    Random,
    /// GA candidate generator seeded/updated with the black-box history.
    Ga,
    /// CMA-ES candidate generator seeded/updated with the black-box history.
    CmaEs,
    /// Boltzmann sampling over random candidates (BoTorch default).
    Boltzmann,
    /// Gaussian spray around the incumbent best (Spearmint).
    GaussianSpray,
    /// Fresh CMA-ES run directly on the AF surface (no history).
    CmaesOnAf,
}

impl StrategyKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Random => "random",
            StrategyKind::Ga => "ga",
            StrategyKind::CmaEs => "cma-es",
            StrategyKind::Boltzmann => "boltzmann",
            StrategyKind::GaussianSpray => "gaussian-spray",
            StrategyKind::CmaesOnAf => "cmaes-on-af",
        }
    }
}

/// AIBO configuration (defaults follow thesis §4.3.2).
#[derive(Debug, Clone)]
pub struct AiboConfig {
    /// Acquisition function (default UCB with β = 1.96).
    pub af: Acquisition,
    /// Initialisation strategies run per iteration.
    pub strategies: Vec<StrategyKind>,
    /// Raw candidates per strategy (thesis k = 500).
    pub k: usize,
    /// Maximiser starts per strategy (thesis n = 1).
    pub n: usize,
    /// Initial uniform design size (thesis N = 50).
    pub init_samples: usize,
    /// GA population size (thesis 50).
    pub ga_pop: usize,
    /// CMA-ES initial standard deviation (thesis 0.2).
    pub cma_sigma: f64,
    /// Gradient maximiser; `None` reproduces AIBO-none (no refinement).
    pub maximizer: Option<GradMaximizer>,
    /// Batch size (points evaluated per iteration, constant-liar batching).
    pub batch: usize,
    /// Refit GP hyperparameters every this many iterations (warm-started
    /// refactorisation in between).
    pub fit_every: usize,
    /// Base GP configuration.
    pub gp: GpConfig,
    /// Record every refined candidate per iteration (Fig. 4.3 analysis).
    pub record_candidates: bool,
}

impl Default for AiboConfig {
    fn default() -> AiboConfig {
        AiboConfig {
            af: Acquisition::Ucb { beta: 1.96 },
            strategies: vec![StrategyKind::CmaEs, StrategyKind::Ga, StrategyKind::Random],
            k: 500,
            n: 1,
            init_samples: 50,
            ga_pop: 50,
            cma_sigma: 0.2,
            maximizer: Some(GradMaximizer::default()),
            batch: 1,
            fit_every: 4,
            gp: GpConfig::default(),
            record_candidates: false,
        }
    }
}

/// Per-iteration instrumentation (drives Figs. 4.8–4.10, 4.15).
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Index (into `strategies`) of the strategy whose candidate won on AF.
    pub winner: usize,
    /// AF value of each strategy's refined candidate.
    pub af: Vec<f64>,
    /// GP posterior mean of each strategy's candidate.
    pub post_mean: Vec<f64>,
    /// GP posterior variance of each strategy's candidate.
    pub post_var: Vec<f64>,
    /// GA population diversity at this iteration (0 when GA absent).
    pub ga_diversity: f64,
    /// All refined candidates (when `record_candidates`).
    pub candidates: Vec<Vec<f64>>,
}

/// Result of a BO run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Evaluated points (problem space).
    pub xs: Vec<Vec<f64>>,
    /// Observed objective values (minimised).
    pub ys: Vec<f64>,
    /// Best-so-far trace, one entry per evaluation.
    pub best_history: Vec<f64>,
    /// Per-iteration instrumentation (empty for the initial design).
    pub records: Vec<IterationRecord>,
    /// Pure algorithmic time (model fitting + AF maximisation), excluding
    /// objective evaluations — Table 4.2's metric.
    pub algo_time: Duration,
}

impl BoResult {
    /// Final best value.
    pub fn best(&self) -> f64 {
        self.best_history.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Run AIBO (or any of its ablations, depending on `cfg.strategies` and
/// `cfg.maximizer`) on `f`, minimising, for `budget` total evaluations.
pub fn run_aibo(
    bounds: &Bounds,
    cfg: &AiboConfig,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = bounds.dim();
    let mut xs_unit: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut best_history = Vec::new();
    let mut records = Vec::new();
    let mut algo_time = Duration::ZERO;

    // Heuristic state.
    let mut ga = GaOpt::new(d, cfg.ga_pop);
    let mut cma = CmaEs::new(vec![0.5; d], cfg.cma_sigma);
    let mut random = RandomOpt::new(d);

    // Initial design.
    let n0 = cfg.init_samples.min(budget).max(1);
    for _ in 0..n0 {
        let u = bounds.sample_unit(&mut rng);
        let y = f(&bounds.from_unit(&u));
        ga.tell(&u, y);
        cma.tell(&u, y);
        xs_unit.push(u);
        ys.push(y);
        best_history.push(ys.iter().cloned().fold(f64::INFINITY, f64::min));
    }

    let mut hypers = None;
    let mut iter = 0usize;
    while ys.len() < budget {
        let t0 = Instant::now();
        // 1. Fit the surrogate.
        let mut gpc = cfg.gp.clone();
        gpc.init = hypers.clone();
        if iter % cfg.fit_every != 0 && hypers.is_some() {
            gpc.fit_iters = 0;
        }
        let xmat = Mat::from_rows(xs_unit.clone());
        let gp = Gp::fit(xmat, &ys, gpc);
        hypers = Some(gp.hypers());
        let best_raw = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_z = gp.transform().forward(best_raw);
        let best_x = xs_unit[ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0]
            .clone();

        // 2..3. Per-strategy candidate generation, top-n, refinement.
        let mut per_strategy: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut all_candidates = Vec::new();
        for s in &cfg.strategies {
            let starts = match s {
                StrategyKind::Random => {
                    let raw = random.ask(&mut rng, cfg.k);
                    top_n_by_af(&gp, cfg.af, best_z, raw, cfg.n)
                }
                StrategyKind::Ga => {
                    let raw = ga.ask(&mut rng, cfg.k);
                    top_n_by_af(&gp, cfg.af, best_z, raw, cfg.n)
                }
                StrategyKind::CmaEs => {
                    let raw = cma.ask(&mut rng, cfg.k);
                    top_n_by_af(&gp, cfg.af, best_z, raw, cfg.n)
                }
                StrategyKind::Boltzmann => {
                    let raw = random.ask(&mut rng, cfg.k);
                    boltzmann_select(&gp, cfg.af, best_z, raw, cfg.n, &mut rng)
                }
                StrategyKind::GaussianSpray => {
                    let raw = gaussian_spray(&best_x, 0.1, cfg.k, &mut rng);
                    top_n_by_af(&gp, cfg.af, best_z, raw, cfg.n)
                }
                StrategyKind::CmaesOnAf => {
                    cmaes_on_af(&gp, cfg.af, best_z, d, cfg.k, cfg.n, &mut rng)
                }
            };
            let refined: Vec<(Vec<f64>, f64)> = match &cfg.maximizer {
                Some(gm) => gm.maximize(&gp, cfg.af, best_z, &starts),
                None => starts
                    .into_iter()
                    .map(|x| {
                        let a = cfg.af.eval(&gp, best_z, &x);
                        (x, a)
                    })
                    .collect(),
            };
            let best_for_strategy = refined
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .cloned()
                .unwrap_or_else(|| (bounds.sample_unit(&mut rng), f64::NEG_INFINITY));
            if cfg.record_candidates {
                all_candidates.extend(refined.iter().map(|(x, _)| x.clone()));
            }
            per_strategy.push(best_for_strategy);
        }

        // 4. Pick the overall winner.
        let winner = per_strategy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let record = IterationRecord {
            winner,
            af: per_strategy.iter().map(|(_, a)| *a).collect(),
            post_mean: per_strategy.iter().map(|(x, _)| gp.predict(x).0).collect(),
            post_var: per_strategy.iter().map(|(x, _)| gp.predict(x).1).collect(),
            ga_diversity: ga.population_diversity(),
            candidates: all_candidates,
        };
        algo_time += t0.elapsed();

        // 5. Evaluate the batch (constant liar for batch > 1: the remaining
        //    batch points come from re-ranking the other strategies).
        let mut batch_points = vec![per_strategy[winner].0.clone()];
        if cfg.batch > 1 {
            let mut others: Vec<(Vec<f64>, f64)> = per_strategy
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != winner)
                .map(|(_, c)| c.clone())
                .collect();
            others.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (x, _) in others.into_iter().take(cfg.batch - 1) {
                batch_points.push(x);
            }
            // Fill any remaining slots with fresh random probes.
            while batch_points.len() < cfg.batch {
                batch_points.push(bounds.sample_unit(&mut rng));
            }
        }
        for u in batch_points {
            if ys.len() >= budget {
                break;
            }
            let y = f(&bounds.from_unit(&u));
            ga.tell(&u, y);
            cma.tell(&u, y);
            random.tell(&u, y);
            xs_unit.push(u);
            ys.push(y);
            best_history.push(ys.iter().cloned().fold(f64::INFINITY, f64::min));
        }
        records.push(record);
        iter += 1;
    }

    BoResult {
        xs: xs_unit.iter().map(|u| bounds.from_unit(u)).collect(),
        ys,
        best_history,
        records,
        algo_time,
    }
}

/// Standard-BO variants of Ch. 4's baselines, expressed through AIBO's
/// configuration space.
pub mod presets {
    use super::*;

    /// `BO-grad`: random initialisation + gradient maximiser.
    pub fn bo_grad(k: usize, n: usize) -> AiboConfig {
        AiboConfig {
            strategies: vec![StrategyKind::Random],
            k,
            n,
            ..Default::default()
        }
    }

    /// `BO-random`: random sampling as the whole maximiser.
    pub fn bo_random(k: usize) -> AiboConfig {
        AiboConfig { strategies: vec![StrategyKind::Random], k, n: 1, maximizer: None, ..Default::default() }
    }

    /// `BO-es`: CMA-ES directly maximising the AF.
    pub fn bo_es(evals: usize) -> AiboConfig {
        AiboConfig {
            strategies: vec![StrategyKind::CmaesOnAf],
            k: evals,
            n: 1,
            maximizer: None,
            ..Default::default()
        }
    }

    /// `BO-cmaes_grad` (Fig. 4.13): CMA-ES on the AF, then gradient refine.
    pub fn bo_cmaes_grad(evals: usize) -> AiboConfig {
        AiboConfig { strategies: vec![StrategyKind::CmaesOnAf], k: evals, n: 1, ..Default::default() }
    }

    /// `BO-boltzmann_grad` (Fig. 4.13).
    pub fn bo_boltzmann_grad(k: usize) -> AiboConfig {
        AiboConfig { strategies: vec![StrategyKind::Boltzmann], k, n: 1, ..Default::default() }
    }

    /// `BO-Gaussian_grad` (Fig. 4.13).
    pub fn bo_gaussian_grad(k: usize) -> AiboConfig {
        AiboConfig { strategies: vec![StrategyKind::GaussianSpray], k, n: 1, ..Default::default() }
    }

    /// AIBO ablations (Fig. 4.12).
    pub fn aibo_variant(strategies: Vec<StrategyKind>) -> AiboConfig {
        AiboConfig { strategies, ..Default::default() }
    }
}

/// Pure random search over the bounds (baseline).
pub fn run_random_search(
    bounds: &Bounds,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut best_history = Vec::new();
    for _ in 0..budget {
        let u = bounds.sample_unit(&mut rng);
        let x = bounds.from_unit(&u);
        let y = f(&x);
        xs.push(x);
        ys.push(y);
        best_history.push(ys.iter().cloned().fold(f64::INFINITY, f64::min));
    }
    BoResult { xs, ys, best_history, records: Vec::new(), algo_time: Duration::ZERO }
}

/// Raw heuristic baselines (GA / CMA-ES applied directly to the objective,
/// Fig. 4.2a).
pub fn run_heuristic(
    bounds: &Bounds,
    which: StrategyKind,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = bounds.dim();
    let mut opt: Box<dyn AskTell> = match which {
        StrategyKind::Ga => Box::new(GaOpt::new(d, 50)),
        StrategyKind::CmaEs => Box::new(CmaEs::new(vec![0.5; d], 0.2)),
        _ => Box::new(RandomOpt::new(d)),
    };
    let mut xs = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut best_history = Vec::new();
    // Seed with a small random design so GA has a population.
    for _ in 0..(20.min(budget)) {
        let u = bounds.sample_unit(&mut rng);
        let y = f(&bounds.from_unit(&u));
        opt.tell(&u, y);
        xs.push(bounds.from_unit(&u));
        ys.push(y);
        best_history.push(ys.iter().cloned().fold(f64::INFINITY, f64::min));
    }
    while ys.len() < budget {
        let u = &opt.ask(&mut rng, 1)[0];
        let y = f(&bounds.from_unit(u));
        opt.tell(u, y);
        xs.push(bounds.from_unit(u));
        ys.push(y);
        best_history.push(ys.iter().cloned().fold(f64::INFINITY, f64::min));
    }
    BoResult { xs, ys, best_history, records: Vec::new(), algo_time: Duration::ZERO }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ackley(x: &[f64]) -> f64 {
        let d = x.len() as f64;
        let s1: f64 = x.iter().map(|v| v * v).sum::<f64>() / d;
        let s2: f64 =
            x.iter().map(|v| (2.0 * std::f64::consts::PI * v).cos()).sum::<f64>() / d;
        -20.0 * (-0.2 * s1.sqrt()).exp() - s2.exp() + 20.0 + std::f64::consts::E
    }

    fn small_cfg() -> AiboConfig {
        AiboConfig {
            k: 60,
            init_samples: 12,
            gp: GpConfig { fit_iters: 10, yeo_johnson: false, ..Default::default() },
            maximizer: Some(GradMaximizer { iters: 5, lr: 0.05 }),
            ..Default::default()
        }
    }

    #[test]
    fn aibo_beats_random_on_ackley10() {
        let bounds = Bounds::cube(10, -5.0, 10.0);
        let mut evals = |x: &[f64]| ackley(x);
        let aibo = run_aibo(&bounds, &small_cfg(), 1, 60, &mut evals);
        let mut evals2 = |x: &[f64]| ackley(x);
        let rnd = run_random_search(&bounds, 1, 60, &mut evals2);
        assert!(aibo.best() < rnd.best(), "aibo {} vs random {}", aibo.best(), rnd.best());
        // monotone best history
        assert!(aibo
            .best_history
            .windows(2)
            .all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(aibo.ys.len(), 60);
    }

    #[test]
    fn records_track_strategies() {
        let bounds = Bounds::cube(4, -2.0, 2.0);
        let mut evals = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let res = run_aibo(&bounds, &small_cfg(), 3, 30, &mut evals);
        assert!(!res.records.is_empty());
        for r in &res.records {
            assert_eq!(r.af.len(), 3);
            assert!(r.winner < 3);
            assert!(r.post_var.iter().all(|v| *v >= 0.0));
        }
        assert!(res.algo_time > Duration::ZERO);
    }

    #[test]
    fn batch_mode_fills_budget() {
        let bounds = Bounds::cube(3, 0.0, 1.0);
        let mut cfg = small_cfg();
        cfg.batch = 4;
        let mut evals = |x: &[f64]| x.iter().sum::<f64>();
        let res = run_aibo(&bounds, &cfg, 7, 40, &mut evals);
        assert_eq!(res.ys.len(), 40);
    }

    #[test]
    fn heuristic_baselines_run() {
        let bounds = Bounds::cube(6, -3.0, 3.0);
        for kind in [StrategyKind::Ga, StrategyKind::CmaEs] {
            let mut evals = |x: &[f64]| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
            let res = run_heuristic(&bounds, kind, 2, 80, &mut evals);
            assert_eq!(res.ys.len(), 80);
            assert!(res.best() < res.ys[0] + 1e-9);
        }
    }
}
