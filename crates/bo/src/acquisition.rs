//! Acquisition functions (thesis §2.1.2): UCB, EI, PI — analytic forms plus
//! Monte-Carlo batch estimates via the reparameterisation trick.
//!
//! Convention: the *objective is minimised*; all AFs are written so that
//! larger AF = more desirable query.

use citroen_gp::Gp;

/// Acquisition function choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Lower-confidence-bound style UCB for minimisation (thesis eq. 4.1):
    /// `α(x) = −μ(x) + √β·σ(x)`.
    Ucb {
        /// Exploration weight β.
        beta: f64,
    },
    /// Expected improvement over the incumbent.
    Ei,
    /// Probability of improvement over the incumbent.
    Pi,
}

impl Acquisition {
    /// Short display name (e.g. `UCB1.96`).
    pub fn name(&self) -> String {
        match self {
            Acquisition::Ucb { beta } => format!("UCB{beta}"),
            Acquisition::Ei => "EI".into(),
            Acquisition::Pi => "PI".into(),
        }
    }

    /// Evaluate the AF at `x` (unit space) given the GP and the incumbent
    /// best value `best_z` in *model (transformed) space*.
    pub fn eval(&self, gp: &Gp, best_z: f64, x: &[f64]) -> f64 {
        citroen_telemetry::counter("acq.evals", 1);
        let (mu, var) = gp.predict(x);
        let sd = var.sqrt();
        match self {
            Acquisition::Ucb { beta } => -mu + beta.sqrt() * sd,
            Acquisition::Ei => {
                if sd < 1e-12 {
                    return (best_z - mu).max(0.0);
                }
                let z = (best_z - mu) / sd;
                sd * (z * normal_cdf(z) + normal_pdf(z))
            }
            Acquisition::Pi => {
                if sd < 1e-12 {
                    return if mu < best_z { 1.0 } else { 0.0 };
                }
                normal_cdf((best_z - mu) / sd)
            }
        }
    }

    /// Monte-Carlo estimate of the batch AF over a set of points (thesis
    /// §2.1.2, qEI/qUCB): draws `eps` (pre-sampled standard normals, one row
    /// of `q` values per MC sample) and averages the per-sample utility.
    ///
    /// For independence-approximated posteriors (diagonal covariance), which
    /// is what our greedy batch construction uses.
    pub fn mc_eval_batch(&self, gp: &Gp, best_z: f64, xs: &[Vec<f64>], eps: &[Vec<f64>]) -> f64 {
        let q = xs.len();
        let stats: Vec<(f64, f64)> = xs.iter().map(|x| gp.predict(x)).collect();
        let mut total = 0.0;
        for e in eps {
            let mut util = f64::NEG_INFINITY;
            for j in 0..q {
                let (mu, var) = stats[j];
                let y = mu + var.sqrt() * e[j];
                let u = match self {
                    Acquisition::Ucb { beta } => {
                        // qUCB reparameterisation (Wilson et al.): μ + √(βπ/2)·|γ|
                        let gamma = var.sqrt() * e[j];
                        -(mu) + (beta * std::f64::consts::PI / 2.0).sqrt() * gamma.abs()
                    }
                    Acquisition::Ei => (best_z - y).max(0.0),
                    Acquisition::Pi => {
                        if y < best_z {
                            1.0
                        } else {
                            0.0
                        }
                    }
                };
                util = util.max(u);
            }
            total += util;
        }
        total / eps.len() as f64
    }
}

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF (Abramowitz–Stegun style erf approximation).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Numerical Recipes 6.2.2-style approximation, |err| < 1.2e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.5 * x);
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    sign * (1.0 - tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_gp::{Gp, GpConfig, Mat};

    fn toy_gp() -> Gp {
        let x = Mat::from_rows(vec![vec![0.0], vec![0.25], vec![0.5], vec![0.75], vec![1.0]]);
        let y = vec![1.0, 0.2, 0.0, 0.3, 1.1];
        Gp::fit(x, &y, GpConfig { yeo_johnson: false, ..Default::default() })
    }

    #[test]
    fn cdf_pdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_pdf(0.0) - 0.3989).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-12);
    }

    #[test]
    fn ei_positive_and_zero_far_above_incumbent() {
        let gp = toy_gp();
        let best = gp.transform().forward(0.0);
        // EI is non-negative everywhere and nearly zero where the posterior
        // mean is far above the incumbent.
        for q in [0.0f64, 0.3, 0.5, 0.62, 0.9] {
            assert!(Acquisition::Ei.eval(&gp, best, &[q]) >= 0.0);
        }
        let ei_bad = Acquisition::Ei.eval(&gp, best, &[0.98]); // μ ≈ 1.1
        let ei_promising = Acquisition::Ei.eval(&gp, best, &[0.55]);
        assert!(ei_promising > ei_bad, "promising {ei_promising} vs bad {ei_bad}");
    }

    #[test]
    fn ucb_beta_trades_exploration() {
        let gp = toy_gp();
        let best = 0.0;
        // At a high-uncertainty point, a bigger β gives a bigger AF.
        let q = [0.62];
        let a1 = Acquisition::Ucb { beta: 1.0 }.eval(&gp, best, &q);
        let a9 = Acquisition::Ucb { beta: 9.0 }.eval(&gp, best, &q);
        assert!(a9 > a1);
    }

    #[test]
    fn mc_batch_prefers_diverse_batches() {
        let gp = toy_gp();
        let best = gp.transform().forward(0.0);
        // Fixed MC draws.
        let eps: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let z = ((i % 8) as f64 - 3.5) / 2.0;
                vec![z, -z]
            })
            .collect();
        let dup = Acquisition::Ei.mc_eval_batch(&gp, best, &[vec![0.6], vec![0.6]], &eps);
        let div = Acquisition::Ei.mc_eval_batch(&gp, best, &[vec![0.6], vec![0.35]], &eps);
        assert!(div >= dup * 0.99, "diverse {div} vs duplicated {dup}");
    }
}
