//! Heuristic black-box optimisers with ask/tell interfaces (thesis §2.2):
//! a genetic algorithm (tournament selection, SBX crossover, polynomial
//! mutation — the pymoo defaults of §4.3.2), CMA-ES (full covariance
//! adaptation with CSA step-size control), and the discrete 1+λ evolution
//! strategy used for pass-sequence generation in Chapter 5.
//!
//! In AIBO these never optimise the objective themselves; their candidate
//! generators seed the acquisition-function maximiser, and the AF-chosen
//! evaluated sample is *told* back (Fig. 4.2c).

use citroen_gp::Mat;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::Rng;

/// Ask/tell interface over the continuous unit cube (minimisation).
pub trait AskTell {
    /// Generate `k` candidate points.
    fn ask(&mut self, rng: &mut StdRng, k: usize) -> Vec<Vec<f64>>;
    /// Report an evaluated sample.
    fn tell(&mut self, x: &[f64], y: f64);
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Genetic algorithm
// ---------------------------------------------------------------------------

/// Genetic algorithm state.
pub struct GaOpt {
    dim: usize,
    pop_size: usize,
    /// `(x, fitness)` sorted ascending by fitness (best first).
    pop: Vec<(Vec<f64>, f64)>,
    /// SBX distribution index.
    eta_x: f64,
    /// Polynomial-mutation distribution index.
    eta_m: f64,
    /// Crossover probability (pymoo default 0.5 per thesis §4.3.2).
    pub crossover_prob: f64,
}

impl GaOpt {
    /// GA over `dim` dimensions with the given population size.
    pub fn new(dim: usize, pop_size: usize) -> GaOpt {
        GaOpt { dim, pop_size: pop_size.max(2), pop: Vec::new(), eta_x: 15.0, eta_m: 20.0, crossover_prob: 0.5 }
    }

    /// Seed the population with evaluated points.
    pub fn seed(&mut self, points: &[(Vec<f64>, f64)]) {
        for (x, y) in points {
            self.tell(x, *y);
        }
    }

    fn tournament<'a>(&'a self, rng: &mut StdRng) -> &'a [f64] {
        let a = rng.gen_range(0..self.pop.len());
        let b = rng.gen_range(0..self.pop.len());
        // pop is sorted best-first, so the smaller index wins.
        let w = a.min(b);
        &self.pop[w].0
    }

    fn sbx(&self, rng: &mut StdRng, p1: &[f64], p2: &[f64]) -> Vec<f64> {
        let mut child = vec![0.0; self.dim];
        for i in 0..self.dim {
            if rng.gen_bool(self.crossover_prob) {
                let u: f64 = rng.gen_range(0.0..1.0);
                let beta = if u <= 0.5 {
                    (2.0 * u).powf(1.0 / (self.eta_x + 1.0))
                } else {
                    (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (self.eta_x + 1.0))
                };
                let c = 0.5 * ((1.0 + beta) * p1[i] + (1.0 - beta) * p2[i]);
                child[i] = c.clamp(0.0, 1.0);
            } else {
                child[i] = p1[i];
            }
        }
        child
    }

    fn mutate(&self, rng: &mut StdRng, x: &mut [f64]) {
        let pm = 1.0 / self.dim as f64;
        for v in x.iter_mut() {
            if rng.gen_bool(pm) {
                let u: f64 = rng.gen_range(0.0..1.0);
                let delta = if u < 0.5 {
                    (2.0 * u).powf(1.0 / (self.eta_m + 1.0)) - 1.0
                } else {
                    1.0 - (2.0 * (1.0 - u)).powf(1.0 / (self.eta_m + 1.0))
                };
                *v = (*v + delta).clamp(0.0, 1.0);
            }
        }
    }

    /// Current population diversity: mean pairwise Euclidean distance
    /// (Fig. 4.15's metric).
    pub fn population_diversity(&self) -> f64 {
        let n = self.pop.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut pairs = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                let d: f64 = self.pop[i]
                    .0
                    .iter()
                    .zip(&self.pop[j].0)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                total += d;
                pairs += 1.0;
            }
        }
        total / pairs
    }
}

impl AskTell for GaOpt {
    fn ask(&mut self, rng: &mut StdRng, k: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|_| {
                if self.pop.len() < 2 {
                    return (0..self.dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                }
                let p1 = self.tournament(rng).to_vec();
                let p2 = self.tournament(rng).to_vec();
                let mut child = self.sbx(rng, &p1, &p2);
                self.mutate(rng, &mut child);
                child
            })
            .collect()
    }

    fn tell(&mut self, x: &[f64], y: f64) {
        let pos = self.pop.partition_point(|(_, f)| *f <= y);
        self.pop.insert(pos, (x.to_vec(), y));
        self.pop.truncate(self.pop_size);
    }

    fn name(&self) -> &'static str {
        "ga"
    }
}

// ---------------------------------------------------------------------------
// CMA-ES
// ---------------------------------------------------------------------------

/// CMA-ES state (thesis §2.2.2, eqs. 2.7–2.12), adapted to the one-sample-
/// per-iteration regime of AIBO by buffering told samples into generations.
pub struct CmaEs {
    dim: usize,
    mean: Vec<f64>,
    sigma: f64,
    c: Mat,
    // Eigen decomposition cache: C = B diag(D²) Bᵀ.
    b: Mat,
    d: Vec<f64>,
    eigen_stale: usize,
    p_sigma: Vec<f64>,
    p_c: Vec<f64>,
    // Strategy parameters.
    lambda: usize,
    mu: usize,
    weights: Vec<f64>,
    mueff: f64,
    cc: f64,
    cs: f64,
    c1: f64,
    cmu: f64,
    damps: f64,
    chi_n: f64,
    /// Buffer of told samples for the next generation update.
    gen_buf: Vec<(Vec<f64>, f64)>,
    generation: u64,
}

impl CmaEs {
    /// New CMA-ES centred at `mean0` with initial step size `sigma0`
    /// (thesis default 0.2 on the unit cube).
    pub fn new(mean0: Vec<f64>, sigma0: f64) -> CmaEs {
        let n = mean0.len();
        let nf = n as f64;
        let lambda = 4 + (3.0 * nf.ln()).floor() as usize;
        let mu = lambda / 2;
        let mut weights: Vec<f64> =
            (0..mu).map(|i| ((mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).max(0.0)).collect();
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        let mueff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let cc = (4.0 + mueff / nf) / (nf + 4.0 + 2.0 * mueff / nf);
        let cs = (mueff + 2.0) / (nf + mueff + 5.0);
        let c1 = 2.0 / ((nf + 1.3) * (nf + 1.3) + mueff);
        let cmu = (1.0 - c1)
            .min(2.0 * (mueff - 2.0 + 1.0 / mueff) / ((nf + 2.0) * (nf + 2.0) + mueff));
        let damps = 1.0 + 2.0 * ((mueff - 1.0) / (nf + 1.0)).sqrt().max(0.0) + cs;
        let chi_n = nf.sqrt() * (1.0 - 1.0 / (4.0 * nf) + 1.0 / (21.0 * nf * nf));
        CmaEs {
            dim: n,
            mean: mean0,
            sigma: sigma0,
            c: Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 }),
            b: Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 }),
            d: vec![1.0; n],
            eigen_stale: 0,
            p_sigma: vec![0.0; n],
            p_c: vec![0.0; n],
            lambda,
            mu,
            weights,
            mueff,
            cc,
            cs,
            c1,
            cmu,
            damps,
            chi_n,
            gen_buf: Vec::new(),
            generation: 0,
        }
    }

    /// Current step size.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Current mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    fn refresh_eigen(&mut self) {
        let (b, d2) = jacobi_eigen(&self.c, 8);
        self.b = b;
        self.d = d2.iter().map(|&v| v.max(1e-20).sqrt()).collect();
        self.eigen_stale = 0;
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        let n = self.dim;
        let z: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
        // x = m + σ · B · (D ∘ z)
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = 0.0;
            for (j, zj) in z.iter().enumerate() {
                s += self.b.get(i, j) * self.d[j] * zj;
            }
            y[i] = s;
        }
        (0..n).map(|i| (self.mean[i] + self.sigma * y[i]).clamp(0.0, 1.0)).collect()
    }

    /// One full CMA update from a ranked generation (best first).
    fn update_generation(&mut self) {
        let n = self.dim;
        let mut generation = std::mem::take(&mut self.gen_buf);
        generation.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        generation.truncate(self.mu);
        let old_mean = self.mean.clone();
        // New mean (eq. 2.8).
        let mut new_mean = vec![0.0; n];
        for (k, (x, _)) in generation.iter().enumerate() {
            for i in 0..n {
                new_mean[i] += self.weights[k] * x[i];
            }
        }
        // Handle short generations (fewer than mu points told).
        if generation.len() < self.mu {
            let scale: f64 = self.weights[..generation.len()].iter().sum();
            if scale > 1e-12 {
                for v in &mut new_mean {
                    *v /= scale;
                }
            } else {
                new_mean = old_mean.clone();
            }
        }
        self.mean = new_mean;

        // C^{-1/2} (m' - m)/σ  via the eigen cache.
        let delta: Vec<f64> =
            (0..n).map(|i| (self.mean[i] - old_mean[i]) / self.sigma.max(1e-12)).collect();
        let mut cinv_half_delta = vec![0.0; n];
        // C^{-1/2} = B D^{-1} Bᵀ
        let mut tmp = vec![0.0; n];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..n {
                s += self.b.get(i, j) * delta[i];
            }
            tmp[j] = s / self.d[j].max(1e-12);
        }
        for i in 0..n {
            let mut s = 0.0;
            for (j, t) in tmp.iter().enumerate() {
                s += self.b.get(i, j) * t;
            }
            cinv_half_delta[i] = s;
        }

        // Evolution paths (eqs. 2.9, 2.11).
        let cs = self.cs;
        let norm_fac = (cs * (2.0 - cs) * self.mueff).sqrt();
        for i in 0..n {
            self.p_sigma[i] = (1.0 - cs) * self.p_sigma[i] + norm_fac * cinv_half_delta[i];
        }
        let ps_norm: f64 = self.p_sigma.iter().map(|v| v * v).sum::<f64>().sqrt();
        let hsig = ps_norm
            / (1.0 - (1.0 - cs).powi(2 * (self.generation as i32 + 1))).sqrt()
            / self.chi_n
            < 1.4 + 2.0 / (n as f64 + 1.0);
        let cc = self.cc;
        let ccf = (cc * (2.0 - cc) * self.mueff).sqrt();
        for i in 0..n {
            self.p_c[i] =
                (1.0 - cc) * self.p_c[i] + if hsig { ccf * delta[i] } else { 0.0 };
        }

        // Covariance update (eq. 2.12): rank-one + rank-mu.
        let c1 = self.c1;
        let cmu = self.cmu;
        let keep = 1.0 - c1 - cmu;
        for i in 0..n {
            for j in 0..n {
                let mut v = keep * self.c.get(i, j) + c1 * self.p_c[i] * self.p_c[j];
                for (k, (x, _)) in generation.iter().enumerate() {
                    let yi = (x[i] - old_mean[i]) / self.sigma.max(1e-12);
                    let yj = (x[j] - old_mean[j]) / self.sigma.max(1e-12);
                    v += cmu * self.weights[k] * yi * yj;
                }
                self.c.set(i, j, v);
            }
        }

        // Step size (eq. 2.10).
        self.sigma *= ((cs / self.damps) * (ps_norm / self.chi_n - 1.0)).exp();
        self.sigma = self.sigma.clamp(1e-8, 2.0);
        self.generation += 1;
        self.eigen_stale += 1;
        if self.eigen_stale >= (1 + self.dim / 10).min(10) {
            self.refresh_eigen();
        }
    }
}

impl AskTell for CmaEs {
    fn ask(&mut self, rng: &mut StdRng, k: usize) -> Vec<Vec<f64>> {
        (0..k).map(|_| self.sample(rng)).collect()
    }

    fn tell(&mut self, x: &[f64], y: f64) {
        self.gen_buf.push((x.to_vec(), y));
        if self.gen_buf.len() >= self.lambda {
            self.update_generation();
        }
    }

    fn name(&self) -> &'static str {
        "cma-es"
    }
}

/// Pure random search (the default AF-maximiser initialisation in most BO
/// packages, and the exploration backstop inside AIBO).
pub struct RandomOpt {
    dim: usize,
}

impl RandomOpt {
    /// Random search over `dim` dimensions.
    pub fn new(dim: usize) -> RandomOpt {
        RandomOpt { dim }
    }
}

impl AskTell for RandomOpt {
    fn ask(&mut self, rng: &mut StdRng, k: usize) -> Vec<Vec<f64>> {
        (0..k).map(|_| (0..self.dim).map(|_| rng.gen_range(0.0..1.0)).collect()).collect()
    }
    fn tell(&mut self, _x: &[f64], _y: f64) {}
    fn name(&self) -> &'static str {
        "random"
    }
}

// ---------------------------------------------------------------------------
// Discrete 1+λ evolution strategy
// ---------------------------------------------------------------------------

/// Discrete 1+λ ES over fixed-length sequences from an alphabet of size
/// `choices` (thesis §2.2.3) — CITROEN's pass-sequence generator substrate.
#[derive(Debug, Clone)]
pub struct DiscreteOneLambda {
    /// Sequence length.
    pub len: usize,
    /// Alphabet size (number of passes).
    pub choices: usize,
    /// Current incumbent genome.
    pub incumbent: Vec<u16>,
    /// Incumbent fitness (minimised); `None` until first tell.
    pub best: Option<f64>,
    /// Per-position mutation probability.
    pub mutation_rate: f64,
    /// Probability that a mutation step also swaps a random segment.
    pub swap_prob: f64,
}

impl DiscreteOneLambda {
    /// Fresh incumbent drawn uniformly.
    pub fn new(len: usize, choices: usize, rng: &mut StdRng) -> DiscreteOneLambda {
        let incumbent = (0..len).map(|_| rng.gen_range(0..choices) as u16).collect();
        DiscreteOneLambda {
            len,
            choices,
            incumbent,
            best: None,
            mutation_rate: 2.0 / len as f64,
            swap_prob: 0.3,
        }
    }

    /// Generate `k` mutants of the incumbent.
    pub fn ask(&self, rng: &mut StdRng, k: usize) -> Vec<Vec<u16>> {
        (0..k).map(|_| self.mutate(rng)).collect()
    }

    /// One mutant: point substitutions plus an occasional segment swap
    /// (order matters in phase ordering, so swaps explore reorderings).
    pub fn mutate(&self, rng: &mut StdRng) -> Vec<u16> {
        let mut g = self.incumbent.clone();
        let mut changed = false;
        for v in g.iter_mut() {
            if rng.gen_bool(self.mutation_rate.clamp(0.0, 1.0)) {
                // Substitute with a *different* symbol.
                let nv = rng.gen_range(0..self.choices.max(2) - 1) as u16;
                *v = if nv >= *v { nv + 1 } else { nv } % self.choices as u16;
                changed = true;
            }
        }
        if rng.gen_bool(self.swap_prob) && self.len >= 2 {
            let a = rng.gen_range(0..self.len);
            let b = rng.gen_range(0..self.len);
            if a != b && g[a] != g[b] {
                g.swap(a, b);
                changed = true;
            }
        }
        if !changed {
            let i = rng.gen_range(0..self.len);
            g[i] = (g[i] + 1) % self.choices as u16;
        }
        g
    }

    /// Report an evaluated genome; adopts it if it improves the incumbent.
    pub fn tell(&mut self, g: &[u16], y: f64) {
        if self.best.map(|b| y < b).unwrap_or(true) {
            self.best = Some(y);
            self.incumbent = g.to_vec();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared numerics
// ---------------------------------------------------------------------------

/// Box–Muller standard normal.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns `(B, d)`
/// with `A ≈ B diag(d) Bᵀ`, eigenvectors in columns of `B`.
pub fn jacobi_eigen(a: &Mat, sweeps: usize) -> (Mat, Vec<f64>) {
    let n = a.rows;
    let mut m = a.clone();
    let mut v = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for _ in 0..sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let d = (0..n).map(|i| m.get(i, i)).collect();
    (v, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_rt::rng::SeedableRng;

    fn sphere(x: &[f64]) -> f64 {
        // minimum at 0.7 per dimension
        x.iter().map(|v| (v - 0.7) * (v - 0.7)).sum()
    }

    #[test]
    fn jacobi_diagonalises() {
        let a = Mat::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.2],
            vec![0.5, -0.2, 2.0],
        ]);
        let (b, d) = jacobi_eigen(&a, 12);
        // Reconstruct A = B diag(d) Bᵀ.
        for i in 0..3 {
            for j in 0..3 {
                let r: f64 = (0..3).map(|k| b.get(i, k) * d[k] * b.get(j, k)).sum();
                assert!((r - a.get(i, j)).abs() < 1e-8, "({i},{j})");
            }
        }
        // Trace preserved.
        let tr: f64 = d.iter().sum();
        assert!((tr - 9.0).abs() < 1e-8);
    }

    #[test]
    fn ga_improves_on_sphere() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ga = GaOpt::new(6, 20);
        // seed with random points
        for _ in 0..20 {
            let x: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y = sphere(&x);
            ga.tell(&x, y);
        }
        let before = ga.pop[0].1;
        for _ in 0..300 {
            let xs = ga.ask(&mut rng, 1);
            let y = sphere(&xs[0]);
            ga.tell(&xs[0], y);
        }
        let after = ga.pop[0].1;
        assert!(after < before * 0.2, "GA did not improve: {before} -> {after}");
        assert!(ga.population_diversity() >= 0.0);
    }

    #[test]
    fn cmaes_converges_on_sphere() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut es = CmaEs::new(vec![0.5; 8], 0.2);
        let mut best = f64::INFINITY;
        for _ in 0..600 {
            let xs = es.ask(&mut rng, 1);
            let y = sphere(&xs[0]);
            best = best.min(y);
            es.tell(&xs[0], y);
        }
        assert!(best < 0.01, "CMA-ES best {best}");
        // Mean should drift toward the optimum at 0.7.
        let drift: f64 =
            es.mean().iter().map(|m| (m - 0.7).abs()).sum::<f64>() / es.mean().len() as f64;
        assert!(drift < 0.25, "mean drift {drift}");
    }

    #[test]
    fn cmaes_sigma_adapts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut es = CmaEs::new(vec![0.7; 4], 0.2);
        for _ in 0..400 {
            let xs = es.ask(&mut rng, 1);
            let y = sphere(&xs[0]);
            es.tell(&xs[0], y);
        }
        // Near the optimum the step size should have shrunk.
        assert!(es.sigma() < 0.2, "sigma {}", es.sigma());
    }

    #[test]
    fn des_keeps_best_incumbent() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut des = DiscreteOneLambda::new(16, 8, &mut rng);
        // Fitness: count of positions equal to 3 (minimise negative count).
        let fit = |g: &[u16]| -(g.iter().filter(|&&v| v == 3).count() as f64);
        let mut best = f64::INFINITY;
        for _ in 0..400 {
            let muts = des.ask(&mut rng, 4);
            for g in muts {
                let y = fit(&g);
                best = best.min(y);
                des.tell(&g, y);
            }
        }
        assert!(best <= -10.0, "DES should pack 3s, best {best}");
        assert_eq!(des.best, Some(best));
    }

    #[test]
    fn des_mutants_differ_from_incumbent() {
        let mut rng = StdRng::seed_from_u64(2);
        let des = DiscreteOneLambda::new(24, 16, &mut rng);
        for g in des.ask(&mut rng, 10) {
            assert_eq!(g.len(), 24);
            assert!(g != des.incumbent || des.incumbent.is_empty());
        }
    }
}
