//! Continuous box search spaces. BO internals operate on the unit cube; the
//! bounds map to/from problem space (thesis §4.3.2 "we re-scale the input
//! domain to `[0,1]^d`").

use citroen_rt::rng::Rng;

/// A box-bounded continuous search space.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Lower bound per dimension.
    pub lo: Vec<f64>,
    /// Upper bound per dimension.
    pub hi: Vec<f64>,
}

impl Bounds {
    /// Uniform bounds `[lo, hi]^d`.
    pub fn cube(d: usize, lo: f64, hi: f64) -> Bounds {
        assert!(hi > lo);
        Bounds { lo: vec![lo; d], hi: vec![hi; d] }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Map a unit-cube point into problem space.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        u.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&ui, (&l, &h))| l + ui.clamp(0.0, 1.0) * (h - l))
            .collect()
    }

    /// Map a problem-space point into the unit cube.
    pub fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&xi, (&l, &h))| ((xi - l) / (h - l)).clamp(0.0, 1.0))
            .collect()
    }

    /// Sample a uniform point in the unit cube.
    pub fn sample_unit(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.dim()).map(|_| rng.gen_range(0.0..1.0)).collect()
    }
}

/// Clamp a unit-cube point in place.
pub fn clamp_unit(x: &mut [f64]) {
    for v in x {
        *v = v.clamp(0.0, 1.0);
    }
}

/// Oracle-driven pass-sequence canonicalisation.
///
/// The discrete face of the search space: genomes decode to pass sequences,
/// and the precondition oracle proves some passes statically dead
/// (`CannotFire`) on the module being tuned. Dropping those passes maps many
/// raw genomes onto one canonical sequence, turning duplicate candidate
/// evaluations into compile-cache hits without changing what any candidate
/// compiles to.
///
/// Deliberately dependency-free (plain indices + bitmasks) so `citroen-bo`
/// needs no view of the pass registry: callers supply `dead[p]` (the oracle
/// verdict for pass `p` on the *source* module) and `enables[p]` (bit `q`
/// set iff running `p` was observed to wake `q`, from the pass-interaction
/// graph). A dead pass is only dropped while no earlier *kept* pass is known
/// to enable it — the interaction graph over-approximates enablement, so
/// pruning stays conservative as the module evolves down the sequence.
#[derive(Debug, Clone)]
pub struct SeqCanonicalizer {
    /// Per-pass: statically dead on the module being tuned.
    pub dead: Vec<bool>,
    /// Per-pass: bitmask of the passes it may enable (≤64 passes).
    pub enables: Vec<u64>,
    /// Per-pass: idempotent — running it twice back-to-back is provably the
    /// same as running it once, so immediate duplicates collapse. Defaults to
    /// all-false ([`SeqCanonicalizer::new`]); opt in via
    /// [`SeqCanonicalizer::with_idempotence`].
    pub idem: Vec<bool>,
    /// Per-pass: work classes whose presence is necessary for the pass to
    /// fire (`None` = unknown, never dropped). Empty unless
    /// [`SeqCanonicalizer::with_subsumption`] opted in.
    pub fires_on: Vec<Option<u64>>,
    /// Per-pass: work classes provably absent after the pass runs.
    pub clears: Vec<u64>,
    /// Per-pass: work classes the pass may create.
    pub produces: Vec<u64>,
}

impl SeqCanonicalizer {
    /// Build from the oracle dead-mask and the interaction graph's
    /// enables-mask. Both are indexed by pass id; 64 passes max (bitmask).
    pub fn new(dead: Vec<bool>, enables: Vec<u64>) -> SeqCanonicalizer {
        assert_eq!(dead.len(), enables.len(), "masks must cover the same passes");
        assert!(dead.len() <= 64, "bitmask form limited to 64 passes");
        let idem = vec![false; dead.len()];
        SeqCanonicalizer {
            dead,
            enables,
            idem,
            fires_on: Vec::new(),
            clears: Vec::new(),
            produces: Vec::new(),
        }
    }

    /// Add an idempotence mask (from `Registry::idempotent_mask`): immediate
    /// duplicate runs of pass `p` with `idem[p]` collapse to one run during
    /// canonicalisation. The collapse is local — `p, q, p` is untouched,
    /// because `q` may re-create work for `p`.
    pub fn with_idempotence(mut self, idem: Vec<bool>) -> SeqCanonicalizer {
        assert_eq!(idem.len(), self.dead.len(), "masks must cover the same passes");
        self.idem = idem;
        self
    }

    /// Add the work-class subsumption model (from the registry or a persisted
    /// interaction graph). Canonicalisation then tracks the set of work
    /// classes that may still be present down the kept sequence —
    /// `maybe' = (maybe | produces[p]) & !clears[p]`, clears winning because
    /// it is a postcondition — and drops pass `q` wherever its fire mask is
    /// known and disjoint from that set. This generalises both the
    /// idempotence collapse (`p, p` — `p` clears its own fire bit) and the
    /// `p, q, p` pattern (when `q` neither produces nor re-enables `p`'s
    /// work). Every drop is a theorem fuzz-checked by
    /// `citroen-analyze subsume`.
    pub fn with_subsumption(
        mut self,
        fires_on: Vec<Option<u64>>,
        clears: Vec<u64>,
        produces: Vec<u64>,
    ) -> SeqCanonicalizer {
        assert_eq!(fires_on.len(), self.dead.len(), "masks must cover the same passes");
        assert_eq!(clears.len(), self.dead.len(), "masks must cover the same passes");
        assert_eq!(produces.len(), self.dead.len(), "masks must cover the same passes");
        self.fires_on = fires_on;
        self.clears = clears;
        self.produces = produces;
        self
    }

    /// A canonicalizer that never drops anything (oracle disabled / unknown).
    pub fn identity(n_passes: usize) -> SeqCanonicalizer {
        SeqCanonicalizer::new(vec![false; n_passes], vec![0; n_passes])
    }

    /// Whether canonicalisation can ever change a sequence.
    pub fn is_identity(&self) -> bool {
        !self.dead.iter().any(|&d| d)
            && !self.idem.iter().any(|&i| i)
            && !self.fires_on.iter().any(|f| f.is_some())
    }

    /// Canonicalise `seq` (pass indices): drop pass `p` at each position iff
    /// it is statically dead *and* no earlier kept pass may have woken it, or
    /// it is idempotent and the previous *kept* pass was `p` itself, or the
    /// subsumption dataflow proves every work class it fires on is absent.
    pub fn canonicalize(&self, seq: &[usize]) -> Vec<usize> {
        let mut woken = 0u64;
        // Work classes that may still be present. Unknown at sequence start:
        // everything. Only kept passes update it — a dropped pass provably
        // changed nothing.
        let mut maybe = u64::MAX;
        let subsume = !self.fires_on.is_empty();
        let mut out: Vec<usize> = Vec::with_capacity(seq.len());
        let (mut dead_dropped, mut idem_collapsed, mut subsume_dropped) = (0u64, 0u64, 0u64);
        for &p in seq {
            debug_assert!(p < self.dead.len(), "pass index out of range");
            if self.dead[p] && woken & (1 << p) == 0 {
                dead_dropped += 1;
                continue;
            }
            if self.idem[p] && out.last() == Some(&p) {
                idem_collapsed += 1;
                continue;
            }
            if subsume {
                if let Some(fires) = self.fires_on[p] {
                    if fires & maybe == 0 {
                        subsume_dropped += 1;
                        continue;
                    }
                }
                maybe = (maybe | self.produces[p]) & !self.clears[p];
            }
            woken |= self.enables[p];
            out.push(p);
        }
        citroen_telemetry::counter("canon.dead_dropped", dead_dropped);
        citroen_telemetry::counter("canon.idem_collapsed", idem_collapsed);
        citroen_telemetry::counter("canon.subsume_dropped", subsume_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_rt::rng::StdRng;
    use citroen_rt::rng::SeedableRng;

    #[test]
    fn unit_roundtrip() {
        let b = Bounds::cube(3, -5.0, 10.0);
        let x = vec![-5.0, 2.5, 10.0];
        let u = b.to_unit(&x);
        assert!((u[0] - 0.0).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
        assert!((u[2] - 1.0).abs() < 1e-12);
        let back = b.from_unit(&u);
        for (a, c) in back.iter().zip(&x) {
            assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn canonicalizer_drops_dead_passes() {
        // Pass 1 is dead and nothing enables it: every occurrence goes.
        let c = SeqCanonicalizer::new(vec![false, true, false], vec![0, 0, 0]);
        assert_eq!(c.canonicalize(&[0, 1, 2, 1, 1]), vec![0, 2]);
        assert!(!c.is_identity());
        // Two raw sequences collapse onto the same canonical form — the
        // compile-cache collision that saves the second compile.
        assert_eq!(c.canonicalize(&[0, 1, 2]), c.canonicalize(&[1, 0, 2]));
    }

    #[test]
    fn canonicalizer_keeps_enabled_passes() {
        // Pass 2 is dead, but pass 0 enables it: only occurrences *after*
        // a kept pass 0 survive.
        let c = SeqCanonicalizer::new(vec![false, false, true], vec![1 << 2, 0, 0]);
        assert_eq!(c.canonicalize(&[2, 0, 2, 1, 2]), vec![0, 2, 1, 2]);
        // A dead pass's own enables must not fire when it is dropped:
        // pass 2 also "enables" pass 1, but 2 itself never runs here.
        let c = SeqCanonicalizer::new(vec![false, true, true], vec![0, 0, 1 << 1]);
        assert_eq!(c.canonicalize(&[2, 1, 0]), vec![0]);
    }

    #[test]
    fn identity_canonicalizer_changes_nothing() {
        let c = SeqCanonicalizer::identity(4);
        assert!(c.is_identity());
        assert_eq!(c.canonicalize(&[3, 1, 1, 0, 2]), vec![3, 1, 1, 0, 2]);
    }

    #[test]
    fn idempotence_collapses_immediate_duplicates_only() {
        let c = SeqCanonicalizer::identity(3).with_idempotence(vec![false, true, false]);
        assert!(!c.is_identity());
        // `1,1,1` → `1`; but `1,0,1` stays — pass 0 between may re-create work.
        assert_eq!(c.canonicalize(&[1, 1, 1, 0, 1, 2, 2]), vec![1, 0, 1, 2, 2]);
        // Non-idempotent duplicates are untouched.
        assert_eq!(c.canonicalize(&[2, 2, 0, 0]), vec![2, 2, 0, 0]);
    }

    #[test]
    fn idempotence_composes_with_dead_pruning() {
        // Pass 1 dead, pass 2 idempotent: `2,1,2` collapses to `2` because
        // dropping the dead pass 1 makes the two 2s adjacent.
        let c = SeqCanonicalizer::new(vec![false, true, false], vec![0, 0, 0])
            .with_idempotence(vec![false, false, true]);
        assert_eq!(c.canonicalize(&[2, 1, 2, 0]), vec![2, 0]);
        // But a *kept* (woken) pass between them blocks the collapse.
        let c = SeqCanonicalizer::new(vec![false, true, false], vec![1 << 1, 0, 0])
            .with_idempotence(vec![false, false, true]);
        assert_eq!(c.canonicalize(&[0, 2, 1, 2]), vec![0, 2, 1, 2]);
    }

    #[test]
    fn subsumption_collapses_adjacent_and_pqp_patterns() {
        // Three passes over a 2-class universe. Passes 0 and 1 fire on (and
        // clear) their own class and produce nothing; pass 2 is unknown
        // (never dropped) and produces everything.
        let fires = vec![Some(0b01), Some(0b10), None];
        let clears = vec![0b01, 0b10, 0];
        let produces = vec![0, 0, u64::MAX];
        let c = SeqCanonicalizer::identity(3).with_subsumption(fires, clears, produces);
        assert!(!c.is_identity());
        // Adjacent duplicate: the idempotence diagonal, now via dataflow.
        assert_eq!(c.canonicalize(&[0, 0, 1]), vec![0, 1]);
        // p,q,p: pass 1 between two 0s neither produces nor re-enables
        // class 0, so the second 0 still drops.
        assert_eq!(c.canonicalize(&[0, 1, 0]), vec![0, 1]);
        // An unknown pass in between re-produces everything: no drop.
        assert_eq!(c.canonicalize(&[0, 2, 0]), vec![0, 2, 0]);
        // Both classes cleared, later duplicates of either pass drop.
        assert_eq!(c.canonicalize(&[1, 0, 0, 1]), vec![1, 0]);
    }

    #[test]
    fn subsumption_clears_win_over_produces() {
        // Pass 0 produces everything but clears class 0 — a trailing-dce
        // style pass. Pass 1 fires on class 0 only: dropped right after 0.
        let fires = vec![None, Some(0b01)];
        let clears = vec![0b01, 0];
        let produces = vec![u64::MAX, u64::MAX];
        let c = SeqCanonicalizer::identity(2).with_subsumption(fires, clears, produces);
        assert_eq!(c.canonicalize(&[0, 1]), vec![0]);
        // But before any pass has run, class 0 may be present: kept.
        assert_eq!(c.canonicalize(&[1, 0]), vec![1, 0]);
    }

    #[test]
    fn subsumption_composes_with_dead_pruning() {
        // Pass 1 is dead; dropping it must leave the subsumption window
        // open across it: 0,1,0 → 0 (dead 1 dropped, duplicate 0 subsumed).
        let fires = vec![Some(0b01), None, None];
        let clears = vec![0b01, 0, 0];
        let produces = vec![u64::MAX, u64::MAX, u64::MAX];
        let c = SeqCanonicalizer::new(vec![false, true, false], vec![0, 0, 0])
            .with_subsumption(fires, clears, produces);
        assert_eq!(c.canonicalize(&[0, 1, 0]), vec![0]);
    }

    #[test]
    fn sampling_in_bounds() {
        let b = Bounds::cube(10, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = b.sample_unit(&mut rng);
            assert!(u.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
