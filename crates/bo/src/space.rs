//! Continuous box search spaces. BO internals operate on the unit cube; the
//! bounds map to/from problem space (thesis §4.3.2 "we re-scale the input
//! domain to `[0,1]^d`").

use citroen_rt::rng::Rng;

/// A box-bounded continuous search space.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Lower bound per dimension.
    pub lo: Vec<f64>,
    /// Upper bound per dimension.
    pub hi: Vec<f64>,
}

impl Bounds {
    /// Uniform bounds `[lo, hi]^d`.
    pub fn cube(d: usize, lo: f64, hi: f64) -> Bounds {
        assert!(hi > lo);
        Bounds { lo: vec![lo; d], hi: vec![hi; d] }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Map a unit-cube point into problem space.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        u.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&ui, (&l, &h))| l + ui.clamp(0.0, 1.0) * (h - l))
            .collect()
    }

    /// Map a problem-space point into the unit cube.
    pub fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&xi, (&l, &h))| ((xi - l) / (h - l)).clamp(0.0, 1.0))
            .collect()
    }

    /// Sample a uniform point in the unit cube.
    pub fn sample_unit(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.dim()).map(|_| rng.gen_range(0.0..1.0)).collect()
    }
}

/// Clamp a unit-cube point in place.
pub fn clamp_unit(x: &mut [f64]) {
    for v in x {
        *v = v.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_rt::rng::StdRng;
    use citroen_rt::rng::SeedableRng;

    #[test]
    fn unit_roundtrip() {
        let b = Bounds::cube(3, -5.0, 10.0);
        let x = vec![-5.0, 2.5, 10.0];
        let u = b.to_unit(&x);
        assert!((u[0] - 0.0).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
        assert!((u[2] - 1.0).abs() < 1e-12);
        let back = b.from_unit(&u);
        for (a, c) in back.iter().zip(&x) {
            assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_in_bounds() {
        let b = Bounds::cube(10, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = b.sample_unit(&mut rng);
            assert!(u.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
