//! Statistics-space transfer warm-starts (GRACE-style).
//!
//! The thesis' §6.3.2 future-work direction — program-independent pass
//! correlations — suggests that a good sequence for one program is a good
//! *starting point* for a statistically similar program. The service layer
//! realises this: every completed tuning session deposits a
//! [`TransferEntry`] (its task's O3 compilation-statistics descriptor plus
//! its best genome), and a new session seeds its initial design with the
//! best genomes of its statistics-space nearest neighbours.
//!
//! Similarity is measured on the *source program*'s pass-related compilation
//! statistics under the fixed O3 pipeline — available before any tuning, and
//! exactly the feature family CITROEN's cost model is built on. Counts are
//! `log1p`-compressed (statistics are heavy-tailed: a few thousand
//! `instcombine.rewrites` should not drown out every other key) and the
//! distance is a normalised Euclidean over the key union, so programs with
//! disjoint statistics are maximally far apart.

use std::collections::HashMap;

/// One completed session's contribution to the transfer corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferEntry {
    /// Donor label (benchmark name) — for diagnostics only.
    pub name: String,
    /// `("pass.stat", count)` descriptor of the donor's *source* hot module
    /// under the fixed O3 pipeline, name-sorted.
    pub descriptor: Vec<(String, f64)>,
    /// The donor session's best genome (pass-id sequence).
    pub genome: Vec<u16>,
    /// The donor session's best speedup over O3 (diagnostics / pruning).
    pub best_speedup: f64,
}

/// Normalised distance between two statistics descriptors.
///
/// Both are projected onto their key union; missing keys count as zero.
/// Counts are `log1p`-compressed, and the Euclidean distance is divided by
/// `sqrt(union size)` so it is comparable across descriptor sizes. Two empty
/// descriptors are at distance 0.
pub fn stats_distance(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
    let am: HashMap<&str, f64> = a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let bm: HashMap<&str, f64> = b.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut keys: Vec<&str> = am.keys().chain(bm.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    if keys.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for k in &keys {
        let x = am.get(k).copied().unwrap_or(0.0).max(0.0).ln_1p();
        let y = bm.get(k).copied().unwrap_or(0.0).max(0.0).ln_1p();
        sum += (x - y) * (x - y);
    }
    (sum / keys.len() as f64).sqrt()
}

/// Indices of the `k` corpus entries nearest to `descriptor`, nearest first.
///
/// Ties break on corpus order (insertion order = completion order in the
/// daemon), keeping the selection deterministic.
pub fn nearest(descriptor: &[(String, f64)], corpus: &[TransferEntry], k: usize) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = corpus
        .iter()
        .enumerate()
        .map(|(i, e)| (stats_distance(descriptor, &e.descriptor), i))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

/// The best genomes of the `k` nearest corpus entries, nearest first —
/// ready to drop into `CitroenConfig::init_seeds`.
pub fn warm_seeds(
    descriptor: &[(String, f64)],
    corpus: &[TransferEntry],
    k: usize,
) -> Vec<Vec<u16>> {
    nearest(descriptor, corpus, k)
        .into_iter()
        .map(|i| corpus[i].genome.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn entry(name: &str, desc: Vec<(String, f64)>, genome: Vec<u16>) -> TransferEntry {
        TransferEntry { name: name.into(), descriptor: desc, genome, best_speedup: 1.0 }
    }

    #[test]
    fn distance_is_zero_on_identical_and_grows_with_divergence() {
        let a = d(&[("p.x", 10.0), ("q.y", 3.0)]);
        let b = d(&[("p.x", 10.0), ("q.y", 3.0)]);
        assert_eq!(stats_distance(&a, &b), 0.0);
        let near = d(&[("p.x", 12.0), ("q.y", 3.0)]);
        let far = d(&[("r.z", 500.0)]);
        assert!(stats_distance(&a, &near) < stats_distance(&a, &far));
        assert_eq!(stats_distance(&[], &[]), 0.0);
    }

    #[test]
    fn distance_is_symmetric_over_disjoint_keys() {
        let a = d(&[("p.x", 7.0)]);
        let b = d(&[("q.y", 7.0)]);
        let ab = stats_distance(&a, &b);
        assert_eq!(ab, stats_distance(&b, &a));
        assert!(ab > 0.0);
    }

    #[test]
    fn log_compression_tames_heavy_tails() {
        // Without log1p, one huge key would dominate: a 10k-count key
        // difference must not outrank total disagreement on small keys.
        let a = d(&[("big.n", 10_000.0), ("s.a", 1.0), ("s.b", 1.0)]);
        let b = d(&[("big.n", 11_000.0), ("s.a", 1.0), ("s.b", 1.0)]);
        let c = d(&[("big.n", 10_000.0), ("s.a", 40.0), ("s.b", 40.0)]);
        assert!(stats_distance(&a, &b) < stats_distance(&a, &c));
    }

    #[test]
    fn nearest_ranks_by_distance_with_deterministic_ties() {
        let corpus = vec![
            entry("far", d(&[("x.a", 100.0)]), vec![1]),
            entry("exact", d(&[("p.x", 5.0)]), vec![2]),
            entry("close", d(&[("p.x", 6.0)]), vec![3]),
            entry("exact2", d(&[("p.x", 5.0)]), vec![4]),
        ];
        let q = d(&[("p.x", 5.0)]);
        assert_eq!(nearest(&q, &corpus, 3), vec![1, 3, 2]);
        assert_eq!(warm_seeds(&q, &corpus, 2), vec![vec![2], vec![4]]);
        assert_eq!(nearest(&q, &corpus, 10).len(), 4);
        assert!(nearest(&q, &[], 3).is_empty());
    }
}
