//! Representative high-dimensional BO baselines of thesis Fig. 4.5/4.6:
//! a TuRBO-style trust-region local BO and a HeSBO-style random-subspace
//! embedding BO.

use crate::acquisition::Acquisition;
use crate::aibo::BoResult;
use crate::heuristics::standard_normal;
use crate::space::Bounds;
use citroen_gp::{Gp, GpConfig, Mat};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// TuRBO-1 configuration.
#[derive(Debug, Clone)]
pub struct TurboConfig {
    /// Initial trust-region edge length (unit-cube units).
    pub l_init: f64,
    /// Minimum length before a restart.
    pub l_min: f64,
    /// Maximum length.
    pub l_max: f64,
    /// Consecutive successes before expanding.
    pub success_tol: usize,
    /// Consecutive failures before shrinking.
    pub fail_tol: usize,
    /// Candidates sampled in the region per iteration.
    pub candidates: usize,
    /// Initial design size (per restart).
    pub init_samples: usize,
    /// GP settings.
    pub gp: GpConfig,
}

impl Default for TurboConfig {
    fn default() -> TurboConfig {
        TurboConfig {
            l_init: 0.8,
            l_min: 0.007,
            l_max: 1.6,
            success_tol: 3,
            fail_tol: 5,
            candidates: 300,
            init_samples: 20,
            gp: GpConfig { fit_iters: 15, yeo_johnson: false, ..Default::default() },
        }
    }
}

/// Run TuRBO-1 (trust-region local BO with restarts), minimising.
pub fn run_turbo(
    bounds: &Bounds,
    cfg: &TurboConfig,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = bounds.dim();
    let mut all_xs: Vec<Vec<f64>> = Vec::new();
    let mut all_ys: Vec<f64> = Vec::new();
    let mut best_history: Vec<f64> = Vec::new();
    let mut algo_time = Duration::ZERO;

    'restarts: loop {
        // Fresh trust region state per restart.
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut length = cfg.l_init;
        let mut successes = 0usize;
        let mut failures = 0usize;
        for _ in 0..cfg.init_samples {
            if all_ys.len() >= budget {
                break 'restarts;
            }
            let u = bounds.sample_unit(&mut rng);
            let y = f(&bounds.from_unit(&u));
            xs.push(u.clone());
            ys.push(y);
            all_xs.push(bounds.from_unit(&u));
            all_ys.push(y);
            best_history
                .push(all_ys.iter().cloned().fold(f64::INFINITY, f64::min));
        }
        while all_ys.len() < budget {
            let t0 = Instant::now();
            let best_idx = ys
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let center = xs[best_idx].clone();
            let best_y = ys[best_idx];
            let gp = Gp::fit(Mat::from_rows(xs.clone()), &ys, cfg.gp.clone());
            // Candidates: TuRBO's perturbation scheme — copy the centre and
            // resample each dim with probability min(20/d, 1) inside the box.
            let p = (20.0 / d as f64).min(1.0);
            let mut best_cand: Option<(Vec<f64>, f64)> = None;
            let half = length / 2.0;
            let acq = Acquisition::Ucb { beta: 1.96 };
            let best_z = gp.transform().forward(best_y);
            for _ in 0..cfg.candidates {
                let mut c = center.clone();
                let mut any = false;
                for v in c.iter_mut() {
                    if rng.gen_bool(p) {
                        *v = (*v + half * standard_normal(&mut rng) * 0.5)
                            .clamp((*v - half).max(0.0), (*v + half).min(1.0))
                            .clamp(0.0, 1.0);
                        any = true;
                    }
                }
                if !any {
                    let i = rng.gen_range(0..d);
                    c[i] = (c[i] + half * standard_normal(&mut rng) * 0.5).clamp(0.0, 1.0);
                }
                let a = acq.eval(&gp, best_z, &c);
                if best_cand.as_ref().map(|(_, b)| a > *b).unwrap_or(true) {
                    best_cand = Some((c, a));
                }
            }
            algo_time += t0.elapsed();
            let (u, _) = best_cand.unwrap();
            let y = f(&bounds.from_unit(&u));
            let improved = y < best_y - 1e-3 * best_y.abs().max(1e-9);
            xs.push(u.clone());
            ys.push(y);
            all_xs.push(bounds.from_unit(&u));
            all_ys.push(y);
            best_history.push(all_ys.iter().cloned().fold(f64::INFINITY, f64::min));
            if improved {
                successes += 1;
                failures = 0;
            } else {
                failures += 1;
                successes = 0;
            }
            if successes >= cfg.success_tol {
                length = (length * 2.0).min(cfg.l_max);
                successes = 0;
            }
            if failures >= cfg.fail_tol {
                length /= 2.0;
                failures = 0;
            }
            if length < cfg.l_min {
                continue 'restarts; // restart with a fresh region
            }
        }
        break;
    }

    BoResult { xs: all_xs, ys: all_ys, best_history, records: Vec::new(), algo_time }
}

/// Run HeSBO-style embedding BO: BO in an `m`-dimensional subspace mapped to
/// the full space by a count-sketch embedding (random index + sign per
/// target dimension), minimising.
pub fn run_hesbo(
    bounds: &Bounds,
    m: usize,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EB0);
    let d = bounds.dim();
    // Count-sketch embedding: each full dim copies one low dim with a sign.
    let idx: Vec<usize> = (0..d).map(|_| rng.gen_range(0..m)).collect();
    let sign: Vec<f64> = (0..d).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect();
    let lift = move |u_low: &[f64]| -> Vec<f64> {
        (0..d)
            .map(|j| {
                let v = u_low[idx[j]] * 2.0 - 1.0; // [-1, 1]
                ((sign[j] * v) + 1.0) / 2.0
            })
            .collect()
    };
    let low_bounds = Bounds::cube(m, 0.0, 1.0);
    let cfg = crate::aibo::presets::bo_grad(200, 2);
    let mut wrapped = |u_low: &[f64]| -> f64 {
        let u_full = lift(u_low);
        f(&bounds.from_unit(&u_full))
    };
    crate::aibo::run_aibo(&low_bounds, &cfg, seed, budget, &mut wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn turbo_improves_over_initial_design() {
        let bounds = Bounds::cube(8, -3.0, 3.0);
        let mut f = |x: &[f64]| sphere(x);
        let cfg = TurboConfig { candidates: 80, init_samples: 10, ..Default::default() };
        let res = run_turbo(&bounds, &cfg, 1, 60, &mut f);
        assert_eq!(res.ys.len(), 60);
        let init_best = res.ys[..10].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(res.best() < init_best, "{} !< {}", res.best(), init_best);
    }

    #[test]
    fn hesbo_runs_in_low_dim() {
        let bounds = Bounds::cube(50, -2.0, 2.0);
        let mut f = |x: &[f64]| sphere(x);
        let res = run_hesbo(&bounds, 8, 3, 40, &mut f);
        assert_eq!(res.ys.len(), 40);
        assert!(res.best().is_finite());
        // The lifted points live in the full space.
        assert_eq!(res.xs[0].len(), 8); // xs are in the low-dim search space
    }
}
