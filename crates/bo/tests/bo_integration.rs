//! BO-stack integration tests: AIBO instrumentation modes, preset baselines,
//! and cross-optimiser sanity on a common task.

use citroen_bo::aibo::presets;
use citroen_bo::{
    run_aibo, run_heuristic, run_random_search, run_turbo, Acquisition, AiboConfig, Bounds,
    GradMaximizer, StrategyKind, TurboConfig,
};
use citroen_gp::GpConfig;

fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

fn tiny_cfg() -> AiboConfig {
    AiboConfig {
        k: 50,
        init_samples: 10,
        gp: GpConfig { fit_iters: 8, yeo_johnson: false, ..Default::default() },
        maximizer: Some(GradMaximizer { iters: 4, lr: 0.05 }),
        ..Default::default()
    }
}

#[test]
fn record_candidates_mode_captures_pools() {
    let bounds = Bounds::cube(6, -5.12, 5.12);
    let cfg = AiboConfig { record_candidates: true, n: 2, ..tiny_cfg() };
    let mut f = |x: &[f64]| rastrigin(x);
    let res = run_aibo(&bounds, &cfg, 5, 25, &mut f);
    assert!(!res.records.is_empty());
    for r in &res.records {
        // 3 strategies × n=2 refined candidates each.
        assert_eq!(r.candidates.len(), 6);
        for c in &r.candidates {
            assert_eq!(c.len(), 6);
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}

#[test]
fn presets_differ_in_behaviour_not_interface() {
    let bounds = Bounds::cube(5, -2.0, 2.0);
    for cfg in [
        presets::bo_grad(50, 1),
        presets::bo_random(50),
        presets::bo_es(50),
        presets::bo_cmaes_grad(50),
        presets::bo_boltzmann_grad(50),
        presets::bo_gaussian_grad(50),
        presets::aibo_variant(vec![StrategyKind::Ga]),
    ] {
        let mut cfg = cfg;
        cfg.init_samples = 8;
        cfg.gp = GpConfig { fit_iters: 5, yeo_johnson: false, ..Default::default() };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let res = run_aibo(&bounds, &cfg, 1, 16, &mut f);
        assert_eq!(res.ys.len(), 16);
        assert!(res.best().is_finite());
    }
}

#[test]
fn all_optimisers_improve_over_first_sample() {
    let bounds = Bounds::cube(8, -5.12, 5.12);
    // AIBO
    let mut f1 = |x: &[f64]| rastrigin(x);
    let a = run_aibo(&bounds, &tiny_cfg(), 3, 40, &mut f1);
    assert!(a.best() < a.ys[0]);
    // TuRBO
    let mut f2 = |x: &[f64]| rastrigin(x);
    let t = run_turbo(
        &bounds,
        &TurboConfig { candidates: 60, init_samples: 10, ..Default::default() },
        3,
        40,
        &mut f2,
    );
    assert!(t.best() < t.ys[0] + 1e-12);
    // Heuristics + random
    for kind in [StrategyKind::Ga, StrategyKind::CmaEs] {
        let mut f3 = |x: &[f64]| rastrigin(x);
        let h = run_heuristic(&bounds, kind, 3, 40, &mut f3);
        assert!(h.best() <= h.ys[0]);
    }
    let mut f4 = |x: &[f64]| rastrigin(x);
    let r = run_random_search(&bounds, 3, 40, &mut f4);
    assert_eq!(r.ys.len(), 40);
}

#[test]
fn acquisition_settings_change_selection() {
    // Same seed, different β: the evaluated points must eventually diverge.
    let bounds = Bounds::cube(4, -1.0, 1.0);
    let run_with = |beta: f64| {
        let cfg = AiboConfig { af: Acquisition::Ucb { beta }, ..tiny_cfg() };
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
        run_aibo(&bounds, &cfg, 11, 25, &mut f)
    };
    let low = run_with(0.5);
    let high = run_with(16.0);
    assert_ne!(low.xs, high.xs, "β must influence the search trajectory");
}

#[test]
fn seeded_runs_are_reproducible() {
    let bounds = Bounds::cube(5, -3.0, 3.0);
    let mut f1 = |x: &[f64]| rastrigin(x);
    let mut f2 = |x: &[f64]| rastrigin(x);
    let a = run_aibo(&bounds, &tiny_cfg(), 9, 20, &mut f1);
    let b = run_aibo(&bounds, &tiny_cfg(), 9, 20, &mut f2);
    assert_eq!(a.ys, b.ys);
    assert_eq!(a.best_history, b.best_history);
}
