//! Gaussian-process regression with analytic-gradient marginal-likelihood
//! fitting — the surrogate model of both AIBO (Ch. 4) and CITROEN's cost
//! model over compilation statistics (Ch. 5).

use crate::kernel::{ArdKernel, KernelKind};
use crate::linalg::{chol_inverse, chol_logdet, chol_solve, cholesky, Mat};
use crate::transform::OutputTransform;

/// GP configuration; bounds follow the thesis (§4.3.2): length-scale ∈
/// [0.005, 20], noise variance ∈ [1e-6, 0.01].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Length-scale bounds (natural space).
    pub ls_bounds: (f64, f64),
    /// Noise-variance bounds (natural space).
    pub noise_bounds: (f64, f64),
    /// Signal-variance bounds (natural space).
    pub sf2_bounds: (f64, f64),
    /// Adam iterations for hyperparameter fitting.
    pub fit_iters: usize,
    /// Adam learning rate (log-space).
    pub lr: f64,
    /// Apply a Yeo–Johnson output transform.
    pub yeo_johnson: bool,
    /// Warm-start hyperparameters (from a previous fit); `fit_iters == 0`
    /// with a warm start just refactorises at the given hyperparameters.
    pub init: Option<GpHypers>,
}

/// A snapshot of GP hyperparameters for warm starting.
#[derive(Debug, Clone)]
pub struct GpHypers {
    /// Per-dimension log length-scales.
    pub log_ls: Vec<f64>,
    /// Log signal variance.
    pub log_sf2: f64,
    /// Log noise variance.
    pub log_noise: f64,
}

impl Default for GpConfig {
    fn default() -> GpConfig {
        GpConfig {
            kernel: KernelKind::Matern52,
            ls_bounds: (0.005, 20.0),
            noise_bounds: (1e-6, 0.01),
            sf2_bounds: (0.05, 20.0),
            fit_iters: 40,
            lr: 0.08,
            yeo_johnson: true,
            init: None,
        }
    }
}

/// A fitted GP posterior.
pub struct Gp {
    x: Mat,
    /// Transformed, standardised targets.
    z: Vec<f64>,
    kernel: ArdKernel,
    log_noise: f64,
    chol: Mat,
    alpha: Vec<f64>,
    transform: OutputTransform,
    cfg: GpConfig,
}

impl Gp {
    /// Fit a GP to `(x, y)`. `x` is `n × d` (inputs should be pre-scaled to
    /// `[0,1]^d`, as the thesis does); `y` are raw objective values.
    pub fn fit(x: Mat, y: &[f64], cfg: GpConfig) -> Gp {
        let _fit_span = citroen_telemetry::span("gp.fit");
        citroen_telemetry::value("gp.fit_iters", cfg.fit_iters as u64);
        citroen_telemetry::value("gp.fit_obs", x.rows as u64);
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "cannot fit a GP to zero observations");
        let transform =
            if cfg.yeo_johnson { OutputTransform::fit(y) } else { OutputTransform::identity() };
        let z: Vec<f64> = y.iter().map(|&v| transform.forward(v)).collect();

        let d = x.cols;
        let mut kernel = ArdKernel::new(cfg.kernel, d, 0.5, 1.0);
        let mut log_noise = (1e-3f64).ln();
        if let Some(init) = &cfg.init {
            if init.log_ls.len() == d {
                kernel.log_ls = init.log_ls.clone();
                kernel.log_sf2 = init.log_sf2;
                log_noise = init.log_noise;
            }
        }

        // Adam in log-hyperparameter space with analytic gradients.
        let np = d + 2;
        let mut m = vec![0.0; np];
        let mut v = vec![0.0; np];
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        for t in 1..=cfg.fit_iters {
            let (_, grad) = log_marginal_and_grad(&x, &z, &kernel, log_noise);
            let Some(grad) = grad else { break };
            for i in 0..np {
                let g = -grad[i]; // maximise
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mh = m[i] / (1.0 - b1.powi(t as i32));
                let vh = v[i] / (1.0 - b2.powi(t as i32));
                let step = cfg.lr * mh / (vh.sqrt() + eps);
                if i < d {
                    kernel.log_ls[i] =
                        (kernel.log_ls[i] - step).clamp(cfg.ls_bounds.0.ln(), cfg.ls_bounds.1.ln());
                } else if i == d {
                    kernel.log_sf2 = (kernel.log_sf2 - step)
                        .clamp(cfg.sf2_bounds.0.ln(), cfg.sf2_bounds.1.ln());
                } else {
                    log_noise = (log_noise - step)
                        .clamp(cfg.noise_bounds.0.ln(), cfg.noise_bounds.1.ln());
                }
            }
        }

        let (chol, alpha) = factorise(&x, &z, &kernel, log_noise);
        Gp { x, z, kernel, log_noise, chol, alpha, transform, cfg }
    }

    /// Posterior mean and variance at `q` (model/transformed space).
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        citroen_telemetry::counter("gp.predict.calls", 1);
        let n = self.x.rows;
        let mut kstar = vec![0.0; n];
        for i in 0..n {
            kstar[i] = self.kernel.k(self.x.row(i), q);
        }
        let mean: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let vsolve = chol_solve(&self.chol, &kstar);
        let kss = self.kernel.k(q, q);
        let var = (kss - kstar.iter().zip(&vsolve).map(|(a, b)| a * b).sum::<f64>()).max(1e-12);
        (mean, var)
    }

    /// Posterior mean mapped back to raw objective space.
    pub fn predict_raw_mean(&self, q: &[f64]) -> f64 {
        let (m, _) = self.predict(q);
        self.transform.inverse(m)
    }

    /// Draw `s` joint posterior samples at `q` using the reparameterisation
    /// trick (for Monte-Carlo acquisition functions): `μ + σ·ε`.
    pub fn sample_at(&self, q: &[f64], eps: &[f64]) -> Vec<f64> {
        let (mu, var) = self.predict(q);
        let sd = var.sqrt();
        eps.iter().map(|e| mu + sd * e).collect()
    }

    /// The fitted ARD length-scales (shorter ⇒ more impactful input —
    /// Table 5.5's relevance ranking).
    pub fn lengthscales(&self) -> Vec<f64> {
        self.kernel.lengthscales()
    }

    /// The output transform (to map incumbents into model space).
    pub fn transform(&self) -> &OutputTransform {
        &self.transform
    }

    /// Fitted noise variance.
    pub fn noise(&self) -> f64 {
        self.log_noise.exp()
    }

    /// Log marginal likelihood at the fitted hyperparameters.
    pub fn log_marginal(&self) -> f64 {
        let (lml, _) = log_marginal_and_grad(&self.x, &self.z, &self.kernel, self.log_noise);
        lml
    }

    /// Number of training points.
    pub fn n(&self) -> usize {
        self.x.rows
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.x.cols
    }

    /// Configuration used to fit.
    pub fn config(&self) -> &GpConfig {
        &self.cfg
    }

    /// Snapshot of the fitted hyperparameters (for warm starting).
    pub fn hypers(&self) -> GpHypers {
        GpHypers {
            log_ls: self.kernel.log_ls.clone(),
            log_sf2: self.kernel.log_sf2,
            log_noise: self.log_noise,
        }
    }
}

fn factorise(x: &Mat, z: &[f64], kernel: &ArdKernel, log_noise: f64) -> (Mat, Vec<f64>) {
    let n = x.rows;
    let noise = log_noise.exp();
    let kmat = Mat::from_fn(n, n, |i, j| {
        kernel.k(x.row(i), x.row(j)) + if i == j { noise } else { 0.0 }
    });
    let l = cholesky(&kmat).expect("kernel matrix must be PD with noise");
    let alpha = chol_solve(&l, z);
    (l, alpha)
}

/// Log marginal likelihood and its gradient w.r.t. `[log_ls.., log_sf2,
/// log_noise]`. Gradient is `None` if the factorisation failed.
fn log_marginal_and_grad(
    x: &Mat,
    z: &[f64],
    kernel: &ArdKernel,
    log_noise: f64,
) -> (f64, Option<Vec<f64>>) {
    let n = x.rows;
    let d = kernel.dims();
    let noise = log_noise.exp();
    let kmat = Mat::from_fn(n, n, |i, j| {
        kernel.k(x.row(i), x.row(j)) + if i == j { noise } else { 0.0 }
    });
    let Ok(l) = cholesky(&kmat) else {
        return (f64::NEG_INFINITY, None);
    };
    let alpha = chol_solve(&l, z);
    let lml = -0.5 * z.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>()
        - 0.5 * chol_logdet(&l)
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // dL/dθ = ½ tr((ααᵀ − K⁻¹) dK/dθ)
    let kinv = chol_inverse(&l);
    let mut grad = vec![0.0; d + 2];
    for i in 0..n {
        for j in 0..n {
            let w = alpha[i] * alpha[j] - kinv.get(i, j);
            let (_, gls, gsf) = kernel.k_grad(x.row(i), x.row(j));
            for (gi, g) in gls.iter().enumerate() {
                grad[gi] += 0.5 * w * g;
            }
            grad[d] += 0.5 * w * gsf;
            if i == j {
                grad[d + 1] += 0.5 * w * noise; // dK/dlog_noise = noise·I
            }
        }
    }
    (lml, Some(grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(n: usize) -> (Mat, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> =
            xs.iter().map(|&x| (6.0 * x).sin() + 0.5 * x).collect();
        let m = Mat::from_rows(xs.into_iter().map(|x| vec![x]).collect());
        (m, y)
    }

    #[test]
    fn gp_interpolates_smooth_function() {
        let (x, y) = grid1d(20);
        let gp = Gp::fit(x, &y, GpConfig { yeo_johnson: false, ..Default::default() });
        for (i, &q) in [0.12f64, 0.37, 0.81].iter().enumerate() {
            let truth = (6.0 * q).sin() + 0.5 * q;
            let (m, v) = gp.predict(&[q]);
            assert!(
                (m - truth).abs() < 0.15,
                "query {i}: mean {m} vs truth {truth} (var {v})"
            );
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = grid1d(10);
        let gp = Gp::fit(x, &y, GpConfig { yeo_johnson: false, ..Default::default() });
        let (_, v_in) = gp.predict(&[0.5]);
        let (_, v_out) = gp.predict(&[3.0]);
        assert!(v_out > 5.0 * v_in, "v_out={v_out} v_in={v_in}");
    }

    #[test]
    fn fitting_improves_marginal_likelihood() {
        let (x, y) = grid1d(24);
        let unfit = Gp::fit(
            x.clone(),
            &y,
            GpConfig { fit_iters: 0, yeo_johnson: false, ..Default::default() },
        );
        let fit = Gp::fit(
            x,
            &y,
            GpConfig { fit_iters: 60, yeo_johnson: false, ..Default::default() },
        );
        assert!(
            fit.log_marginal() > unfit.log_marginal(),
            "fit {} vs unfit {}",
            fit.log_marginal(),
            unfit.log_marginal()
        );
    }

    #[test]
    fn mll_gradient_matches_numeric() {
        let (x, y) = grid1d(8);
        let kernel = ArdKernel::new(KernelKind::Matern52, 1, 0.4, 1.2);
        let log_noise = (3e-3f64).ln();
        let (_, grad) = log_marginal_and_grad(&x, &y, &kernel, log_noise);
        let grad = grad.unwrap();
        let eps = 1e-5;
        // log length-scale
        let mut kp = kernel.clone();
        kp.log_ls[0] += eps;
        let mut km = kernel.clone();
        km.log_ls[0] -= eps;
        let num = (log_marginal_and_grad(&x, &y, &kp, log_noise).0
            - log_marginal_and_grad(&x, &y, &km, log_noise).0)
            / (2.0 * eps);
        assert!((num - grad[0]).abs() < 1e-4 * (1.0 + num.abs()), "ls: {num} vs {}", grad[0]);
        // log noise
        let num_n = (log_marginal_and_grad(&x, &y, &kernel, log_noise + eps).0
            - log_marginal_and_grad(&x, &y, &kernel, log_noise - eps).0)
            / (2.0 * eps);
        assert!(
            (num_n - grad[2]).abs() < 1e-4 * (1.0 + num_n.abs()),
            "noise: {num_n} vs {}",
            grad[2]
        );
    }

    #[test]
    fn ard_identifies_relevant_dimension() {
        // y depends on dim 0 only; the fitted ARD length-scale for dim 1
        // should be (much) longer — the Table 5.5 mechanism.
        let n = 40;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut s = 1234u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 16) % 1000) as f64 / 1000.0
        };
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            rows.push(vec![a, b]);
            y.push((8.0 * a).sin());
        }
        let gp = Gp::fit(
            Mat::from_rows(rows),
            &y,
            GpConfig { fit_iters: 80, yeo_johnson: false, ..Default::default() },
        );
        let ls = gp.lengthscales();
        assert!(
            ls[1] > 1.5 * ls[0],
            "irrelevant dim must get a longer length-scale: {ls:?}"
        );
    }
}
