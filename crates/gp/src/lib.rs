//! # citroen-gp
//!
//! From-scratch Gaussian-process regression: dense linear algebra, ARD
//! Matérn-5/2 / RBF kernels with analytic hyperparameter gradients,
//! Yeo–Johnson output transforms, and marginal-likelihood fitting. The
//! surrogate model of both AIBO (thesis Ch. 4) and the CITROEN cost model
//! over compilation statistics (Ch. 5).

#![warn(missing_docs)]

pub mod gp;
pub mod kernel;
pub mod linalg;
pub mod transform;

pub use gp::{Gp, GpConfig, GpHypers};
pub use kernel::{ArdKernel, KernelKind};
pub use linalg::Mat;
pub use transform::OutputTransform;
