//! Output transforms: standardisation and the Yeo–Johnson power transform
//! (thesis §4.3.2 — "apply Yeo-Johnson power transforms to function values,
//! which reduces skewness and makes the data more Gaussian-like").

/// Yeo–Johnson transform with parameter λ.
pub fn yeo_johnson(y: f64, lambda: f64) -> f64 {
    if y >= 0.0 {
        if lambda.abs() > 1e-9 {
            ((1.0 + y).powf(lambda) - 1.0) / lambda
        } else {
            (1.0 + y).ln()
        }
    } else if (lambda - 2.0).abs() > 1e-9 {
        -((1.0 - y).powf(2.0 - lambda) - 1.0) / (2.0 - lambda)
    } else {
        -(1.0 - y).ln()
    }
}

/// Fitted output transform: Yeo–Johnson followed by standardisation.
#[derive(Debug, Clone)]
pub struct OutputTransform {
    /// Selected Yeo–Johnson λ.
    pub lambda: f64,
    /// Post-YJ mean.
    pub mean: f64,
    /// Post-YJ standard deviation.
    pub std: f64,
}

impl OutputTransform {
    /// Fit on raw observations: grid-search λ maximising the (profiled)
    /// normal log-likelihood of the transformed data, then standardise.
    pub fn fit(y: &[f64]) -> OutputTransform {
        assert!(!y.is_empty());
        let lambdas: Vec<f64> = (-8..=8).map(|i| i as f64 * 0.25).collect();
        let mut best = (f64::NEG_INFINITY, 1.0);
        for &l in &lambdas {
            let t: Vec<f64> = y.iter().map(|&v| yeo_johnson(v, l)).collect();
            let ll = yj_loglik(y, &t, l);
            if ll > best.0 {
                best = (ll, l);
            }
        }
        let lambda = best.1;
        let t: Vec<f64> = y.iter().map(|&v| yeo_johnson(v, lambda)).collect();
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let var = t.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / t.len() as f64;
        let std = var.sqrt().max(1e-9);
        OutputTransform { lambda, mean, std }
    }

    /// Identity transform (λ=1, no scaling) — for already-Gaussian data.
    pub fn identity() -> OutputTransform {
        OutputTransform { lambda: 1.0, mean: 0.0, std: 1.0 }
    }

    /// Raw → model space.
    pub fn forward(&self, y: f64) -> f64 {
        (yeo_johnson(y, self.lambda) - self.mean) / self.std
    }

    /// Model space → raw (inverse transform).
    pub fn inverse(&self, z: f64) -> f64 {
        let t = z * self.std + self.mean;
        inv_yeo_johnson(t, self.lambda)
    }
}

fn inv_yeo_johnson(t: f64, lambda: f64) -> f64 {
    if t >= 0.0 {
        if lambda.abs() > 1e-9 {
            (t * lambda + 1.0).max(1e-12).powf(1.0 / lambda) - 1.0
        } else {
            t.exp() - 1.0
        }
    } else if (lambda - 2.0).abs() > 1e-9 {
        1.0 - (1.0 - (2.0 - lambda) * t).max(1e-12).powf(1.0 / (2.0 - lambda))
    } else {
        1.0 - (-t).exp()
    }
}

/// Profile log-likelihood of YJ-transformed data under a normal model,
/// including the Jacobian term.
fn yj_loglik(raw: &[f64], t: &[f64], lambda: f64) -> f64 {
    let n = t.len() as f64;
    let mean = t.iter().sum::<f64>() / n;
    let var = t.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var <= 0.0 || !var.is_finite() {
        return f64::NEG_INFINITY;
    }
    let jac: f64 = raw
        .iter()
        .map(|&y| (lambda - 1.0) * (y.signum() * (y.abs() + 1.0).ln()))
        .sum();
    -0.5 * n * var.ln() + jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yj_is_monotone_and_invertible() {
        for lambda in [-1.0, 0.0, 0.5, 1.0, 2.0, 2.5] {
            let mut prev = f64::NEG_INFINITY;
            for i in -20..=20 {
                let y = i as f64 * 0.5;
                let t = yeo_johnson(y, lambda);
                assert!(t > prev, "not monotone at λ={lambda}");
                prev = t;
                let back = inv_yeo_johnson(t, lambda);
                assert!((back - y).abs() < 1e-8, "λ={lambda}, y={y}: back={back}");
            }
        }
    }

    #[test]
    fn lambda_one_is_identity() {
        for y in [-3.0, 0.0, 2.5] {
            assert!((yeo_johnson(y, 1.0) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_reduces_skew_of_exponential_data() {
        // Heavily right-skewed data (like Rosenbrock values).
        let y: Vec<f64> = (0..200).map(|i| ((i as f64 / 20.0).exp()) - 1.0).collect();
        let t = OutputTransform::fit(&y);
        assert!(t.lambda < 0.8, "skewed data should pick a compressive λ, got {}", t.lambda);
        let z: Vec<f64> = y.iter().map(|&v| t.forward(v)).collect();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-6);
        // round-trip
        for &v in y.iter().take(20) {
            assert!((t.inverse(t.forward(v)) - v).abs() < 1e-5 * (1.0 + v.abs()));
        }
    }
}
