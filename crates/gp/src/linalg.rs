//! Minimal dense linear algebra: row-major matrices, Cholesky factorisation
//! with adaptive jitter, and triangular solves. Everything the GP needs,
//! nothing more.

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Build from row-major data.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Mat {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        Mat { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Append a row.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }
}

/// Cholesky factorisation `A = L Lᵀ` (lower-triangular `L`). Adds increasing
/// diagonal jitter on failure, up to `1e-4 · mean(diag)`.
pub fn cholesky(a: &Mat) -> Result<Mat, &'static str> {
    assert_eq!(a.rows, a.cols);
    let n = a.rows;
    let mean_diag: f64 = (0..n).map(|i| a.get(i, i)).sum::<f64>() / n.max(1) as f64;
    let mut jitter = 0.0;
    for attempt in 0..6 {
        match try_cholesky(a, jitter) {
            Some(l) => return Ok(l),
            None => {
                jitter = mean_diag.abs().max(1e-12) * 1e-10 * 10f64.powi(attempt * 2);
            }
        }
    }
    Err("matrix not positive definite even with jitter")
}

fn try_cholesky(a: &Mat, jitter: f64) -> Option<Mat> {
    let n = a.rows;
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `L x = b` (forward substitution, `L` lower-triangular).
pub fn solve_lower(l: &Mat, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    x
}

/// Solve `Lᵀ x = b` (backward substitution).
pub fn solve_lower_t(l: &Mat, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    x
}

/// Solve `A x = b` given the Cholesky factor of `A`.
pub fn chol_solve(l: &Mat, b: &[f64]) -> Vec<f64> {
    solve_lower_t(l, &solve_lower(l, b))
}

/// Compute `A⁻¹` given the Cholesky factor of `A` (column-by-column solves).
pub fn chol_inverse(l: &Mat) -> Mat {
    let n = l.rows;
    let mut inv = Mat::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = chol_solve(l, &e);
        for i in 0..n {
            inv.set(i, j, col[i]);
        }
        e[j] = 0.0;
    }
    inv
}

/// Log-determinant of `A` from its Cholesky factor: `2 Σ ln L_ii`.
pub fn chol_logdet(l: &Mat) -> f64 {
    (0..l.rows).map(|i| l.get(i, i).ln()).sum::<f64>() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A = M Mᵀ + I for a fixed M — guaranteed SPD.
        let m = Mat::from_rows(vec![
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.5, -0.3],
            vec![0.7, -0.2, 2.0],
        ]);
        Mat::from_fn(3, 3, |i, j| {
            (0..3).map(|k| m.get(i, k) * m.get(j, k)).sum::<f64>() + if i == j { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let r: f64 = (0..3).map(|k| l.get(i, k) * l.get(j, k)).sum();
                assert!((r - a.get(i, j)).abs() < 1e-10, "({i},{j}): {r} vs {}", a.get(i, j));
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = chol_solve(&l, &b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_and_logdet() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let inv = chol_inverse(&l);
        // A · A⁻¹ = I
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| a.get(i, k) * inv.get(k, j)).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-9);
            }
        }
        // logdet matches the product of eigen-free computation via L
        let ld = chol_logdet(&l);
        assert!(ld.is_finite());
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-deficient PSD matrix: ones * onesᵀ.
        let a = Mat::from_fn(4, 4, |_, _| 1.0);
        let l = cholesky(&a).expect("jitter should rescue");
        assert!(l.get(3, 3) > 0.0);
    }

    #[test]
    fn matvec_and_push_row() {
        let mut m = Mat::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.rows, 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }
}
