//! ARD kernels (Matérn-5/2 and RBF) with analytic hyperparameter gradients.

/// Kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Matérn ν = 5/2 — the thesis' default (§4.3.2).
    Matern52,
    /// Squared exponential.
    Rbf,
}

/// An ARD kernel: per-dimension length-scales plus a signal variance, all in
/// log-space for unconstrained optimisation.
#[derive(Debug, Clone)]
pub struct ArdKernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Per-dimension log length-scales.
    pub log_ls: Vec<f64>,
    /// Log signal variance.
    pub log_sf2: f64,
}

const SQRT5: f64 = 2.236_067_977_499_79;

impl ArdKernel {
    /// Kernel with all length-scales set to `ls0`.
    pub fn new(kind: KernelKind, dims: usize, ls0: f64, sf2: f64) -> ArdKernel {
        ArdKernel { kind, log_ls: vec![ls0.ln(); dims], log_sf2: sf2.ln() }
    }

    /// Number of input dimensions.
    pub fn dims(&self) -> usize {
        self.log_ls.len()
    }

    /// Length-scales in natural space (for ARD relevance ranking, Table 5.5).
    pub fn lengthscales(&self) -> Vec<f64> {
        self.log_ls.iter().map(|l| l.exp()).collect()
    }

    /// Scaled squared distance `r² = Σ (xᵢ-yᵢ)²/lᵢ²`.
    fn r2(&self, x: &[f64], y: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..x.len() {
            let d = (x[i] - y[i]) / self.log_ls[i].exp();
            s += d * d;
        }
        s
    }

    /// Kernel value `k(x, y)`.
    pub fn k(&self, x: &[f64], y: &[f64]) -> f64 {
        let sf2 = self.log_sf2.exp();
        let r2 = self.r2(x, y);
        match self.kind {
            KernelKind::Rbf => sf2 * (-0.5 * r2).exp(),
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                sf2 * (1.0 + SQRT5 * r + 5.0 * r2 / 3.0) * (-SQRT5 * r).exp()
            }
        }
    }

    /// Kernel value plus gradients w.r.t. each log length-scale and log sf².
    /// Returns `(k, dk/dlog_ls, dk/dlog_sf2)`.
    pub fn k_grad(&self, x: &[f64], y: &[f64]) -> (f64, Vec<f64>, f64) {
        let sf2 = self.log_sf2.exp();
        let d = x.len();
        let mut r2 = 0.0;
        let mut per_dim = vec![0.0; d]; // (xi-yi)²/li²
        for i in 0..d {
            let li = self.log_ls[i].exp();
            let di = (x[i] - y[i]) / li;
            per_dim[i] = di * di;
            r2 += di * di;
        }
        match self.kind {
            KernelKind::Rbf => {
                let k = sf2 * (-0.5 * r2).exp();
                // dk/dlog li = k · per_dim[i]   (since d(-r²/2)/dlog li = per_dim[i])
                let grads = per_dim.iter().map(|p| k * p).collect();
                (k, grads, k)
            }
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let e = (-SQRT5 * r).exp();
                let k = sf2 * (1.0 + SQRT5 * r + 5.0 * r2 / 3.0) * e;
                // dk/dr = -sf2 · (5r/3)(1 + √5 r) e^{-√5 r}
                // dr/dlog li = -per_dim[i]/r  (for r > 0)
                let grads = if r < 1e-12 {
                    vec![0.0; d]
                } else {
                    let dkdr = -sf2 * (5.0 * r / 3.0) * (1.0 + SQRT5 * r) * e;
                    per_dim.iter().map(|p| dkdr * (-p / r)).collect()
                };
                (k, grads, k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(kind: KernelKind) {
        let mut k = ArdKernel::new(kind, 3, 0.7, 1.3);
        k.log_ls = vec![0.2, -0.4, 0.1];
        let x = [0.3, 0.9, -0.2];
        let y = [-0.1, 0.4, 0.5];
        let (_, grads, gsf) = k.k_grad(&x, &y);
        let eps = 1e-6;
        for i in 0..3 {
            let mut kp = k.clone();
            kp.log_ls[i] += eps;
            let mut km = k.clone();
            km.log_ls[i] -= eps;
            let num = (kp.k(&x, &y) - km.k(&x, &y)) / (2.0 * eps);
            assert!(
                (num - grads[i]).abs() < 1e-6,
                "{kind:?} dim {i}: numeric {num} vs analytic {}",
                grads[i]
            );
        }
        let mut kp = k.clone();
        kp.log_sf2 += eps;
        let mut km = k.clone();
        km.log_sf2 -= eps;
        let num = (kp.k(&x, &y) - km.k(&x, &y)) / (2.0 * eps);
        assert!((num - gsf).abs() < 1e-6, "{kind:?} sf2: {num} vs {gsf}");
    }

    #[test]
    fn gradients_match_numeric_matern() {
        numeric_grad(KernelKind::Matern52);
    }

    #[test]
    fn gradients_match_numeric_rbf() {
        numeric_grad(KernelKind::Rbf);
    }

    #[test]
    fn kernel_properties() {
        let k = ArdKernel::new(KernelKind::Matern52, 2, 1.0, 2.0);
        let x = [0.5, -0.5];
        // k(x,x) = sf²
        assert!((k.k(&x, &x) - 2.0).abs() < 1e-12);
        // symmetry and decay
        let y = [1.5, 0.5];
        assert!((k.k(&x, &y) - k.k(&y, &x)).abs() < 1e-15);
        assert!(k.k(&x, &y) < k.k(&x, &x));
        let z = [5.0, 5.0];
        assert!(k.k(&x, &z) < k.k(&x, &y));
    }

    #[test]
    fn ard_scales_matter() {
        // A long length-scale in one dimension makes it irrelevant.
        let mut k = ArdKernel::new(KernelKind::Matern52, 2, 1.0, 1.0);
        k.log_ls = vec![0.0, 10.0f64.ln() * 3.0]; // dim 1 effectively ignored
        let a = [0.0, 0.0];
        let b = [0.0, 5.0];
        assert!(k.k(&a, &b) > 0.99, "irrelevant dim should not decay the kernel");
        let c = [1.5, 0.0];
        assert!(k.k(&a, &c) < 0.7, "relevant dim must decay it");
    }
}
