//! GP regression tests beyond the in-module unit tests: RBF variant,
//! warm-started refits, and behaviour on larger dimensionality.

use citroen_gp::{Gp, GpConfig, KernelKind, Mat};

fn make_data(n: usize, d: usize, f: impl Fn(&[f64]) -> f64) -> (Mat, Vec<f64>) {
    let mut s = 0xABCDu64;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
    let y: Vec<f64> = rows.iter().map(|r| f(r)).collect();
    (Mat::from_rows(rows), y)
}

#[test]
fn rbf_kernel_fits_smooth_targets() {
    let (x, y) = make_data(40, 2, |r| (4.0 * r[0]).sin() + r[1]);
    let gp = Gp::fit(
        x,
        &y,
        GpConfig { kernel: KernelKind::Rbf, fit_iters: 40, yeo_johnson: false, ..Default::default() },
    );
    let (m, _) = gp.predict(&[0.5, 0.5]);
    let truth = (4.0f64 * 0.5).sin() + 0.5;
    assert!((m - truth).abs() < 0.3, "RBF mean {m} vs truth {truth}");
}

#[test]
fn warm_start_reproduces_cold_fit_quality() {
    let (x, y) = make_data(30, 3, |r| r.iter().sum::<f64>().powi(2));
    let cold = Gp::fit(x.clone(), &y, GpConfig { fit_iters: 40, ..Default::default() });
    // Warm start from the cold fit with zero extra iterations: same hypers,
    // so same predictions.
    let warm = Gp::fit(
        x,
        &y,
        GpConfig { fit_iters: 0, init: Some(cold.hypers()), ..Default::default() },
    );
    for q in [[0.2, 0.3, 0.4], [0.8, 0.1, 0.5]] {
        let (mc, vc) = cold.predict(&q);
        let (mw, vw) = warm.predict(&q);
        assert!((mc - mw).abs() < 1e-9);
        assert!((vc - vw).abs() < 1e-9);
    }
}

#[test]
fn higher_dimensional_fits_stay_stable() {
    // 40 points in 60-D (less data than dimensions) — the phase-ordering
    // statistics regime. The fit must stay numerically sane.
    let (x, y) = make_data(40, 60, |r| r[0] * 3.0 + r[1] - r[2] + 0.1 * r[10]);
    let gp = Gp::fit(x, &y, GpConfig { fit_iters: 20, ..Default::default() });
    let q = vec![0.5; 60];
    let (m, v) = gp.predict(&q);
    assert!(m.is_finite() && v.is_finite() && v >= 0.0);
    let ls = gp.lengthscales();
    assert_eq!(ls.len(), 60);
    assert!(ls.iter().all(|l| l.is_finite() && *l > 0.0));
}

#[test]
fn noise_floor_prevents_interpolation_blowup() {
    // Duplicated inputs with different outputs (measurement noise) must not
    // break the factorisation.
    let rows = vec![vec![0.5, 0.5]; 12];
    let y: Vec<f64> = (0..12).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
    let gp = Gp::fit(Mat::from_rows(rows), &y, GpConfig { fit_iters: 10, ..Default::default() });
    let (m, v) = gp.predict(&[0.5, 0.5]);
    assert!((m - gp.transform().forward(1.01)).abs() < 1.0);
    assert!(v.is_finite());
    assert!(gp.noise() > 0.0);
}
