//! Constant-range (interval) abstract interpretation.
//!
//! Computes, for every SSA value of every function, a sound over-approximation
//! `[lo, hi]` of the integer values it can take at runtime, with parameters at
//! ⊤ and calls summarised by the callee's return interval (module-level
//! bottom-up fixpoint). Floats and vectors are tracked as ⊤.
//!
//! The domain is flow-insensitive over SSA values (one interval per value, φs
//! join their incoming edges) with widening after a fixed number of visits, so
//! loop-carried values converge to their type range quickly. Precision is
//! deliberately modest — the consumers are the lints (`oob-index` needs only
//! constant/masked offsets) and the sanitizer, which compares facts for
//! *contradiction*, not tightness.

use citroen_ir::analysis::Cfg;
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Inst, Operand, Term, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::ScalarTy;
use std::collections::HashMap;

/// An integer interval `[lo, hi]` with `i128` bounds (so arithmetic on `i64`
/// endpoints cannot itself overflow). `lo > hi` encodes ⊥ (unreachable /
/// not-an-int).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// The empty interval (⊥).
    pub fn bottom() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// The full `i64` range (⊤ for canonical sign-extended register values).
    pub fn top() -> Interval {
        Interval { lo: i64::MIN as i128, hi: i64::MAX as i128 }
    }

    /// A singleton interval.
    pub fn constant(v: i64) -> Interval {
        Interval { lo: v as i128, hi: v as i128 }
    }

    /// The representable range of scalar type `s` in canonical (sign-extended)
    /// register form. `I1` values are `-1` (true) or `0` (false).
    pub fn type_range(s: ScalarTy) -> Interval {
        match s {
            ScalarTy::I1 => Interval { lo: -1, hi: 0 },
            ScalarTy::I8 => Interval { lo: i8::MIN as i128, hi: i8::MAX as i128 },
            ScalarTy::I16 => Interval { lo: i16::MIN as i128, hi: i16::MAX as i128 },
            ScalarTy::I32 => Interval { lo: i32::MIN as i128, hi: i32::MAX as i128 },
            ScalarTy::I64 | ScalarTy::F64 => Interval::top(),
        }
    }

    /// Whether the interval is empty.
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether the interval is a single constant, and which.
    pub fn as_const(&self) -> Option<i64> {
        if self.lo == self.hi && i64::try_from(self.lo).is_ok() {
            Some(self.lo as i64)
        } else {
            None
        }
    }

    /// Whether `v` is contained.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v as i128 && v as i128 <= self.hi
    }

    /// Least upper bound.
    pub fn join(&self, o: &Interval) -> Interval {
        if self.is_bottom() {
            return *o;
        }
        if o.is_bottom() {
            return *self;
        }
        Interval { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Greatest lower bound (intersection).
    pub fn meet(&self, o: &Interval) -> Interval {
        Interval { lo: self.lo.max(o.lo), hi: self.hi.min(o.hi) }
    }

    /// Whether `self ⊆ o`.
    pub fn subset_of(&self, o: &Interval) -> bool {
        self.is_bottom() || (o.lo <= self.lo && self.hi <= o.hi)
    }

    /// Widen against the previous value: any bound that grew jumps to the
    /// type-range bound, guaranteeing fast termination.
    pub fn widen(&self, prev: &Interval, s: ScalarTy) -> Interval {
        if prev.is_bottom() {
            return *self;
        }
        let tr = Interval::type_range(s);
        Interval {
            lo: if self.lo < prev.lo { tr.lo } else { self.lo },
            hi: if self.hi > prev.hi { tr.hi } else { self.hi },
        }
    }

    /// Clamp into the type range of `s`, modelling the wrap-to-canonical-form
    /// every instruction result goes through: if the exact result range fits
    /// the type it is kept, otherwise wrapping may have occurred anywhere and
    /// the result is the whole type range.
    fn wrap_to(self, s: ScalarTy) -> Interval {
        if self.is_bottom() {
            return self;
        }
        let tr = Interval::type_range(s);
        if self.subset_of(&tr) {
            self
        } else {
            tr
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        if *self == Interval::top() {
            return write!(f, "⊤");
        }
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Abstract evaluation of a binary operator on interval operands. Sound for
/// every `BinOp` (falls back to the type range where precision is not worth
/// the code), exact when both operands are singletons.
pub fn eval_bin(op: BinOp, s: ScalarTy, a: &Interval, b: &Interval) -> Interval {
    if a.is_bottom() || b.is_bottom() {
        return Interval::bottom();
    }
    if op.is_float() || s == ScalarTy::F64 {
        return Interval::top();
    }
    use BinOp::*;
    let r = match op {
        Add => Interval { lo: a.lo + b.lo, hi: a.hi + b.hi },
        Sub => Interval { lo: a.lo - b.hi, hi: a.hi - b.lo },
        Mul => {
            let corners =
                [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            Interval {
                lo: *corners.iter().min().unwrap(),
                hi: *corners.iter().max().unwrap(),
            }
        }
        SMin => Interval { lo: a.lo.min(b.lo), hi: a.hi.min(b.hi) },
        SMax => Interval { lo: a.lo.max(b.lo), hi: a.hi.max(b.hi) },
        And => {
            // `x & m` with a non-negative mask only keeps bits of the mask,
            // so the result lies in [0, max(m)] whatever `x` is.
            if a.lo >= 0 && b.lo >= 0 {
                Interval { lo: 0, hi: a.hi.min(b.hi) }
            } else if b.lo >= 0 {
                Interval { lo: 0, hi: b.hi }
            } else if a.lo >= 0 {
                Interval { lo: 0, hi: a.hi }
            } else {
                Interval::type_range(s)
            }
        }
        Or | Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                // Result of | or ^ on non-negatives cannot exceed the next
                // power-of-two above both operands, minus one.
                let m = (a.hi.max(b.hi) as u128).next_power_of_two();
                Interval { lo: 0, hi: (m.saturating_mul(2) - 1).min(i64::MAX as u128) as i128 }
            } else {
                Interval::type_range(s)
            }
        }
        SDiv | SRem | Shl | AShr | LShr => {
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => match exec_scalar(op, s, x, y) {
                    Some(v) => Interval::constant(v),
                    None => Interval::bottom(), // definite trap: no result value
                },
                _ => Interval::type_range(s),
            }
        }
        FAdd | FSub | FMul | FDiv => unreachable!("handled above"),
    };
    r.wrap_to(s)
}

/// Concrete scalar semantics for the constant × constant case, mirroring the
/// interpreter (`None` = traps).
fn exec_scalar(op: BinOp, ty: ScalarTy, a: i64, b: i64) -> Option<i64> {
    use BinOp::*;
    let bits = ty.bits().min(64);
    let shift_mask = (bits - 1) as i64;
    let r = match op {
        SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        Shl => a.wrapping_shl((b & shift_mask) as u32),
        AShr => ty.sext(a).wrapping_shr((b & shift_mask) as u32),
        LShr => ((ty.zext(a) as u64) >> ((b & shift_mask) as u64)) as i64,
        _ => unreachable!(),
    };
    Some(ty.wrap(r))
}

/// Abstract comparison: `Some(result)` when the interval relation is decided,
/// otherwise the full `i1` range.
pub fn eval_cmp(op: CmpOp, a: &Interval, b: &Interval) -> Interval {
    if a.is_bottom() || b.is_bottom() {
        return Interval::bottom();
    }
    use CmpOp::*;
    let (t, f) = (Interval::constant(-1), Interval::constant(0));
    match op {
        Eq => {
            if a.as_const().is_some() && a.as_const() == b.as_const() {
                t
            } else if a.meet(b).is_bottom() {
                f
            } else {
                Interval::type_range(ScalarTy::I1)
            }
        }
        Ne => {
            if a.meet(b).is_bottom() {
                t
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                f
            } else {
                Interval::type_range(ScalarTy::I1)
            }
        }
        Slt => decide(a.hi < b.lo, a.lo >= b.hi, t, f),
        Sle => decide(a.hi <= b.lo, a.lo > b.hi, t, f),
        Sgt => decide(a.lo > b.hi, a.hi <= b.lo, t, f),
        Sge => decide(a.lo >= b.hi, a.hi < b.lo, t, f),
    }
}

fn decide(always: bool, never: bool, t: Interval, f: Interval) -> Interval {
    if always {
        t
    } else if never {
        f
    } else {
        Interval::type_range(ScalarTy::I1)
    }
}

fn eval_cast(kind: CastKind, from: ScalarTy, to: ScalarTy, v: &Interval) -> Interval {
    if v.is_bottom() {
        return Interval::bottom();
    }
    match kind {
        // Canonical register form makes SExt the identity.
        CastKind::SExt => *v,
        CastKind::ZExt => {
            if v.lo >= 0 {
                *v
            } else {
                // Negative canonical values zero-extend to large positives.
                Interval { lo: 0, hi: (1i128 << from.bits().min(63)) - 1 }.wrap_to(to)
            }
        }
        CastKind::Trunc => {
            if v.subset_of(&Interval::type_range(to)) {
                *v
            } else {
                Interval::type_range(to)
            }
        }
        CastKind::SiToFp | CastKind::FpToSi => Interval::type_range(to),
    }
}

/// Per-function interval facts.
#[derive(Debug, Clone)]
pub struct FunctionIntervals {
    /// Interval of each SSA value (index = `ValueId`). Float and vector values
    /// are conservatively ⊤.
    pub val: Vec<Interval>,
    /// Join of the operand intervals of all reachable `ret` terminators; ⊥ if
    /// no reachable block returns a value.
    pub ret: Interval,
}

impl FunctionIntervals {
    /// Interval of an operand in this function.
    pub fn operand(&self, f: &Function, op: &Operand) -> Interval {
        operand_interval(&self.val, f, op)
    }
}

fn operand_interval(val: &[Interval], _f: &Function, op: &Operand) -> Interval {
    match op {
        Operand::Value(v) => val.get(v.idx()).copied().unwrap_or_else(Interval::top),
        Operand::ImmI(c, s) => Interval::constant(s.sext(*c)),
        Operand::ImmF(_) => Interval::top(),
        // A global's byte address: positive, but runtime-layout dependent.
        Operand::Global(_) => Interval { lo: 0, hi: i64::MAX as i128 },
    }
}

/// Module-level interval facts: one [`FunctionIntervals`] per function, plus
/// the callee return map used to close calls.
#[derive(Debug, Clone)]
pub struct ModuleIntervals {
    /// Facts per function, in module order.
    pub funcs: Vec<FunctionIntervals>,
}

impl ModuleIntervals {
    /// Facts for function `fi`.
    pub fn func(&self, fi: usize) -> &FunctionIntervals {
        &self.funcs[fi]
    }
}

const WIDEN_AFTER: u32 = 2;

/// Run the interval analysis over every function of `m`. Calls are closed by
/// iterating the per-function analysis with a shared callee-return map until
/// it stabilises (capped; the cap only costs precision, never soundness).
pub fn analyze_module(m: &Module) -> ModuleIntervals {
    let mut ret_of: Vec<Interval> = m
        .funcs
        .iter()
        .map(|f| match f.ret {
            Some(t) if t.lanes == 1 && t.scalar.is_int() => Interval::type_range(t.scalar),
            Some(_) => Interval::top(),
            None => Interval::bottom(),
        })
        .collect();
    let mut out: Vec<FunctionIntervals> = Vec::new();
    for round in 0..3 {
        out.clear();
        let mut changed = false;
        for (fi, f) in m.funcs.iter().enumerate() {
            let fa = analyze_function(f, &ret_of);
            // Callee map entries only ever shrink (start at type range), so
            // re-running with the tighter map is a narrowing, which is sound
            // here because every entry stays an over-approximation.
            let tightened = fa.ret.meet(&ret_of[fi]);
            if tightened != ret_of[fi] && round + 1 < 3 {
                ret_of[fi] = tightened;
                changed = true;
            }
            out.push(fa);
        }
        if !changed {
            break;
        }
    }
    ModuleIntervals { funcs: out }
}

/// Interval analysis of a single function given callee return intervals.
pub fn analyze_function(f: &Function, ret_of: &[Interval]) -> FunctionIntervals {
    let nv = f.value_ty.len();
    let mut val = vec![Interval::bottom(); nv];
    let mut visits = vec![0u32; nv];
    for (i, ty) in f.params.iter().enumerate() {
        val[i] = if ty.lanes == 1 && ty.scalar.is_int() {
            Interval::type_range(ty.scalar)
        } else {
            Interval::top()
        };
    }
    if f.blocks.is_empty() {
        return FunctionIntervals { val, ret: Interval::bottom() };
    }
    let cfg = Cfg::compute(f);

    // SSA + RPO means a handful of sweeps reach the (widened) fixpoint; the
    // bound is belt-and-braces for pathological φ cycles.
    for _sweep in 0..8 {
        let mut changed = false;
        for &b in &cfg.rpo {
            for inst in &f.blocks[b.idx()].insts {
                let Some(dst) = inst.dst() else { continue };
                let ty = f.ty(dst);
                let new = if ty.lanes > 1 || !ty.scalar.is_int() {
                    Interval::top()
                } else {
                    transfer(inst, f, &val, ret_of, ty.scalar)
                };
                let old = val[dst.idx()];
                let mut next = new.join(&old);
                if next != old {
                    visits[dst.idx()] += 1;
                    if visits[dst.idx()] > WIDEN_AFTER {
                        next = next.widen(&old, ty.scalar);
                    }
                    val[dst.idx()] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Return interval over reachable ret terminators.
    let mut ret = Interval::bottom();
    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue;
        }
        if let Term::Ret(Some(op)) = &blk.term {
            ret = ret.join(&operand_interval(&val, f, op));
        }
    }
    FunctionIntervals { val, ret }
}

fn transfer(
    inst: &Inst,
    f: &Function,
    val: &[Interval],
    ret_of: &[Interval],
    s: ScalarTy,
) -> Interval {
    let ival = |op: &Operand| operand_interval(val, f, op);
    match inst {
        Inst::Bin { op, lhs, rhs, .. } => eval_bin(*op, s, &ival(lhs), &ival(rhs)),
        Inst::Cmp { op, lhs, rhs, .. } => eval_cmp(*op, &ival(lhs), &ival(rhs)),
        Inst::Cast { kind, src, .. } => {
            eval_cast(*kind, f.operand_ty(src).scalar, s, &ival(src))
        }
        // Stack addresses are positive byte addresses.
        Inst::Alloca { .. } => Interval { lo: 0, hi: i64::MAX as i128 },
        Inst::Load { .. } => Interval::type_range(s),
        Inst::Store { .. } => Interval::bottom(),
        Inst::Call { callee, .. } => ret_of
            .get(callee.idx())
            .copied()
            .unwrap_or_else(|| Interval::type_range(s))
            .meet(&Interval::type_range(s)),
        Inst::Phi { incoming, .. } => {
            let mut r = Interval::bottom();
            for (_, op) in incoming {
                r = r.join(&ival(op));
            }
            r
        }
        Inst::Select { t, f: fv, .. } => ival(t).join(&ival(fv)).wrap_to(s),
        Inst::Splat { .. } | Inst::ExtractLane { .. } | Inst::Reduce { .. } => {
            Interval::type_range(s)
        }
    }
}

/// Convenience: the interval of value `v` in `fi`.
pub fn value_interval(mi: &ModuleIntervals, fi: usize, v: ValueId) -> Interval {
    mi.funcs[fi].val.get(v.idx()).copied().unwrap_or_else(Interval::top)
}

/// A cached map from (function index, value) to interval used by lint passes.
pub type IntervalMap = HashMap<(usize, u32), Interval>;

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::{counted_loop_ssa, FunctionBuilder};
    use citroen_ir::types::{I64, I8};

    fn intervals_of(f: Function) -> FunctionIntervals {
        analyze_function(&f, &[])
    }

    #[test]
    fn constants_fold() {
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let x = b.bin(BinOp::Add, I64, Operand::imm64(3), Operand::imm64(4));
        let y = b.bin(BinOp::Mul, I64, x, Operand::imm64(2));
        b.ret(Some(y));
        let fa = intervals_of(b.finish());
        assert_eq!(fa.ret.as_const(), Some(14));
    }

    #[test]
    fn clamp_gives_tight_range() {
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let lo = b.bin(BinOp::SMax, I64, b.param(0), Operand::imm64(5));
        let clamped = b.bin(BinOp::SMin, I64, lo, Operand::imm64(10));
        b.ret(Some(clamped));
        let fa = intervals_of(b.finish());
        assert_eq!(fa.ret, Interval { lo: 5, hi: 10 });
    }

    #[test]
    fn mask_bounds_addressing() {
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let masked = b.bin(BinOp::And, I64, b.param(0), Operand::imm64(255));
        b.ret(Some(masked));
        let fa = intervals_of(b.finish());
        assert_eq!(fa.ret, Interval { lo: 0, hi: 255 });
    }

    #[test]
    fn narrow_types_wrap_to_type_range() {
        let mut b = FunctionBuilder::new("f", vec![I8], Some(I8));
        let x = b.bin(BinOp::Add, I8, b.param(0), Operand::ImmI(1, ScalarTy::I8));
        b.ret(Some(x));
        let fa = intervals_of(b.finish());
        assert_eq!(fa.ret, Interval::type_range(ScalarTy::I8));
    }

    #[test]
    fn loop_phi_widens_but_stays_sound() {
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, c| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let nx = b.bin(BinOp::Add, I64, acc, iv);
            c.feed(acc, nx);
        });
        b.ret(Some(merged[0]));
        let fa = intervals_of(b.finish());
        // Must contain every reachable concrete sum (e.g. 45 for n = 10).
        assert!(fa.ret.contains(0));
        assert!(fa.ret.contains(45));
    }

    #[test]
    fn decided_compares() {
        let a = Interval { lo: 0, hi: 5 };
        let b = Interval { lo: 10, hi: 20 };
        assert_eq!(eval_cmp(CmpOp::Slt, &a, &b).as_const(), Some(-1));
        assert_eq!(eval_cmp(CmpOp::Sgt, &a, &b).as_const(), Some(0));
        assert_eq!(eval_cmp(CmpOp::Eq, &a, &b).as_const(), Some(0));
        assert_eq!(
            eval_cmp(CmpOp::Slt, &a, &Interval { lo: 3, hi: 4 }),
            Interval::type_range(ScalarTy::I1)
        );
    }

    #[test]
    fn join_meet_widen_laws() {
        let a = Interval { lo: 0, hi: 5 };
        let b = Interval { lo: 3, hi: 9 };
        assert_eq!(a.join(&b), Interval { lo: 0, hi: 9 });
        assert_eq!(a.meet(&b), Interval { lo: 3, hi: 5 });
        assert!(a.meet(&Interval { lo: 7, hi: 9 }).is_bottom());
        assert_eq!(Interval::bottom().join(&a), a);
        let w = b.widen(&a, ScalarTy::I64);
        assert!(b.subset_of(&w));
    }

    #[test]
    fn division_by_provable_zero_is_bottom() {
        let z = Interval::constant(0);
        let one = Interval::constant(1);
        assert!(eval_bin(BinOp::SDiv, ScalarTy::I64, &one, &z).is_bottom());
        assert_eq!(eval_bin(BinOp::SDiv, ScalarTy::I64, &Interval::constant(9), &Interval::constant(3)).as_const(), Some(3));
    }
}
