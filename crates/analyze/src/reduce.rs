//! Delta debugging: minimise failing pass sequences and failing modules.
//!
//! Two reducers, both oracle-driven (the caller supplies a `fails` predicate
//! that must stay true while the input shrinks):
//!
//! - [`ddmin`] is the classic Zeller/Hildebrandt chunk-removal loop over any
//!   list — the fuzzer uses it on pass sequences.
//! - [`reduce_module`] shrinks an IR module by trying candidate edits
//!   (conditional-branch simplification, instruction deletion with uses
//!   replaced by zero, unreachable-block removal) and keeping an edit only if
//!   the module still verifies *and* still fails. Verifier gating means the
//!   edits themselves can be crude; anything structurally broken is simply
//!   rejected.

use citroen_ir::inst::{BlockId, Inst, Operand, Term};
use citroen_ir::module::{Function, Module};
use citroen_ir::verify::verify_module;

/// Minimise `input` to a (1-minimal) sublist for which `fails` still returns
/// true. Preserves element order. Assumes `fails(input)` is true; the result
/// may be empty if the empty list also fails.
pub fn ddmin<T: Clone>(input: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = input.to_vec();
    let mut n = 2usize;
    while cur.len() >= 1 && n >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            // Candidate = everything except cur[start..end].
            let mut cand: Vec<T> = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if cand.len() < cur.len() && fails(&cand) {
                cur = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= cur.len() {
                break; // single-element granularity exhausted: 1-minimal
            }
            n = (n * 2).min(cur.len().max(2));
        }
    }
    cur
}

/// Shrink `m` while `fails` keeps returning true on the (always
/// verifier-clean) candidate. Returns the reduced module with unreachable
/// blocks removed and block ids compacted.
pub fn reduce_module(m: &Module, mut fails: impl FnMut(&Module) -> bool) -> Module {
    let mut cur = m.clone();
    loop {
        let mut progress = false;

        // 0. Terminator replacement: end any block in a plain `ret 0`, which
        //    cuts loops and tails in one step.
        for fi in 0..cur.funcs.len() {
            let Some(ret) = zero_ret(&cur.funcs[fi]) else { continue };
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                if cur.funcs[fi].blocks[bi].term != ret {
                    let mut cand = cur.clone();
                    cand.funcs[fi].blocks[bi].term = ret.clone();
                    if accept(&mut cand, &mut fails) {
                        cur = cand;
                        progress = true;
                    }
                }
                bi += 1;
            }
        }

        // 1. Branch simplification: each CondBr to each of its arms. Accepted
        //    candidates compact the block list, so bounds are re-read every
        //    iteration instead of being hoisted.
        for fi in 0..cur.funcs.len() {
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                let Term::CondBr { t, f, .. } = cur.funcs[fi].blocks[bi].term else {
                    bi += 1;
                    continue;
                };
                for target in [t, f] {
                    let mut cand = cur.clone();
                    cand.funcs[fi].blocks[bi].term = Term::Br(target);
                    if accept(&mut cand, &mut fails) {
                        cur = cand;
                        progress = true;
                        break;
                    }
                }
                bi += 1;
            }
        }

        // 2. Unreachable-block removal (shrinks the block count the branch
        //    edits opened up).
        {
            let mut cand = cur.clone();
            let mut removed = false;
            for f in &mut cand.funcs {
                removed |= remove_unreachable_blocks(f);
            }
            if removed && accept(&mut cand, &mut fails) {
                cur = cand;
                progress = true;
            }
        }

        // 2a. Single-incoming φs become plain copies of their operand.
        for fi in 0..cur.funcs.len() {
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                if let Some(cand) = elim_single_phi(&cur, fi, bi) {
                    let mut cand = cand;
                    if accept(&mut cand, &mut fails) {
                        cur = cand;
                        progress = true;
                        continue;
                    }
                }
                bi += 1;
            }
        }

        // 2b. Merge straight-line `br` chains (b → t where b is t's only
        //     predecessor), collapsing the block count.
        for fi in 0..cur.funcs.len() {
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                if let Some(cand) = merge_chain(&cur, fi, bi) {
                    let mut cand = cand;
                    if accept(&mut cand, &mut fails) {
                        cur = cand;
                        progress = true;
                        continue;
                    }
                }
                bi += 1;
            }
        }

        // 2c. Forward edges through empty `br` blocks (p → b → t becomes
        //     p → t), which collapses empty loop latches.
        for fi in 0..cur.funcs.len() {
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                if let Some(cand) = forward_empty_block(&cur, fi, bi) {
                    let mut cand = cand;
                    if accept(&mut cand, &mut fails) {
                        cur = cand;
                        progress = true;
                        continue;
                    }
                }
                bi += 1;
            }
        }

        // 3. Instruction deletion, uses replaced by a zero immediate.
        for fi in 0..cur.funcs.len() {
            let mut bi = 0;
            while bi < cur.funcs[fi].blocks.len() {
                let mut ii = 0;
                while ii < cur.funcs[fi].blocks[bi].insts.len() {
                    if let Some(cand) = delete_inst(&cur, fi, bi, ii) {
                        let mut cand = cand;
                        if accept(&mut cand, &mut fails) {
                            cur = cand;
                            progress = true;
                            continue; // same index now holds the next inst
                        }
                    }
                    ii += 1;
                }
                bi += 1;
            }
        }

        if !progress {
            break;
        }
    }
    cur
}

/// Normalise a candidate (drop stale φ edges, compact blocks) and test it:
/// it is accepted only if it still verifies and still fails.
fn accept(cand: &mut Module, fails: &mut impl FnMut(&Module) -> bool) -> bool {
    for f in cand.funcs.iter_mut() {
        remove_unreachable_blocks(f);
        cleanup_phis(f);
    }
    verify_module(cand).is_empty() && fails(cand)
}

/// The `ret 0` terminator matching the function's return type, if it has an
/// immediate form.
fn zero_ret(f: &Function) -> Option<Term> {
    match f.ret {
        None => Some(Term::Ret(None)),
        Some(ty) if ty.lanes == 1 && ty.scalar.is_int() => {
            Some(Term::Ret(Some(Operand::ImmI(0, ty.scalar))))
        }
        Some(ty) if ty.lanes == 1 => Some(Term::Ret(Some(Operand::ImmF(0.0)))),
        Some(_) => None, // vector returns have no immediate operand form
    }
}

/// Candidate replacing the first single-incoming φ of block `bi` with its
/// operand (all uses rewritten, φ deleted). `None` if no such φ.
fn elim_single_phi(m: &Module, fi: usize, bi: usize) -> Option<Module> {
    let f = &m.funcs[fi];
    let (ii, dst, rep) = f.blocks[bi].insts.iter().enumerate().find_map(|(i, inst)| {
        match inst {
            Inst::Phi { dst, incoming } if incoming.len() == 1 => {
                Some((i, *dst, incoming[0].1))
            }
            _ => None,
        }
    })?;
    let mut cand = m.clone();
    cand.funcs[fi].blocks[bi].insts.remove(ii);
    let func = &mut cand.funcs[fi];
    for blk in &mut func.blocks {
        for inst in &mut blk.insts {
            inst.for_each_operand_mut(&mut |op: &mut Operand| {
                if *op == Operand::Value(dst) {
                    *op = rep;
                }
            });
        }
        blk.term.for_each_operand_mut(&mut |op: &mut Operand| {
            if *op == Operand::Value(dst) {
                *op = rep;
            }
        });
    }
    Some(cand)
}

/// Candidate merging block `bi` with its unique `Br` successor `t`, when `bi`
/// is `t`'s only predecessor and `t` has no φs. `None` if the shape does not
/// apply.
fn merge_chain(m: &Module, fi: usize, bi: usize) -> Option<Module> {
    let f = &m.funcs[fi];
    let Term::Br(t) = f.blocks[bi].term else { return None };
    if t.idx() == bi {
        return None;
    }
    // t must have exactly one incoming edge (ours) and no φs.
    let mut incoming_edges = 0;
    for blk in &f.blocks {
        for s in blk.term.successors() {
            if s == t {
                incoming_edges += 1;
            }
        }
    }
    if incoming_edges != 1 || f.blocks[t.idx()].num_phis() != 0 {
        return None;
    }
    let mut cand = m.clone();
    let func = &mut cand.funcs[fi];
    let tail = std::mem::take(&mut func.blocks[t.idx()].insts);
    let term = std::mem::replace(&mut func.blocks[t.idx()].term, Term::Unreachable);
    func.blocks[bi].insts.extend(tail);
    func.blocks[bi].term = term;
    Some(cand)
}

/// Candidate retargeting every edge into the empty `br`-only block `bi`
/// directly to its successor. `None` when the shape does not apply (the block
/// has instructions, branches to itself, or the successor has φs that would
/// need new incoming edges).
fn forward_empty_block(m: &Module, fi: usize, bi: usize) -> Option<Module> {
    let f = &m.funcs[fi];
    if !f.blocks[bi].insts.is_empty() {
        return None;
    }
    let Term::Br(t) = f.blocks[bi].term else { return None };
    if t.idx() == bi || f.blocks[t.idx()].num_phis() != 0 {
        return None;
    }
    let b_id = BlockId(bi as u32);
    let mut cand = m.clone();
    let mut changed = false;
    for (pi, blk) in cand.funcs[fi].blocks.iter_mut().enumerate() {
        if pi == bi {
            continue;
        }
        blk.term.for_each_successor_mut(&mut |s: &mut BlockId| {
            if *s == b_id {
                *s = t;
                changed = true;
            }
        });
    }
    changed.then_some(cand)
}

/// Candidate with instruction `ii` of block `bi` removed; value uses are
/// replaced by a typed zero. `None` if the instruction cannot be deleted
/// this way (vector-typed result — no immediate operand form exists).
fn delete_inst(m: &Module, fi: usize, bi: usize, ii: usize) -> Option<Module> {
    let f = &m.funcs[fi];
    let inst = &f.blocks[bi].insts[ii];
    let replacement = match inst.dst() {
        None => None,
        Some(d) => {
            let ty = f.ty(d);
            if ty.lanes != 1 {
                return None;
            }
            Some(if ty.scalar.is_int() {
                Operand::ImmI(0, ty.scalar)
            } else {
                Operand::ImmF(0.0)
            })
        }
    };
    let mut cand = m.clone();
    let removed = cand.funcs[fi].blocks[bi].insts.remove(ii);
    if let (Some(d), Some(rep)) = (removed.dst(), replacement) {
        let func = &mut cand.funcs[fi];
        for blk in &mut func.blocks {
            for inst in &mut blk.insts {
                inst.for_each_operand_mut(&mut |op: &mut Operand| {
                    if *op == Operand::Value(d) {
                        *op = rep;
                    }
                });
            }
            blk.term.for_each_operand_mut(&mut |op: &mut Operand| {
                if *op == Operand::Value(d) {
                    *op = rep;
                }
            });
        }
    }
    Some(cand)
}

/// Drop blocks unreachable from the entry and renumber the rest. Returns
/// whether anything was removed.
fn remove_unreachable_blocks(f: &mut Function) -> bool {
    if f.blocks.is_empty() {
        return false;
    }
    let cfg = citroen_ir::analysis::Cfg::compute(f);
    let n = f.blocks.len();
    let mut map: Vec<Option<BlockId>> = vec![None; n];
    let mut next = 0u32;
    for i in 0..n {
        if cfg.reachable(BlockId(i as u32)) {
            map[i] = Some(BlockId(next));
            next += 1;
        }
    }
    if next as usize == n {
        return false;
    }
    let mut old = std::mem::take(&mut f.blocks);
    for (i, blk) in old.drain(..).enumerate() {
        if map[i].is_some() {
            f.blocks.push(blk);
        }
    }
    for blk in &mut f.blocks {
        blk.term.for_each_successor_mut(&mut |s: &mut BlockId| {
            *s = map[s.idx()].expect("edge from reachable to unreachable block");
        });
        for inst in &mut blk.insts {
            if let Inst::Phi { incoming, .. } = inst {
                incoming.retain(|(p, _)| map[p.idx()].is_some());
                for (p, _) in incoming.iter_mut() {
                    *p = map[p.idx()].unwrap();
                }
            }
        }
    }
    true
}

/// Drop φ edges whose source is no longer a predecessor (after branch edits)
/// and deduplicate. Keeps the φ itself even with a single edge — the verifier
/// accepts that as long as edges match predecessors.
fn cleanup_phis(f: &mut Function) {
    let cfg = citroen_ir::analysis::Cfg::compute(f);
    for (bi, blk) in f.blocks.iter_mut().enumerate() {
        let preds = &cfg.preds[bi];
        for inst in &mut blk.insts {
            if let Inst::Phi { incoming, .. } = inst {
                let mut seen = Vec::new();
                incoming.retain(|(p, _)| {
                    let keep = preds.contains(p) && !seen.contains(p);
                    if keep {
                        seen.push(*p);
                    }
                    keep
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::BinOp;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::I64;

    #[test]
    fn ddmin_finds_minimal_pair() {
        let input: Vec<i32> = (0..20).collect();
        let out = ddmin(&input, |s| s.contains(&3) && s.contains(&17));
        assert_eq!(out, vec![3, 17]);
    }

    #[test]
    fn ddmin_single_culprit() {
        let input: Vec<i32> = (0..7).collect();
        let out = ddmin(&input, |s| s.contains(&5));
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn ddmin_keeps_order() {
        let input = vec![9, 1, 8, 2, 7, 3];
        let out = ddmin(&input, |s| {
            let a = s.iter().position(|&x| x == 8);
            let b = s.iter().position(|&x| x == 3);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(out, vec![8, 3]);
    }

    #[test]
    fn module_reducer_shrinks_loop_to_store() {
        // A loop storing to @out; the interesting property is "some store to
        // @out remains". The reducer should strip the loop entirely.
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(2048), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, iv| {
            let x = b.bin(BinOp::Mul, I64, iv, Operand::imm64(3));
            let masked = b.bin(BinOp::And, I64, x, Operand::imm64(255));
            let addr = b.gep(Operand::Global(g), masked, 8);
            b.store(I64, Operand::imm64(1), addr);
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());

        let has_store = |m: &Module| {
            m.funcs.iter().any(|f| {
                f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, Inst::Store { .. }))
            })
        };
        assert!(has_store(&m));
        let red = reduce_module(&m, has_store);
        assert!(verify_module(&red).is_empty());
        assert!(has_store(&red));
        let f = &red.funcs[0];
        assert!(
            f.blocks.len() <= 2,
            "loop should be gone, got {} blocks:\n{}",
            f.blocks.len(),
            citroen_ir::print::print_module(&red)
        );
        assert!(f.num_insts() <= 2, "only the store (and maybe its addr) should remain");
    }
}
