//! Static analysis over the CITROEN IR: dataflow analyses, lints, the
//! per-pass translation-validation sanitizer, and delta-debugging reducers.
//!
//! The tuners in this repository explore millions of random pass orderings;
//! the whole experiment silently rots if any pass bug keeps the IR
//! *well-formed* but changes semantics. This crate is the enforcement layer
//! (DESIGN.md, "Correctness: static analysis and translation validation"):
//!
//! - [`intervals`] — constant-range abstract interpretation per SSA value,
//!   with a module-level callee-return fixpoint.
//! - [`liveness`] — backward SSA liveness (φ-operands as edge uses).
//! - [`alias`] — intraprocedural flow-sensitive must/may/no-alias queries:
//!   exact symbolic address decomposition plus root classification, the
//!   substrate for sharp loop-pass preconditions and rules S9–S11.
//! - [`depgraph`] — per-loop memory dependence graphs over the alias
//!   relation, separating loop-carried from loop-independent dependences
//!   with conservative call handling via [`memeffects`] summaries.
//! - [`memeffects`] — conservative alias/clobber summaries per function:
//!   may/must global read-write sets, stored-value ranges, and a
//!   must-terminate proof used to arm the sanitizer.
//! - [`lint`] — definite-by-construction diagnostics (dead stores,
//!   unreachable blocks, uninitialised loads, out-of-bounds indexing,
//!   trivially infinite loops).
//! - [`valmap`] — per-value dataflow fingerprints (fixpoint over φ-cycles)
//!   and the before/after value correspondence map that lets the sanitizer
//!   report miscompiles at the exact value.
//! - [`sanitize`] — cross-checks pre-/post-pass facts for semantic
//!   *contradictions* a structurally-valid miscompile cannot hide, at both
//!   function (S1–S5) and value (S6–S8) granularity.
//! - [`oracle`] — the pass-applicability fact bundle and verdict types
//!   behind `Pass::precondition` (`CannotFire` is a fuzz-enforced theorem),
//!   plus the pass-interaction graph and its JSON form.
//! - [`reduce`] — `ddmin` over pass sequences and a verifier-gated module
//!   reducer that shrinks failures to minimal parseable reproducers.
//!
//! Dependencies are `citroen-ir` and `citroen-rt` (JSON emission); the pass
//! manager plugs [`sanitize`] in behind `CITROEN_SANITIZE`, and the
//! `citroen-analyze` binary drives the fuzz-and-reduce loop.

#![warn(missing_docs)]

pub mod alias;
pub mod aliasoracle;
pub mod depgraph;
pub mod intervals;
pub mod lint;
pub mod liveness;
pub mod memeffects;
pub mod oracle;
pub mod reduce;
pub mod sanitize;
pub mod valmap;

pub use alias::{AliasAnalysis, AliasResult, SymAddr};
pub use depgraph::{loop_dep_graphs, Dep, LoopDepGraph, MemRef, RefKind};
pub use intervals::{analyze_module as interval_analysis, Interval, ModuleIntervals};
pub use lint::{filter_severity, lint_module, Diagnostic, Severity};
pub use liveness::Liveness;
pub use memeffects::{MemEffects, ModuleEffects};
pub use oracle::{compute_facts, Facts, InteractionGraph, Verdict, WorkModel};
pub use reduce::{ddmin, reduce_module};
pub use sanitize::{check as sanitize_check, module_facts, ModuleFacts, Violation};
pub use valmap::{correspond, value_facts, ValueFacts};
