//! Intraprocedural flow-sensitive alias analysis.
//!
//! Answers must/may/no-alias queries between pairs of memory accesses of one
//! function, combining two independent sound arguments:
//!
//! 1. **Symbolic decomposition** ([`SymAddr`]): every address operand is
//!    decomposed into `Σ coeffᵢ·atomᵢ + const` over wrapping `i64` arithmetic
//!    by walking `add`/`sub`/`mul`-by-const/`shl`-by-const chains of scalar
//!    `i64` defs. Values the walk cannot see through (loads, calls, φs,
//!    parameters, casts, narrow arithmetic) become opaque atoms, so the
//!    decomposition is *exact* — in any single execution state two addresses
//!    with equal canonical decompositions are equal, and two with equal atom
//!    lists differ by exactly the (wrapping) difference of their constant
//!    offsets. SSA gives the flow-sensitivity: an atom names the value the
//!    program computed at its def, so both sides of a query are compared in
//!    the same state.
//! 2. **Root classification** (via [`memeffects::classify_addr`]): addresses
//!    rooted at distinct in-bounds globals, at a global vs. the alloca stack,
//!    or at two distinct allocas cannot overlap, because the interpreter lays
//!    globals out disjointly at the bottom of memory and bump-allocates
//!    allocas above them (two live allocas of one invocation never share
//!    bytes; re-executing an alloca yields a fresh region). The interval of
//!    the offset-from-root refines same-root queries.
//!
//! Lattice and termination: the per-value points-to domain is
//! `Root × Interval` — `Root` is the flat lattice `None ⊏ {Global(g),
//! Stack(v)} ⊏ Unknown` and offsets live in the interval domain. φ/select
//! joins stay on the same root or go to ⊤; cycles are cut by the classifier's
//! memo table (in-progress values read as ⊤) and a depth bound, so one pass
//! over the (finite) SSA value graph terminates. The symbolic walk is bounded
//! by an atom budget and strictly decreasing work-list weight.
//!
//! The answers are *checkable*: `citroen-analyze alias-oracle` replays every
//! `No`/`Must` verdict against concrete interpreter runs (see the root
//! crate's `alias_oracle` module), the same way the precondition and
//! subsumption theorems are fuzz-verified.

use crate::intervals::{FunctionIntervals, Interval};
use crate::memeffects::{classify_addr, Access, Root};
use citroen_ir::inst::{BinOp, Inst, Operand, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::types::ScalarTy;
use std::collections::HashMap;

/// Answer of an alias query between two `(address, size)` accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasResult {
    /// The byte ranges provably never overlap (in any state where both
    /// addresses are evaluated).
    No,
    /// Overlap cannot be ruled out.
    May,
    /// The start addresses are provably equal in every such state.
    Must,
}

/// One term of a symbolic address: an opaque SSA value or a global base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// An SSA value the decomposition does not see through.
    Value(u32),
    /// The base address of module global `g`.
    Global(u32),
}

/// Exact symbolic form of an address: `Σ coeff·atom + offset` over wrapping
/// `i64` arithmetic. Terms are sorted, coalesced and zero-coefficient-free,
/// so equal decompositions mean equal concrete addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymAddr {
    /// Non-constant terms `(atom, coefficient)`, canonically sorted.
    pub terms: Vec<(Atom, i64)>,
    /// Constant byte offset (wrapping `i64`).
    pub offset: i64,
}

impl SymAddr {
    /// Whether the address is `atom + const` for a single unit-coefficient atom.
    pub fn single_base(&self) -> Option<Atom> {
        match self.terms.as_slice() {
            [(a, 1)] => Some(*a),
            _ => None,
        }
    }
}

/// Alias queries over one function. Construction precomputes def sites and
/// alloca sizes; each query is then a pair of bounded walks.
pub struct AliasAnalysis<'a> {
    m: &'a Module,
    f: &'a Function,
    fi: &'a FunctionIntervals,
    /// Defining instruction index per value: `(block, inst)`.
    def_site: HashMap<u32, (usize, usize)>,
    /// Bytes reserved by each alloca, keyed by its dst value.
    alloca_bytes: HashMap<u32, u32>,
}

impl<'a> AliasAnalysis<'a> {
    /// Build the analysis for function `f` of `m` with its interval facts.
    pub fn new(m: &'a Module, f: &'a Function, fi: &'a FunctionIntervals) -> AliasAnalysis<'a> {
        let mut def_site = HashMap::new();
        let mut alloca_bytes = HashMap::new();
        for (bi, blk) in f.blocks.iter().enumerate() {
            for (ii, inst) in blk.insts.iter().enumerate() {
                if let Some(d) = inst.dst() {
                    def_site.insert(d.0, (bi, ii));
                }
                if let Inst::Alloca { dst, bytes } = inst {
                    alloca_bytes.insert(dst.0, *bytes);
                }
            }
        }
        AliasAnalysis { m, f, fi, def_site, alloca_bytes }
    }

    /// The function under analysis.
    pub fn function(&self) -> &Function {
        self.f
    }

    /// Exact symbolic decomposition of an address operand.
    pub fn symbolic(&self, op: &Operand) -> SymAddr {
        let mut terms: Vec<(Atom, i64)> = Vec::new();
        let mut offset = 0i64;
        // (operand, coefficient) work list; budget bounds pathological chains.
        let mut work: Vec<(Operand, i64)> = vec![(*op, 1)];
        let mut budget = 64u32;
        while let Some((cur, coeff)) = work.pop() {
            if coeff == 0 {
                continue;
            }
            budget = budget.saturating_sub(1);
            match cur {
                Operand::ImmI(v, _) => offset = offset.wrapping_add(v.wrapping_mul(coeff)),
                Operand::ImmF(_) => terms.push((Atom::Value(u32::MAX), coeff)),
                Operand::Global(g) => terms.push((Atom::Global(g.0), coeff)),
                Operand::Value(v) => {
                    let def = self.def_site.get(&v.0).map(|&(b, i)| &self.f.blocks[b].insts[i]);
                    let decomposable = budget > 0
                        && terms.len() <= 8
                        && self.f.ty(v) == citroen_ir::types::I64;
                    match def {
                        Some(Inst::Bin { op: BinOp::Add, lhs, rhs, .. }) if decomposable => {
                            work.push((*lhs, coeff));
                            work.push((*rhs, coeff));
                        }
                        Some(Inst::Bin { op: BinOp::Sub, lhs, rhs, .. }) if decomposable => {
                            work.push((*lhs, coeff));
                            work.push((*rhs, coeff.wrapping_neg()));
                        }
                        Some(Inst::Bin { op: BinOp::Mul, lhs, rhs, .. }) if decomposable => {
                            match (lhs.as_const_int(), rhs.as_const_int()) {
                                (_, Some(c)) => work.push((*lhs, coeff.wrapping_mul(c))),
                                (Some(c), _) => work.push((*rhs, coeff.wrapping_mul(c))),
                                _ => terms.push((Atom::Value(v.0), coeff)),
                            }
                        }
                        Some(Inst::Bin { op: BinOp::Shl, lhs, rhs, .. }) if decomposable => {
                            match rhs.as_const_int() {
                                // The interpreter masks shift amounts by 63.
                                Some(k) => work.push((
                                    *lhs,
                                    coeff.wrapping_mul(1i64.wrapping_shl(k as u32 & 63)),
                                )),
                                None => terms.push((Atom::Value(v.0), coeff)),
                            }
                        }
                        _ => terms.push((Atom::Value(v.0), coeff)),
                    }
                }
            }
        }
        // Canonicalise: sort, coalesce, drop zeros.
        terms.sort_unstable_by_key(|&(a, _)| a);
        let mut canon: Vec<(Atom, i64)> = Vec::with_capacity(terms.len());
        for (a, c) in terms {
            match canon.last_mut() {
                Some((pa, pc)) if *pa == a => *pc = pc.wrapping_add(c),
                _ => canon.push((a, c)),
            }
        }
        canon.retain(|&(_, c)| c != 0);
        SymAddr { terms: canon, offset }
    }

    /// Root classification of an address operand (memeffects machinery).
    pub fn classify(&self, op: &Operand) -> Access {
        classify_addr(self.f, self.fi, op)
    }

    fn global_in_bounds(&self, a: &Access, bytes: u32) -> bool {
        match a.root {
            Root::Global(g) => {
                (g as usize) < self.m.globals.len()
                    && !a.offset.is_bottom()
                    && a.offset.lo >= 0
                    && a.offset.hi + bytes as i128
                        <= self.m.globals[g as usize].init.bytes() as i128
            }
            _ => false,
        }
    }

    fn stack_in_bounds(&self, a: &Access, bytes: u32) -> bool {
        match a.root {
            Root::Stack(v) => match self.alloca_bytes.get(&v) {
                Some(&size) => {
                    !a.offset.is_bottom()
                        && a.offset.lo >= 0
                        && a.offset.hi + bytes as i128 <= size as i128
                }
                None => false,
            },
            _ => false,
        }
    }

    /// Alias relation between access `a` of `sa` bytes and access `b` of `sb`
    /// bytes. `Must` means equal start addresses; `No` means the byte ranges
    /// `[a, a+sa)` and `[b, b+sb)` are disjoint.
    pub fn alias(&self, a: &Operand, sa: u32, b: &Operand, sb: u32) -> AliasResult {
        // Argument 1: exact symbolic difference.
        let xa = self.symbolic(a);
        let xb = self.symbolic(b);
        if xa.terms == xb.terms {
            // Addresses differ by exactly d (wrapping, as the machine computes
            // them); the ranges overlap iff d ∈ (-sa, sb) mod 2⁶⁴.
            let d = (xa.offset as u64).wrapping_sub(xb.offset as u64);
            if d == 0 {
                return AliasResult::Must;
            }
            if d >= sb as u64 && d.wrapping_neg() >= sa as u64 {
                return AliasResult::No;
            }
            // Certain partial overlap: not a must-start-alias, not disjoint.
            return AliasResult::May;
        }

        // Argument 2: independent roots / refined same-root offsets.
        let ca = self.classify(a);
        let cb = self.classify(b);
        match (ca.root, cb.root) {
            (Root::Global(ga), Root::Global(gb)) if ga != gb => {
                // Distinct globals are laid out disjointly, but only in-bounds
                // accesses are confined to their own global.
                if self.global_in_bounds(&ca, sa) && self.global_in_bounds(&cb, sb) {
                    return AliasResult::No;
                }
            }
            (Root::Global(ga), Root::Global(gb)) if ga == gb => {
                if self.global_in_bounds(&ca, sa) && self.global_in_bounds(&cb, sb) {
                    // In-bounds offsets cannot wrap; disjoint intervals mean
                    // disjoint ranges, singleton equal offsets mean must.
                    if ca.offset.hi + sa as i128 <= cb.offset.lo
                        || cb.offset.hi + sb as i128 <= ca.offset.lo
                    {
                        return AliasResult::No;
                    }
                    if let (Some(x), Some(y)) = (ca.offset.as_const(), cb.offset.as_const()) {
                        if x == y {
                            return AliasResult::Must;
                        }
                    }
                }
            }
            // Globals live below the alloca region; a forward-offset stack
            // access can never reach down into an in-bounds global access.
            (Root::Global(_), Root::Stack(_)) => {
                if self.global_in_bounds(&ca, sa)
                    && !cb.offset.is_bottom()
                    && cb.offset.lo >= 0
                {
                    return AliasResult::No;
                }
            }
            (Root::Stack(_), Root::Global(_)) => {
                if self.global_in_bounds(&cb, sb)
                    && !ca.offset.is_bottom()
                    && ca.offset.lo >= 0
                {
                    return AliasResult::No;
                }
            }
            (Root::Stack(va), Root::Stack(vb)) if va != vb => {
                // Two live allocas of one invocation never share bytes.
                if self.stack_in_bounds(&ca, sa) && self.stack_in_bounds(&cb, sb) {
                    return AliasResult::No;
                }
            }
            (Root::Stack(va), Root::Stack(vb)) if va == vb => {
                if self.stack_in_bounds(&ca, sa) && self.stack_in_bounds(&cb, sb) {
                    if ca.offset.hi + sa as i128 <= cb.offset.lo
                        || cb.offset.hi + sb as i128 <= ca.offset.lo
                    {
                        return AliasResult::No;
                    }
                    if let (Some(x), Some(y)) = (ca.offset.as_const(), cb.offset.as_const()) {
                        if x == y {
                            return AliasResult::Must;
                        }
                    }
                }
            }
            _ => {}
        }
        AliasResult::May
    }

    /// Whether the ranges provably cannot overlap.
    pub fn no_alias(&self, a: &Operand, sa: u32, b: &Operand, sb: u32) -> bool {
        self.alias(a, sa, b, sb) == AliasResult::No
    }

    /// Whether the start addresses are provably equal.
    pub fn must_alias(&self, a: &Operand, sa: u32, b: &Operand, sb: u32) -> bool {
        self.alias(a, sa, b, sb) == AliasResult::Must
    }

    /// The provably-confined root region of a `bytes`-wide access at `addr`:
    /// `Some((root, touched))` when the access is in bounds of its global or
    /// alloca root region, with `touched` the byte-index interval it can
    /// reach within that region. `None` means the access is not provably
    /// confined (unknown root, absolute address, or possible out-of-bounds).
    pub fn confined_root(&self, addr: &Operand, bytes: u32) -> Option<(Root, Interval)> {
        let a = self.classify(addr);
        let in_bounds = match a.root {
            Root::Global(_) => self.global_in_bounds(&a, bytes),
            Root::Stack(_) => self.stack_in_bounds(&a, bytes),
            _ => false,
        };
        if !in_bounds {
            return None;
        }
        // In-bounds offsets are confined to the (small) region size, so the
        // touched-range arithmetic cannot overflow.
        Some((a.root, Interval { lo: a.offset.lo, hi: a.offset.hi + bytes as i128 - 1 }))
    }

    /// Whether every atom of `sym` is defined outside the given blocks (by
    /// index) — i.e. the address re-evaluates to the same bytes on every
    /// iteration of a loop made of exactly those blocks. Parameters and
    /// globals are always invariant.
    pub fn atoms_invariant_outside(&self, sym: &SymAddr, blocks: &[usize]) -> bool {
        sym.terms.iter().all(|&(a, _)| match a {
            Atom::Global(_) => true,
            Atom::Value(v) => match self.def_site.get(&v) {
                Some(&(b, _)) => !blocks.contains(&b),
                None => (v as usize) < self.f.params.len(), // param or undef
            },
        })
    }

    /// The defining block index of a value, if it has one.
    pub fn def_block(&self, v: ValueId) -> Option<usize> {
        self.def_site.get(&v.0).map(|&(b, _)| b)
    }
}

/// Byte width of the access made by a load destination or store type.
pub fn access_bytes(f: &Function, inst: &Inst) -> Option<(Operand, u32)> {
    match inst {
        Inst::Load { dst, addr } => Some((*addr, f.ty(*dst).bytes())),
        Inst::Store { ty, addr, .. } => Some((*addr, ty.bytes())),
        _ => None,
    }
}

/// Scalar type helper used by consumers printing access descriptions.
pub fn scalar_name(s: ScalarTy) -> &'static str {
    match s {
        ScalarTy::I1 => "i1",
        ScalarTy::I8 => "i8",
        ScalarTy::I16 => "i16",
        ScalarTy::I32 => "i32",
        ScalarTy::I64 => "i64",
        ScalarTy::F64 => "f64",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn with_func(
        build: impl FnOnce(&mut Module, &mut FunctionBuilder) -> Vec<(Operand, u32)>,
    ) -> (Module, Vec<(Operand, u32)>) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
        let accesses = build(&mut m, &mut b);
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        (m, accesses)
    }

    fn query(m: &Module, a: &(Operand, u32), b: &(Operand, u32)) -> AliasResult {
        let iv = intervals::analyze_module(m);
        let aa = AliasAnalysis::new(m, &m.funcs[0], &iv.funcs[0]);
        aa.alias(&a.0, a.1, &b.0, b.1)
    }

    #[test]
    fn same_base_disjoint_offsets_no_alias() {
        let (m, acc) = with_func(|_, b| {
            let base = b.param(0);
            let a1 = b.bin(BinOp::Add, I64, base, Operand::imm64(8));
            let a2 = b.bin(BinOp::Add, I64, base, Operand::imm64(16));
            vec![(a1, 8), (a2, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::No);
    }

    #[test]
    fn same_base_same_offset_must_alias() {
        let (m, acc) = with_func(|_, b| {
            let base = b.param(0);
            let a1 = b.bin(BinOp::Add, I64, base, Operand::imm64(8));
            let a2 = b.bin(BinOp::Add, I64, Operand::imm64(8), base);
            vec![(a1, 8), (a2, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::Must);
    }

    #[test]
    fn same_base_partial_overlap_is_may() {
        let (m, acc) = with_func(|_, b| {
            let base = b.param(0);
            let a1 = b.bin(BinOp::Add, I64, base, Operand::imm64(8));
            let a2 = b.bin(BinOp::Add, I64, base, Operand::imm64(12));
            vec![(a1, 8), (a2, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::May);
    }

    #[test]
    fn distinct_globals_no_alias_only_in_bounds() {
        let (m, acc) = with_func(|m, _| {
            let g1 = m.add_global("a", GlobalInit::Zero(8), true);
            let g2 = m.add_global("b", GlobalInit::Zero(8), true);
            vec![(Operand::Global(g1), 8), (Operand::Global(g2), 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::No);
        // Out of bounds: a 16-byte access from g1 spills into g2's storage.
        assert_eq!(query(&m, &(acc[0].0, 16), &acc[1]), AliasResult::May);
    }

    #[test]
    fn global_vs_alloca_no_alias() {
        let (m, acc) = with_func(|m, b| {
            let g = m.add_global("a", GlobalInit::Zero(8), true);
            let s = b.alloca(8);
            vec![(Operand::Global(g), 8), (s, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::No);
    }

    #[test]
    fn distinct_allocas_no_alias() {
        let (m, acc) = with_func(|_, b| {
            let s1 = b.alloca(8);
            let s2 = b.alloca(16);
            vec![(s1, 8), (s2, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::No);
    }

    #[test]
    fn unknown_values_are_may() {
        let (m, acc) = with_func(|_, b| {
            vec![(b.param(0), 8), (b.param(1), 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::May);
    }

    #[test]
    fn scaled_index_decomposition() {
        // base + 8*i vs base + 8*i + 4 with 4-byte accesses: disjoint.
        let (m, acc) = with_func(|_, b| {
            let base = b.param(0);
            let i = b.param(1);
            let s = b.bin(BinOp::Shl, I64, i, Operand::imm64(3));
            let a1 = b.bin(BinOp::Add, I64, base, s);
            let a2 = b.bin(BinOp::Add, I64, a1, Operand::imm64(4));
            vec![(a1, 4), (a2, 4)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::No);
    }

    #[test]
    fn mul_by_const_matches_shl() {
        // 8*i written as mul and as shl decompose identically.
        let (m, acc) = with_func(|_, b| {
            let base = b.param(0);
            let i = b.param(1);
            let s1 = b.bin(BinOp::Shl, I64, i, Operand::imm64(3));
            let s2 = b.bin(BinOp::Mul, I64, i, Operand::imm64(8));
            let a1 = b.bin(BinOp::Add, I64, base, s1);
            let a2 = b.bin(BinOp::Add, I64, base, s2);
            vec![(a1, 8), (a2, 8)]
        });
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::Must);
    }

    #[test]
    fn narrow_arithmetic_is_opaque() {
        // An i32 add must NOT be decomposed (it wraps at 32 bits).
        let (m, acc) = with_func(|_, b| {
            use citroen_ir::inst::CastKind;
            use citroen_ir::types::I32;
            let x = b.cast(CastKind::Trunc, I32, b.param(0));
            let y = b.bin(BinOp::Add, I32, x, Operand::imm64(8));
            let w = b.cast(CastKind::SExt, I64, y);
            let v = b.cast(CastKind::SExt, I64, x);
            vec![(w, 4), (v, 4)]
        });
        // w = sext(x+8 mod 2³²) is NOT always v+8; the analysis must say May.
        assert_eq!(query(&m, &acc[0], &acc[1]), AliasResult::May);
    }
}
