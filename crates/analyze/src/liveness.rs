//! Backward liveness over SSA values.
//!
//! Classic per-block backward dataflow specialised to SSA: a value is live-in
//! to a block if it is used there (or downstream) before being defined there.
//! φ-operands are treated as uses *on the incoming edge* — they are live-out
//! of the predecessor, not live-in to the φ's block — which is the standard
//! SSA convention and what makes copy-insertion/coalescing reasoning correct.

use citroen_ir::analysis::Cfg;
use citroen_ir::inst::{Inst, Operand, ValueId};
use citroen_ir::module::Function;

/// A dense fixed-capacity bit set over value ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Empty set with capacity for `n` elements.
    pub fn new(n: usize) -> BitSet {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Insert `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|x| x >> b & 1 == 1)
    }

    /// `self |= other`; returns whether the set changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterate the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            (0..64).filter(move |b| w >> b & 1 == 1).map(move |b| wi * 64 + b)
        })
    }
}

/// Per-block live-in/live-out sets of one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Values live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Values live on exit from each block (includes φ-edge uses).
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for `f` with the given CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let nb = f.blocks.len();
        let nv = f.value_ty.len();
        let mut uses = vec![BitSet::new(nv); nb]; // upward-exposed, φs excluded
        let mut defs = vec![BitSet::new(nv); nb];
        // φ-operand uses attributed to the incoming edge's source block.
        let mut edge_uses = vec![BitSet::new(nv); nb];

        for (b, blk) in f.iter_blocks() {
            let bi = b.idx();
            for inst in &blk.insts {
                if let Inst::Phi { dst, incoming } = inst {
                    defs[bi].insert(dst.idx());
                    for (pred, op) in incoming {
                        if let Operand::Value(v) = op {
                            edge_uses[pred.idx()].insert(v.idx());
                        }
                    }
                    continue;
                }
                inst.for_each_operand(|op: &Operand| {
                    if let Operand::Value(v) = op {
                        if !defs[bi].contains(v.idx()) {
                            uses[bi].insert(v.idx());
                        }
                    }
                });
                if let Some(d) = inst.dst() {
                    defs[bi].insert(d.idx());
                }
            }
            blk.term.for_each_operand(|op: &Operand| {
                if let Operand::Value(v) = op {
                    if !defs[bi].contains(v.idx()) {
                        uses[bi].insert(v.idx());
                    }
                }
            });
        }

        let mut live_in = vec![BitSet::new(nv); nb];
        let mut live_out = vec![BitSet::new(nv); nb];
        // Backward iteration to fixpoint; post-order (reverse RPO) converges
        // in O(loop-nesting-depth) sweeps.
        loop {
            let mut changed = false;
            for &b in cfg.rpo.iter().rev() {
                let bi = b.idx();
                let mut out = edge_uses[bi].clone();
                for &s in &cfg.succs[bi] {
                    out.union_with(&live_in[s.idx()]);
                }
                // live_in = uses ∪ (out \ defs)
                let mut inn = uses[bi].clone();
                for v in out.iter() {
                    if !defs[bi].contains(v) {
                        inn.insert(v);
                    }
                }
                changed |= live_out[bi].union_with(&out);
                changed |= live_in[bi].union_with(&inn);
            }
            if !changed {
                break;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `v` is live on entry to `b`.
    pub fn live_at_entry(&self, b: usize, v: ValueId) -> bool {
        self.live_in[b].contains(v.idx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::{counted_loop_ssa, FunctionBuilder};
    use citroen_ir::inst::BinOp;
    use citroen_ir::types::I64;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(129) && !s.contains(128));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        let mut t = BitSet::new(130);
        t.insert(7);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
        let s = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
        b.ret(Some(s));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // Params live-in to entry; the sum is defined locally, so not live-in.
        assert!(lv.live_at_entry(0, citroen_ir::inst::ValueId(0)));
        assert!(lv.live_at_entry(0, citroen_ir::inst::ValueId(1)));
        assert!(!lv.live_at_entry(0, citroen_ir::inst::ValueId(2)));
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut b = FunctionBuilder::new("sum", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, c| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let nx = b.bin(BinOp::Add, I64, acc, iv);
            c.feed(acc, nx);
        });
        b.ret(Some(merged[0]));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // `n` (the bound) is live-in to the header (used by the latch compare).
        let header = 1usize;
        assert!(lv.live_at_entry(header, citroen_ir::inst::ValueId(0)));
        // Every φ-operand fed along the back edge is live-out of the header
        // (the latch is the header block itself in this shape).
        assert!(!lv.live_out[header].is_empty());
    }

    #[test]
    fn phi_use_is_edge_use_not_block_use() {
        // entry -> (t | f) -> join with φ; the φ's operands must be live-out
        // of t/f but NOT live-in to join.
        use citroen_ir::inst::CmpOp;
        let mut b = FunctionBuilder::new("d", vec![I64], Some(I64));
        let t = b.block();
        let fb = b.block();
        let j = b.block();
        let c = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
        b.cond_br(c, t, fb);
        b.switch_to(t);
        let x = b.bin(BinOp::Add, I64, b.param(0), Operand::imm64(1));
        b.br(j);
        b.switch_to(fb);
        let y = b.bin(BinOp::Mul, I64, b.param(0), Operand::imm64(2));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(I64, vec![(t, x), (fb, y)]);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let (xv, yv) = (x.as_value().unwrap(), y.as_value().unwrap());
        assert!(lv.live_out[t.idx()].contains(xv.idx()));
        assert!(lv.live_out[fb.idx()].contains(yv.idx()));
        assert!(!lv.live_in[j.idx()].contains(xv.idx()));
        assert!(!lv.live_in[j.idx()].contains(yv.idx()));
    }
}
