//! Per-pass translation-validation sanitizer.
//!
//! After every pass, the pass manager re-runs the interval and memory-effects
//! analyses and compares the new facts against the pre-pass facts. Because
//! both fact sets are sound over-approximations of the *same* concrete
//! semantics (a correct pass preserves semantics), certain relations must
//! hold between them; a pass that breaks one of the relations below has
//! provably changed observable behaviour, however well-formed its output.
//!
//! Naive "facts must only refine" is *not* sound — a legal transformation can
//! make an analysis less precise (e.g. replacing a constant with a loop-
//! carried recurrence defeats the interval domain). All checks here are
//! *contradiction* checks guarded by must-information:
//!
//! - **S1 ret-range**: if either side proves the function returns on every
//!   run, both return intervals over-approximate the same non-empty concrete
//!   set, so they must intersect.
//! - **S2 return-existence**: a side that proves termination contradicts a
//!   side with no reachable `ret` at all.
//! - **S3 must/may writes**: a global written on every terminating run on one
//!   side cannot be provably never-written on the other (both directions).
//! - **S4 stored ranges**: if both sides must-write `g`, the final value of
//!   `g` on a terminating run lies in both stored-range over-approximations,
//!   so the ranges must intersect.
//! - **S5 attribute consistency**: `readnone`/`readonly` function attributes
//!   contradict a proven must-write on the same side.
//!
//! S3/S4 additionally assume the function terminates on at least one input
//! whenever it has a reachable `ret`; no pass in this repository reasons
//! about non-termination, so the assumption cannot be exploited (DESIGN.md).

use crate::intervals::{self, Interval};
use crate::memeffects::{self, MemEffects};
use citroen_ir::module::Module;

/// Analysis facts for one function, snapshotted between passes.
#[derive(Debug, Clone)]
pub struct FunctionFacts {
    /// Function name (facts are matched by name across passes).
    pub name: String,
    /// Whether the function declares a return value.
    pub has_ret_ty: bool,
    /// Over-approximation of the returned value across all runs.
    pub ret: Interval,
    /// Memory-effects summary.
    pub eff: MemEffects,
    /// `readnone` attribute at snapshot time.
    pub readnone: bool,
    /// `readonly` attribute at snapshot time.
    pub readonly: bool,
}

/// Facts for every function of a module.
#[derive(Debug, Clone)]
pub struct ModuleFacts {
    /// Per-function facts, in module order.
    pub funcs: Vec<FunctionFacts>,
}

/// Snapshot the sanitizer facts of `m`.
pub fn module_facts(m: &Module) -> ModuleFacts {
    let iv = intervals::analyze_module(m);
    let eff = memeffects::analyze_module(m, &iv);
    let funcs = m
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| FunctionFacts {
            name: f.name.clone(),
            has_ret_ty: f.ret.is_some(),
            ret: iv.funcs[fi].ret,
            eff: eff.funcs[fi].clone(),
            readnone: f.attrs.readnone,
            readonly: f.attrs.readonly,
        })
        .collect();
    ModuleFacts { funcs }
}

/// One sanitizer finding: a provable semantic contradiction between the
/// pre-pass and post-pass facts of a function.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule tripped (`S1`–`S5`).
    pub rule: &'static str,
    /// Function the contradiction is in.
    pub func: String,
    /// Explanation with the contradicting facts.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sanitizer {}: {}: {}", self.rule, self.func, self.msg)
    }
}

/// Cross-check post-pass facts against pre-pass facts. Empty result =
/// no provable contradiction.
pub fn check(pre: &ModuleFacts, post: &ModuleFacts) -> Vec<Violation> {
    let mut out = Vec::new();
    for pre_f in &pre.funcs {
        // Passes may delete (dead) functions; match by name and skip removed.
        let Some(post_f) = post.funcs.iter().find(|f| f.name == pre_f.name) else {
            continue;
        };
        check_function(pre_f, post_f, &mut out);
        self_check(post_f, &mut out);
    }
    out
}

fn check_function(pre: &FunctionFacts, post: &FunctionFacts, out: &mut Vec<Violation>) {
    let viol = |rule, msg| Violation { rule, func: pre.name.clone(), msg };
    let terminates = pre.eff.must_return || post.eff.must_return;

    // S1: both ret intervals over-approximate the same non-empty value set.
    if terminates
        && pre.has_ret_ty
        && post.has_ret_ty
        && !pre.ret.is_bottom()
        && !post.ret.is_bottom()
        && pre.ret.meet(&post.ret).is_bottom()
    {
        out.push(viol(
            "S1",
            format!(
                "return ranges cannot both hold: {} before vs {} after",
                pre.ret, post.ret
            ),
        ));
    }

    // S2: proven-terminating function must still have a reachable ret.
    if pre.has_ret_ty && post.has_ret_ty {
        if pre.eff.must_return && post.ret.is_bottom() {
            out.push(viol(
                "S2",
                "function provably returned a value before the pass; afterwards no \
                 reachable ret remains"
                    .into(),
            ));
        }
        if post.eff.must_return && pre.ret.is_bottom() {
            out.push(viol(
                "S2",
                "function provably returns a value after the pass; beforehand no \
                 reachable ret existed"
                    .into(),
            ));
        }
    }

    // S3: must-writes on one side vs provable never-writes on the other.
    for &g in &pre.eff.must_write {
        if post.eff.cannot_write(g) {
            out.push(viol(
                "S3",
                format!(
                    "global g{g} was written on every terminating run before the pass, \
                     but afterwards it provably cannot be written"
                ),
            ));
        }
    }
    for &g in &post.eff.must_write {
        if pre.eff.cannot_write(g) {
            out.push(viol(
                "S3",
                format!(
                    "global g{g} is written on every terminating run after the pass, \
                     but beforehand it provably could not be written"
                ),
            ));
        }
    }

    // S4: the final value of a must-written global lies in both stored ranges.
    for &g in &pre.eff.must_write {
        if !post.eff.must_write.contains(&g) {
            continue;
        }
        let (Some(a), Some(b)) = (pre.eff.stored.get(&g), post.eff.stored.get(&g)) else {
            continue;
        };
        if !a.is_bottom() && !b.is_bottom() && a.meet(b).is_bottom() {
            out.push(viol(
                "S4",
                format!(
                    "values stored to g{g} cannot agree: {a} before vs {b} after"
                ),
            ));
        }
    }
}

/// Checks that must hold within a single fact set.
fn self_check(f: &FunctionFacts, out: &mut Vec<Violation>) {
    // S5: attributes claim no writes, but a write provably happens.
    if (f.readnone || f.readonly) && !f.eff.must_write.is_empty() {
        out.push(Violation {
            rule: "S5",
            func: f.name.clone(),
            msg: format!(
                "function is marked {} but provably writes globals {:?} on every \
                 terminating run",
                if f.readnone { "readnone" } else { "readonly" },
                f.eff.must_write
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn store_ret_module(stored: i64, ret: i64) -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.store(I64, Operand::imm64(stored), Operand::Global(g));
        b.ret(Some(Operand::imm64(ret)));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn identical_modules_are_clean() {
        let m = store_ret_module(42, 0);
        let f = module_facts(&m);
        assert!(check(&f, &f).is_empty());
    }

    #[test]
    fn changed_return_value_is_s1() {
        let pre = module_facts(&store_ret_module(42, 5));
        let post = module_facts(&store_ret_module(42, 6));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S1"), "{v:?}");
    }

    #[test]
    fn dropped_store_is_s3() {
        let pre = module_facts(&store_ret_module(42, 0));
        let mut m = Module::new("m");
        m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let post = module_facts(&m);
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S3"), "{v:?}");
    }

    #[test]
    fn changed_stored_value_is_s4() {
        let pre = module_facts(&store_ret_module(42, 0));
        let post = module_facts(&store_ret_module(7, 0));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S4"), "{v:?}");
    }

    #[test]
    fn lost_precision_alone_is_not_a_violation() {
        // A post-pass analysis that knows strictly less (wider ranges, fewer
        // must-writes) must NOT trip the sanitizer: precision loss is legal.
        let pre = module_facts(&store_ret_module(42, 0));
        let mut post = pre.clone();
        post.funcs[0].ret = Interval::top();
        post.funcs[0].eff.must_write.clear();
        post.funcs[0].eff.must_return = false;
        assert!(check(&pre, &post).is_empty());
    }

    #[test]
    fn readonly_with_must_write_is_s5() {
        let mut m = store_ret_module(42, 0);
        m.funcs[0].attrs.readonly = true;
        let f = module_facts(&m);
        let v = check(&f, &f);
        assert!(v.iter().any(|v| v.rule == "S5"), "{v:?}");
    }
}
