//! Per-pass translation-validation sanitizer.
//!
//! After every pass, the pass manager re-runs the interval and memory-effects
//! analyses and compares the new facts against the pre-pass facts. Because
//! both fact sets are sound over-approximations of the *same* concrete
//! semantics (a correct pass preserves semantics), certain relations must
//! hold between them; a pass that breaks one of the relations below has
//! provably changed observable behaviour, however well-formed its output.
//!
//! Naive "facts must only refine" is *not* sound — a legal transformation can
//! make an analysis less precise (e.g. replacing a constant with a loop-
//! carried recurrence defeats the interval domain). All checks here are
//! *contradiction* checks guarded by must-information:
//!
//! - **S1 ret-range**: if either side proves the function returns on every
//!   run, both return intervals over-approximate the same non-empty concrete
//!   set, so they must intersect.
//! - **S2 return-existence**: a side that proves termination contradicts a
//!   side with no reachable `ret` at all.
//! - **S3 must/may writes**: a global written on every terminating run on one
//!   side cannot be provably never-written on the other (both directions).
//! - **S4 stored ranges**: if both sides must-write `g`, the final value of
//!   `g` on a terminating run lies in both stored-range over-approximations,
//!   so the ranges must intersect.
//! - **S5 attribute consistency**: `readnone`/`readonly` function attributes
//!   contradict a proven must-write on the same side.
//!
//! The *value-level* rules use the [`crate::valmap`] correspondence (values
//! matched across the pass by a fingerprint unique on both sides — the same
//! pure dataflow slice, hence the same concrete values on every run):
//!
//! - **S6 matched intervals**: both sides' intervals over-approximate the
//!   same concrete value set, so two non-⊥ intervals must intersect. This
//!   localises interprocedural bugs to the exact call-site value.
//! - **S7 matched must-stores**: (a) when a must-written global provably
//!   cannot be written on the other side (the S3 condition), every store to
//!   it is reported with its block and stored value — the dangling value;
//!   (b) when both sides must-write `g` through exactly one local store, the
//!   stored values' intervals must intersect (the final value of `g` lies in
//!   both).
//! - **S8 load initialisation**: a matched load that provably reads a
//!   non-zero value (every store to its slot excludes zero and one dominates
//!   the load) cannot become a provably-uninitialised always-zero load on
//!   the other side.
//!
//! The *alias-aware* rules (S9–S11) use the [`crate::alias`] points-to
//! analysis and the [`crate::depgraph`] loop dependence graphs to prove
//! *where a value concretely comes from*, then cross-check that provenance
//! through the value correspondence:
//!
//! - **S9 final-slot stores**: when every reachable store of a call-free
//!   function that could touch global `g` resolves (via the alias analysis)
//!   to the *same* exact slot in a *single* block, the function-final value
//!   of that slot is the block's textually-last store — so the two sides'
//!   last-store intervals must intersect. Unlike S4 (which joins all stored
//!   ranges), S9 is order-sensitive: a pass that reorders two may-aliasing
//!   stores to the same slot flips the provable final value and trips it.
//! - **S10 loop-independent forwarding**: a load with a same-iteration
//!   must-alias RAW dependence on a dominating store (per the loop
//!   dependence graph, with no intervening may-alias write or clobbering
//!   call) concretely reads that store's value — so the stored interval
//!   must intersect the matched post-pass load's interval. A hoist or
//!   unroll that breaks the dependence (the load now reads a stale value)
//!   produces a disjoint pair.
//! - **S11 must-alias forwarding**: the straight-line version of S10 — the
//!   same must-alias store→load forwarding proof outside any loop. This
//!   sharpens S6: the forwarded interval can be far tighter than the load's
//!   own interval (the interval domain does not track memory).
//!
//! S3/S4/S7 additionally assume the function terminates on at least one input
//! whenever it has a reachable `ret`; S6–S8 (and the forwarded intervals
//! behind S10/S11) assume a pass that preserves a value's dataflow slice
//! computes the same values through it — no pass in this repository (or
//! LLVM) repurposes a kept instruction via distant compensation, so neither
//! assumption can be exploited (DESIGN.md §9).

use crate::alias::{AliasAnalysis, AliasResult};
use crate::depgraph::{self, RefKind};
use crate::intervals::{self, Interval, ModuleIntervals};
use crate::memeffects::{self, MemEffects, ModuleEffects, Root};
use crate::valmap::{self, ValueFacts};
use citroen_ir::analysis::Cfg;
use citroen_ir::inst::{Inst, Operand};
use citroen_ir::module::Module;
use std::collections::HashMap;

/// Analysis facts for one function, snapshotted between passes.
#[derive(Debug, Clone)]
pub struct FunctionFacts {
    /// Function name (facts are matched by name across passes).
    pub name: String,
    /// Whether the function declares a return value.
    pub has_ret_ty: bool,
    /// Over-approximation of the returned value across all runs.
    pub ret: Interval,
    /// Memory-effects summary.
    pub eff: MemEffects,
    /// `readnone` attribute at snapshot time.
    pub readnone: bool,
    /// `readonly` attribute at snapshot time.
    pub readonly: bool,
    /// Per-value facts: fingerprints, intervals, load/store classification.
    pub vals: ValueFacts,
    /// Alias-derived provenance facts (S9–S11).
    pub alias: AliasSanFacts,
}

/// The provable final store to one exact global slot (S9).
#[derive(Debug, Clone)]
pub struct SlotLast {
    /// Global the slot belongs to.
    pub global: u32,
    /// Byte offset of the slot within the global.
    pub off: i64,
    /// Slot width in bytes.
    pub bytes: u32,
    /// Interval of the textually-last store's operand.
    pub interval: Interval,
    /// SSA value id of that operand, when it is a value.
    pub val: Option<u32>,
    /// Block holding every store to the slot.
    pub block: u32,
}

/// Alias-analysis-derived facts consumed by the S9–S11 sanitizer rules.
#[derive(Debug, Clone, Default)]
pub struct AliasSanFacts {
    /// `(load value id, provable loaded interval, loop-independent dep?)`:
    /// loads whose value provably equals a dominating same-block must-alias
    /// store's operand (no intervening may-alias write or clobbering call).
    /// The flag marks forwardings the loop dependence graph confirms as a
    /// same-iteration must RAW dependence (S10); the rest are straight-line
    /// (S11).
    pub forwarded: Vec<(u32, Interval, bool)>,
    /// Exact slots whose function-final value is provable (S9).
    pub slots: Vec<SlotLast>,
}

/// Facts for every function of a module.
#[derive(Debug, Clone)]
pub struct ModuleFacts {
    /// Per-function facts, in module order.
    pub funcs: Vec<FunctionFacts>,
}

/// Snapshot the sanitizer facts of `m`.
pub fn module_facts(m: &Module) -> ModuleFacts {
    let iv = intervals::analyze_module(m);
    let eff = memeffects::analyze_module(m, &iv);
    let funcs = m
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| FunctionFacts {
            name: f.name.clone(),
            has_ret_ty: f.ret.is_some(),
            ret: iv.funcs[fi].ret,
            eff: eff.funcs[fi].clone(),
            readnone: f.attrs.readnone,
            readonly: f.attrs.readonly,
            vals: valmap::value_facts(m, f, &iv.funcs[fi]),
            alias: alias_san_facts(m, fi, &iv, &eff),
        })
        .collect();
    ModuleFacts { funcs }
}

/// Whether a summarised call may write the `bytes` at `addr`.
fn call_may_write(
    aa: &AliasAnalysis<'_>,
    ce: &MemEffects,
    addr: &Operand,
    bytes: u32,
) -> bool {
    match aa.confined_root(addr, bytes) {
        Some((Root::Global(g), t)) => !ce.cannot_write_range(g, t.lo, t.hi),
        Some((Root::Stack(_), _)) => ce.writes_unknown,
        _ => ce.writes_unknown || ce.writes_stack || !ce.may_write.is_empty(),
    }
}

/// Compute the alias-derived provenance facts of function `fi`.
fn alias_san_facts(
    m: &Module,
    fi: usize,
    iv: &ModuleIntervals,
    eff: &ModuleEffects,
) -> AliasSanFacts {
    let f = &m.funcs[fi];
    if f.is_decl() {
        return AliasSanFacts::default();
    }
    let fiv = &iv.funcs[fi];
    let aa = AliasAnalysis::new(m, f, fiv);
    let cfg = Cfg::compute(f);
    let me = &eff.funcs[fi];
    let graphs = depgraph::loop_dep_graphs(m, fi, iv, eff);

    // Forwarded loads: backward same-block scan to the nearest must-alias
    // store of identical width, aborting on any may-alias store or
    // potentially-writing call in between. A hit proves the load's concrete
    // value is the store's operand on every execution of the block.
    let mut forwarded = Vec::new();
    for &b in &cfg.rpo {
        let insts = &f.blocks[b.idx()].insts;
        for (li, inst) in insts.iter().enumerate() {
            let Inst::Load { dst, addr } = inst else { continue };
            let ty = f.ty(*dst);
            if ty.lanes != 1 || !ty.scalar.is_int() {
                continue;
            }
            let lb = ty.bytes();
            let mut found: Option<Interval> = None;
            for j in (0..li).rev() {
                match &insts[j] {
                    Inst::Store { ty: sty, val, addr: saddr } => {
                        match aa.alias(addr, lb, saddr, sty.bytes()) {
                            AliasResult::Must
                                if sty.bytes() == lb
                                    && sty.lanes == 1
                                    && sty.scalar.is_int() =>
                            {
                                found = Some(fiv.operand(f, val));
                                break;
                            }
                            AliasResult::No => {}
                            _ => break,
                        }
                    }
                    Inst::Call { callee, .. } => {
                        if call_may_write(&aa, &eff.funcs[callee.idx()], addr, lb) {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(fwd) = found else { continue };
            if fwd.is_bottom() {
                continue;
            }
            // A same-block must store→load pair inside a loop shows up in
            // that loop's dependence graph as a same-iteration must RAW dep.
            let in_loop = graphs.iter().any(|g| {
                g.refs.iter().enumerate().any(|(ri, r)| {
                    r.block == b.idx()
                        && r.inst == li
                        && r.kind == RefKind::Load
                        && g.deps.iter().any(|d| !d.carried && d.must && (d.a == ri || d.b == ri))
                })
            });
            forwarded.push((dst.0, fwd, in_loop));
        }
    }

    // Final slots: group reachable stores by the exact global slot the alias
    // analysis resolves them to. A slot survives only if every store to its
    // global shares the same (offset, width) and block, no unresolved store
    // may alias it, and the function is call-free with fully attributable
    // writes — then the textually-last store is the provable final writer.
    struct SlotAcc {
        off: i128,
        bytes: u32,
        addr0: Operand,
        block: usize,
        last: (Interval, Option<u32>),
        consistent: bool,
    }
    let has_calls = cfg
        .rpo
        .iter()
        .any(|b| f.blocks[b.idx()].insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    let mut slots = Vec::new();
    if !me.writes_unknown && !has_calls {
        let mut per_g: HashMap<u32, SlotAcc> = HashMap::new();
        let mut unresolved: Vec<(Operand, u32)> = Vec::new();
        for &b in &cfg.rpo {
            for inst in &f.blocks[b.idx()].insts {
                let Inst::Store { ty, val, addr } = inst else { continue };
                let a = aa.classify(addr);
                let exact = matches!(aa.confined_root(addr, ty.bytes()), Some((Root::Global(_), _)))
                    && a.offset.lo == a.offset.hi;
                let Root::Global(g) = a.root else {
                    unresolved.push((*addr, ty.bytes()));
                    continue;
                };
                if !exact {
                    unresolved.push((*addr, ty.bytes()));
                    continue;
                }
                let last = (fiv.operand(f, val), val.as_value().map(|v| v.0));
                per_g
                    .entry(g)
                    .and_modify(|s| {
                        if s.off != a.offset.lo || s.bytes != ty.bytes() || s.block != b.idx() {
                            s.consistent = false;
                        } else {
                            s.last = last.clone();
                        }
                    })
                    .or_insert(SlotAcc {
                        off: a.offset.lo,
                        bytes: ty.bytes(),
                        addr0: *addr,
                        block: b.idx(),
                        last,
                        consistent: true,
                    });
            }
        }
        for (g, s) in per_g {
            if !s.consistent || !me.must_write.contains(&g) || s.last.0.is_bottom() {
                continue;
            }
            if unresolved
                .iter()
                .any(|(a, ab)| aa.alias(a, *ab, &s.addr0, s.bytes) != AliasResult::No)
            {
                continue;
            }
            slots.push(SlotLast {
                global: g,
                off: s.off as i64,
                bytes: s.bytes,
                interval: s.last.0,
                val: s.last.1,
                block: s.block as u32,
            });
        }
        slots.sort_by_key(|s| (s.global, s.off));
    }
    AliasSanFacts { forwarded, slots }
}

/// One sanitizer finding: a provable semantic contradiction between the
/// pre-pass and post-pass facts of a function.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule tripped (`S1`–`S11`).
    pub rule: &'static str,
    /// Function the contradiction is in.
    pub func: String,
    /// Explanation with the contradicting facts.
    pub msg: String,
    /// Post-pass value id the contradiction localises to, when the rule is
    /// value-level (S6–S8); function-level rules leave this `None`.
    pub value: Option<u32>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sanitizer {}: {}: {}", self.rule, self.func, self.msg)
    }
}

/// Cross-check post-pass facts against pre-pass facts. Empty result =
/// no provable contradiction.
pub fn check(pre: &ModuleFacts, post: &ModuleFacts) -> Vec<Violation> {
    let mut out = Vec::new();
    for pre_f in &pre.funcs {
        // Passes may delete (dead) functions; match by name and skip removed.
        let Some(post_f) = post.funcs.iter().find(|f| f.name == pre_f.name) else {
            continue;
        };
        check_function(pre_f, post_f, &mut out);
        value_checks(pre_f, post_f, &mut out);
        alias_checks(pre_f, post_f, &mut out);
        self_check(post_f, &mut out);
    }
    out
}

fn check_function(pre: &FunctionFacts, post: &FunctionFacts, out: &mut Vec<Violation>) {
    let viol = |rule, msg| Violation { rule, func: pre.name.clone(), msg, value: None };
    let terminates = pre.eff.must_return || post.eff.must_return;

    // S1: both ret intervals over-approximate the same non-empty value set.
    if terminates
        && pre.has_ret_ty
        && post.has_ret_ty
        && !pre.ret.is_bottom()
        && !post.ret.is_bottom()
        && pre.ret.meet(&post.ret).is_bottom()
    {
        out.push(viol(
            "S1",
            format!(
                "return ranges cannot both hold: {} before vs {} after",
                pre.ret, post.ret
            ),
        ));
    }

    // S2: proven-terminating function must still have a reachable ret.
    if pre.has_ret_ty && post.has_ret_ty {
        if pre.eff.must_return && post.ret.is_bottom() {
            out.push(viol(
                "S2",
                "function provably returned a value before the pass; afterwards no \
                 reachable ret remains"
                    .into(),
            ));
        }
        if post.eff.must_return && pre.ret.is_bottom() {
            out.push(viol(
                "S2",
                "function provably returns a value after the pass; beforehand no \
                 reachable ret existed"
                    .into(),
            ));
        }
    }

    // S3: must-writes on one side vs provable never-writes on the other.
    for &g in &pre.eff.must_write {
        if post.eff.cannot_write(g) {
            out.push(viol(
                "S3",
                format!(
                    "global g{g} was written on every terminating run before the pass, \
                     but afterwards it provably cannot be written"
                ),
            ));
        }
    }
    for &g in &post.eff.must_write {
        if pre.eff.cannot_write(g) {
            out.push(viol(
                "S3",
                format!(
                    "global g{g} is written on every terminating run after the pass, \
                     but beforehand it provably could not be written"
                ),
            ));
        }
    }

    // S4: the final value of a must-written global lies in both stored ranges.
    for &g in &pre.eff.must_write {
        if !post.eff.must_write.contains(&g) {
            continue;
        }
        let (Some(a), Some(b)) = (pre.eff.stored.get(&g), post.eff.stored.get(&g)) else {
            continue;
        };
        if !a.is_bottom() && !b.is_bottom() && a.meet(b).is_bottom() {
            out.push(viol(
                "S4",
                format!(
                    "values stored to g{g} cannot agree: {a} before vs {b} after"
                ),
            ));
        }
    }
}

/// Value-level rules S6–S8 over the fingerprint correspondence.
fn value_checks(pre: &FunctionFacts, post: &FunctionFacts, out: &mut Vec<Violation>) {
    let pairs = valmap::correspond(&pre.vals, &post.vals);
    let pre_to_post: HashMap<u32, u32> =
        pairs.iter().map(|(a, b)| (a.0, b.0)).collect();
    let post_to_pre: HashMap<u32, u32> =
        pairs.iter().map(|(a, b)| (b.0, a.0)).collect();

    // S6: matched values over-approximate the same concrete set.
    for &(va, vb) in &pairs {
        let (ia, ib) = (pre.vals.interval[va.idx()], post.vals.interval[vb.idx()]);
        if !ia.is_bottom() && !ib.is_bottom() && ia.meet(&ib).is_bottom() {
            out.push(Violation {
                rule: "S6",
                func: pre.name.clone(),
                value: Some(vb.0),
                msg: format!(
                    "matched value %{} (now %{}) cannot hold both ranges: {ia} before \
                     vs {ib} after",
                    va.0, vb.0
                ),
            });
        }
    }

    // S7a: a must-written global that provably cannot be written on the other
    // side — report every store to it, naming the dangling stored value.
    let dangling = |side: &FunctionFacts,
                    matched: &HashMap<u32, u32>,
                    g: u32,
                    when: &str,
                    out: &mut Vec<Violation>| {
        for s in side.vals.stores.iter().filter(|s| s.global == g) {
            let (desc, value) = match s.val {
                Some(v) => match matched.get(&v) {
                    Some(&mv) => (format!("value %{v} (still computed as %{mv})"), Some(mv)),
                    None => (format!("value %{v}"), None),
                },
                None => ("a constant".to_string(), None),
            };
            out.push(Violation {
                rule: "S7",
                func: side.name.clone(),
                value,
                msg: format!(
                    "store of {desc} to g{g} in b{} was on every terminating path \
                     {when} the pass; the other side provably never writes g{g} — \
                     the store dangles",
                    s.block
                ),
            });
        }
    };
    for &g in &pre.eff.must_write {
        if post.eff.cannot_write(g) {
            dangling(pre, &pre_to_post, g, "before", out);
        }
    }
    for &g in &post.eff.must_write {
        if pre.eff.cannot_write(g) {
            dangling(post, &post_to_pre, g, "after", out);
        }
    }

    // S7b: both sides must-write `g` through exactly one local store (no
    // calls, no unattributable writes): the final value of `g` lies in both
    // stored intervals, so they must intersect.
    if !pre.vals.has_calls
        && !post.vals.has_calls
        && !pre.eff.writes_unknown
        && !post.eff.writes_unknown
    {
        for &g in &pre.eff.must_write {
            if !post.eff.must_write.contains(&g) {
                continue;
            }
            fn only(side: &FunctionFacts, g: u32) -> Option<&crate::valmap::GlobalStore> {
                let mut it = side.vals.stores.iter().filter(|s| s.global == g);
                match (it.next(), it.next()) {
                    (Some(s), None) => Some(s),
                    _ => None,
                }
            }
            let (Some(sa), Some(sb)) = (only(pre, g), only(post, g)) else { continue };
            if !sa.interval.is_bottom()
                && !sb.interval.is_bottom()
                && sa.interval.meet(&sb.interval).is_bottom()
            {
                out.push(Violation {
                    rule: "S7",
                    func: pre.name.clone(),
                    value: sb.val,
                    msg: format!(
                        "the single store to g{g} cannot agree: {} in b{} before vs \
                         {} in b{} after",
                        sa.interval, sa.block, sb.interval, sb.block
                    ),
                });
            }
        }
    }

    // S8: a matched load provably non-zero on one side cannot be a
    // provably-uninitialised (always-zero) load on the other.
    let s8 = |nz: &FunctionFacts, nzv: u32, zv: u32, when: &str| Violation {
        rule: "S8",
        func: nz.name.clone(),
        value: Some(zv),
        msg: format!(
            "load %{nzv} provably read a non-zero value {when} the pass, but its \
             matched load %{zv} reads a provably-uninitialised (always-zero) slot",
        ),
    };
    for &(va, vb) in &pairs {
        if pre.vals.nonzero_loads.binary_search(&va.0).is_ok()
            && post.vals.zero_loads.binary_search(&vb.0).is_ok()
        {
            out.push(s8(pre, va.0, vb.0, "before"));
        }
        if post.vals.nonzero_loads.binary_search(&vb.0).is_ok()
            && pre.vals.zero_loads.binary_search(&va.0).is_ok()
        {
            out.push(s8(post, vb.0, va.0, "after"));
        }
    }
}

/// Alias-aware rules S9–S11 over the provenance facts.
fn alias_checks(pre: &FunctionFacts, post: &FunctionFacts, out: &mut Vec<Violation>) {
    // S9: both sides prove the function-final value of the same exact slot;
    // the concrete final value (observable at return) lies in both last-store
    // intervals, so they must intersect. Both sides must also must-write the
    // global — otherwise "no terminating run writes it" makes the final
    // value the initial one and the last-store claim is vacuous.
    for sa in &pre.alias.slots {
        let Some(sb) = post
            .alias
            .slots
            .iter()
            .find(|s| s.global == sa.global && s.off == sa.off && s.bytes == sa.bytes)
        else {
            continue;
        };
        if !pre.eff.must_write.contains(&sa.global) || !post.eff.must_write.contains(&sa.global) {
            continue;
        }
        if !sa.interval.is_bottom()
            && !sb.interval.is_bottom()
            && sa.interval.meet(&sb.interval).is_bottom()
        {
            out.push(Violation {
                rule: "S9",
                func: pre.name.clone(),
                value: sb.val,
                msg: format!(
                    "final store to g{}+{} ({} bytes) cannot agree: {} in b{} before vs \
                     {} in b{} after — stores to the slot were reordered or retargeted",
                    sa.global, sa.off, sa.bytes, sa.interval, sa.block, sb.interval, sb.block
                ),
            });
        }
    }

    // S10/S11: a load provably forwarding a must-alias store's value on one
    // side over-approximates the matched value's concrete set, so it must
    // agree with whatever the other side knows about that value — its plain
    // interval, and (sharper) its own forwarded interval when both sides
    // prove a forwarding.
    let pairs = valmap::correspond(&pre.vals, &post.vals);
    let fwd_pre: HashMap<u32, (Interval, bool)> =
        pre.alias.forwarded.iter().map(|&(v, i, l)| (v, (i, l))).collect();
    let fwd_post: HashMap<u32, (Interval, bool)> =
        post.alias.forwarded.iter().map(|&(v, i, l)| (v, (i, l))).collect();
    for &(va, vb) in &pairs {
        let fa = fwd_pre.get(&va.0);
        let fb = fwd_post.get(&vb.0);
        let mut clash = |ia: Interval, ib: Interval, in_loop: bool, what: &str| {
            if !ia.is_bottom() && !ib.is_bottom() && ia.meet(&ib).is_bottom() {
                let (rule, how) = if in_loop {
                    ("S10", "a same-iteration must-alias RAW dependence")
                } else {
                    ("S11", "a dominating must-alias store")
                };
                out.push(Violation {
                    rule,
                    func: pre.name.clone(),
                    value: Some(vb.0),
                    msg: format!(
                        "load %{} provably forwards {how} with value {ia} before the \
                         pass, but its matched value %{} {what} the disjoint range \
                         {ib} afterwards",
                        va.0, vb.0
                    ),
                });
            }
        };
        match (fa, fb) {
            (Some(&(ia, la)), Some(&(ib, lb))) => {
                clash(ia, ib, la || lb, "provably forwards")
            }
            (Some(&(ia, la)), None) => {
                clash(ia, post.vals.interval[vb.idx()], la, "holds")
            }
            (None, Some(&(ib, lb))) => {
                clash(pre.vals.interval[va.idx()], ib, lb, "provably forwards")
            }
            (None, None) => {}
        }
    }
}

/// Checks that must hold within a single fact set.
fn self_check(f: &FunctionFacts, out: &mut Vec<Violation>) {
    // S5: attributes claim no writes, but a write provably happens.
    if (f.readnone || f.readonly) && !f.eff.must_write.is_empty() {
        out.push(Violation {
            rule: "S5",
            func: f.name.clone(),
            value: None,
            msg: format!(
                "function is marked {} but provably writes globals {:?} on every \
                 terminating run",
                if f.readnone { "readnone" } else { "readonly" },
                f.eff.must_write
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn store_ret_module(stored: i64, ret: i64) -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.store(I64, Operand::imm64(stored), Operand::Global(g));
        b.ret(Some(Operand::imm64(ret)));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn identical_modules_are_clean() {
        let m = store_ret_module(42, 0);
        let f = module_facts(&m);
        assert!(check(&f, &f).is_empty());
    }

    #[test]
    fn changed_return_value_is_s1() {
        let pre = module_facts(&store_ret_module(42, 5));
        let post = module_facts(&store_ret_module(42, 6));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S1"), "{v:?}");
    }

    #[test]
    fn dropped_store_is_s3() {
        let pre = module_facts(&store_ret_module(42, 0));
        let mut m = Module::new("m");
        m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let post = module_facts(&m);
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S3"), "{v:?}");
    }

    #[test]
    fn changed_stored_value_is_s4() {
        let pre = module_facts(&store_ret_module(42, 0));
        let post = module_facts(&store_ret_module(7, 0));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S4"), "{v:?}");
    }

    #[test]
    fn lost_precision_alone_is_not_a_violation() {
        // A post-pass analysis that knows strictly less (wider ranges, fewer
        // must-writes) must NOT trip the sanitizer: precision loss is legal.
        let pre = module_facts(&store_ret_module(42, 0));
        let mut post = pre.clone();
        post.funcs[0].ret = Interval::top();
        post.funcs[0].eff.must_write.clear();
        post.funcs[0].eff.must_return = false;
        assert!(check(&pre, &post).is_empty());
    }

    #[test]
    fn changed_callee_return_is_s6_at_call_site() {
        // The caller's call value matches across the pass (same callee name,
        // same args); a broken rewrite of the callee's return shows up as
        // disjoint intervals at the matched call site.
        fn call_ret_module(c: i64) -> Module {
            let mut m = Module::new("m");
            let mut cb = FunctionBuilder::new("callee", vec![], Some(I64));
            cb.ret(Some(Operand::imm64(c)));
            let callee = m.add_func(cb.finish());
            let mut b = FunctionBuilder::new("main", vec![], Some(I64));
            let v = b.call(callee, Some(I64), vec![]).unwrap();
            b.ret(Some(v));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&call_ret_module(5));
        let post = module_facts(&call_ret_module(9));
        let v = check(&pre, &post);
        let s6 = v.iter().find(|v| v.rule == "S6").expect(&format!("{v:?}"));
        assert_eq!(s6.func, "main");
        assert!(s6.value.is_some());
    }

    #[test]
    fn dropped_ssa_store_is_s7_with_dangling_value() {
        fn build(with_store: bool) -> Module {
            let mut m = Module::new("m");
            let g = m.add_global("out", GlobalInit::Zero(8), true);
            let mut b = FunctionBuilder::new("f", vec![citroen_ir::types::I64], Some(I64));
            let v = b.bin(citroen_ir::inst::BinOp::Add, I64, b.param(0), Operand::imm64(1));
            if with_store {
                b.store(I64, v, Operand::Global(g));
            }
            b.ret(Some(Operand::imm64(0)));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&build(true));
        let post = module_facts(&build(false));
        let v = check(&pre, &post);
        let s7 = v.iter().find(|v| v.rule == "S7").expect(&format!("{v:?}"));
        // The stored value still exists on the post side — the violation
        // names it as the dangling value.
        assert_eq!(s7.value, Some(1), "{s7:?}");
        assert!(s7.msg.contains("dangles"), "{s7:?}");
    }

    #[test]
    fn uninitialised_matched_load_is_s8() {
        fn build(with_store: bool) -> Module {
            let mut m = Module::new("m");
            let mut b = FunctionBuilder::new("f", vec![], Some(I64));
            let a = b.alloca(8);
            if with_store {
                b.store(I64, Operand::imm64(7), a);
            }
            let v = b.load(I64, a);
            b.ret(Some(v));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&build(true));
        let post = module_facts(&build(false));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S8" && v.value.is_some()), "{v:?}");
    }

    #[test]
    fn readonly_with_must_write_is_s5() {
        let mut m = store_ret_module(42, 0);
        m.funcs[0].attrs.readonly = true;
        let f = module_facts(&m);
        let v = check(&f, &f);
        assert!(v.iter().any(|v| v.rule == "S5"), "{v:?}");
    }

    #[test]
    fn reordered_slot_stores_are_s9() {
        // Two stores to the same global slot; swapping them changes the
        // provable final value, which S9's order-sensitive check catches
        // (S4's joined ranges still intersect, so it stays silent).
        fn build(first: i64, second: i64) -> Module {
            let mut m = Module::new("m");
            let g = m.add_global("out", GlobalInit::Zero(8), true);
            let mut b = FunctionBuilder::new("f", vec![], Some(I64));
            b.store(I64, Operand::imm64(first), Operand::Global(g));
            b.store(I64, Operand::imm64(second), Operand::Global(g));
            b.ret(Some(Operand::imm64(0)));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&build(7, 42));
        let post = module_facts(&build(42, 7));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S9"), "{v:?}");
        assert!(!v.iter().any(|v| v.rule == "S4"), "{v:?}");
        // Same order on both sides: clean.
        assert!(check(&pre, &pre).is_empty());
    }

    #[test]
    fn broken_forwarding_is_s11_with_value() {
        // A load forwarding a must-alias store of 42 through an alloca; the
        // "pass" replaces the stored value with 7 while the matched load's
        // interval follows — the forwarded interval of the pre side then
        // contradicts the post side's matched value.
        fn build(stored: i64) -> Module {
            let mut m = Module::new("m");
            let g = m.add_global("out", GlobalInit::Zero(8), true);
            let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
            let a = b.alloca(8);
            b.store(I64, Operand::imm64(stored), a);
            let v = b.load(I64, a);
            // Keep the load's slice alive and observable.
            b.store(I64, v, Operand::Global(g));
            b.ret(Some(Operand::imm64(0)));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&build(42));
        assert!(
            pre.funcs[0].alias.forwarded.iter().any(|(_, iv, _)| iv.as_const() == Some(42)),
            "expected a forwarded load: {:?}",
            pre.funcs[0].alias.forwarded
        );
        let post = module_facts(&build(7));
        let v = check(&pre, &post);
        let s11 = v.iter().find(|v| v.rule == "S11").expect(&format!("{v:?}"));
        assert!(s11.value.is_some(), "{s11:?}");
        assert!(check(&pre, &pre).is_empty());
    }

    #[test]
    fn in_loop_forwarding_is_s10() {
        // The same forwarding proof inside a loop body: the dependence graph
        // classifies it as a same-iteration must RAW dep, so a broken pair
        // reports as S10 (loop dependence broken) rather than S11.
        fn build(stored: i64) -> Module {
            let mut m = Module::new("m");
            let g = m.add_global("out", GlobalInit::Zero(8), true);
            let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
            let n = b.param(0);
            citroen_ir::builder::counted_loop_mem(&mut b, n, |b, _| {
                b.store(I64, Operand::imm64(stored), Operand::Global(g));
                let v = b.load(I64, Operand::Global(g));
                b.store(I64, v, Operand::Global(g));
            });
            b.ret(Some(Operand::imm64(0)));
            m.add_func(b.finish());
            m
        }
        let pre = module_facts(&build(42));
        assert!(
            pre.funcs[0].alias.forwarded.iter().any(|&(_, iv, in_loop)| {
                iv.as_const() == Some(42) && in_loop
            }),
            "expected an in-loop forwarded load: {:?}",
            pre.funcs[0].alias.forwarded
        );
        let post = module_facts(&build(7));
        let v = check(&pre, &post);
        assert!(v.iter().any(|v| v.rule == "S10"), "{v:?}");
        assert!(check(&pre, &pre).is_empty());
    }

    #[test]
    fn precision_loss_keeps_s9_s11_silent() {
        // Dropping the post side's provenance facts entirely (a pass that
        // defeats the alias analysis) must not trip the alias rules: they
        // only fire on contradictions, never on lost precision.
        let pre = module_facts(&store_ret_module(42, 0));
        let mut post = pre.clone();
        post.funcs[0].alias = AliasSanFacts::default();
        assert!(check(&pre, &post).is_empty());
    }
}
