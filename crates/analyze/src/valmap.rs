//! Per-value dataflow fingerprints and the cross-pass value correspondence map.
//!
//! Every SSA value gets a 64-bit *dataflow fingerprint*: a stable hash of its
//! defining opcode, its static immediates, and the fingerprints of its
//! operands, iterated to a fixpoint so φ-cycles refine like
//! Weisfeiler–Lehman colourings. Two values with equal fingerprints have (up
//! to hash collision) the same pure dataflow slice — the same expression over
//! the same parameters, constants, globals and memory operations — so a
//! correct pass that keeps both computes the same concrete values through
//! them on every run.
//!
//! [`correspond`] matches values *across* a pass boundary: a pre-pass value
//! pairs with a post-pass value iff their fingerprint is unique among the
//! reachable values of each side. Unique-unique matching is deliberately
//! partial — ambiguity (two identical adds) yields no pair rather than a
//! guess — which is what makes the sanitizer's per-value contradiction
//! checks (S6–S8 in [`crate::sanitize`]) sound: every reported pair really
//! is the same computation before and after.
//!
//! Fingerprints normalise what passes legally permute: commutative binary
//! operands and `eq`/`ne` comparisons hash order-insensitively, `sgt`/`sge`
//! canonicalise to their swapped `slt`/`sle` form, and φ-incomings hash as a
//! multiset without their predecessor block ids (block renumbering must not
//! break matching). Refinement runs a bounded number of sweeps; acyclic
//! slices converge to round-independent hashes, and cyclic slices get the
//! full [`ROUNDS`]-sweep view on both sides of a pass, so fingerprints stay
//! comparable either way.

use crate::intervals::{FunctionIntervals, Interval};
use crate::memeffects::{classify_addr, Root};
use citroen_ir::analysis::{allocas, Cfg, DomTree};
use citroen_ir::inst::{BlockId, CmpOp, Inst, Operand, ValueId};
use citroen_ir::module::{Function, Module};
use citroen_ir::print::Fnv64;
use citroen_ir::types::Ty;
use std::collections::HashMap;

/// Maximum fingerprint-refinement sweeps. Acyclic dataflow converges after
/// `depth` sweeps and further sweeps are no-ops, so early exit is equivalent
/// to running all of them; φ-cycles never converge and run the full budget on
/// both sides of a pass, keeping the hashes comparable.
pub const ROUNDS: u32 = 64;

/// One reachable store to a global, with its value-level localisation.
#[derive(Debug, Clone)]
pub struct GlobalStore {
    /// Global written.
    pub global: u32,
    /// Block the store sits in.
    pub block: u32,
    /// Stored SSA value id, if the operand is a value (immediates are `None`).
    pub val: Option<u32>,
    /// Fingerprint of the stored operand.
    pub fp: u64,
    /// Interval of the stored operand (⊤ for float/vector stores).
    pub interval: Interval,
}

/// Per-value facts of one function: fingerprints, reachability, intervals,
/// and the load/store classifications the per-value sanitizer rules consume.
#[derive(Debug, Clone)]
pub struct ValueFacts {
    /// Dataflow fingerprint per value (index = `ValueId`). Values defined in
    /// unreachable blocks keep fingerprint 0 and are never matched.
    pub fp: Vec<u64>,
    /// Whether the value is a parameter or defined in a CFG-reachable block.
    pub reachable: Vec<bool>,
    /// Interval per value (copied from the interval analysis).
    pub interval: Vec<Interval>,
    /// Loads that provably read an *uninitialised* (hence always-zero) stack
    /// slot: in-bounds load from an alloca with no store anywhere that could
    /// touch it, in a call-free function with no unattributable stores.
    pub zero_loads: Vec<u32>,
    /// Loads that provably read a *non-zero* value when executed: a
    /// whole-slot load dominated by a store, where every store to the slot
    /// writes an interval excluding zero (same call-free guards).
    pub nonzero_loads: Vec<u32>,
    /// Reachable stores to globals, for value-level must-store localisation.
    pub stores: Vec<GlobalStore>,
    /// The function contains call instructions (disables the single-store
    /// and uninitialised-slot reasoning above).
    pub has_calls: bool,
    /// Refinement sweeps actually run (for tests; `ROUNDS` means a φ-cycle
    /// kept the colouring churning to the cap).
    pub rounds: u32,
}

fn h2(tag: &str, a: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write(tag.as_bytes());
    h.write_u64(a);
    h.finish()
}

fn ty_tag(t: Ty) -> u64 {
    (t.scalar.bytes() as u64) << 9 | (t.scalar.is_int() as u64) << 8 | t.lanes as u64
}

fn operand_fp(fp: &[u64], op: &Operand) -> u64 {
    match op {
        Operand::Value(v) => fp[v.idx()],
        Operand::ImmI(c, s) => {
            let mut h = Fnv64::new();
            h.write(b"imm");
            h.write(s.name().as_bytes());
            h.write_u64(s.sext(*c) as u64);
            h.finish()
        }
        Operand::ImmF(x) => h2("immf", x.to_bits()),
        Operand::Global(g) => h2("global", g.0 as u64),
    }
}

/// Hash an operand pair order-insensitively (for commutative operations).
fn unordered(h: &mut Fnv64, a: u64, b: u64) {
    h.write_u64(a.min(b));
    h.write_u64(a.max(b));
}

fn inst_fp(m: &Module, f: &Function, fp: &[u64], inst: &Inst) -> u64 {
    let mut h = Fnv64::new();
    if let Some(d) = inst.dst() {
        h.write_u64(ty_tag(f.ty(d)));
    }
    let ofp = |op: &Operand| operand_fp(fp, op);
    match inst {
        Inst::Bin { op, lhs, rhs, .. } => {
            h.write(b"bin");
            h.write(op.name().as_bytes());
            if op.commutative() {
                unordered(&mut h, ofp(lhs), ofp(rhs));
            } else {
                h.write_u64(ofp(lhs));
                h.write_u64(ofp(rhs));
            }
        }
        Inst::Cmp { op, lhs, rhs, .. } => {
            // `a sgt b` ⇔ `b slt a`: canonicalise to the swapped form so a
            // pass normalising predicates does not break matching.
            let (op, lhs, rhs) = match op {
                CmpOp::Sgt | CmpOp::Sge => (op.swapped(), rhs, lhs),
                _ => (*op, lhs, rhs),
            };
            h.write(b"cmp");
            h.write(op.name().as_bytes());
            if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                unordered(&mut h, ofp(lhs), ofp(rhs));
            } else {
                h.write_u64(ofp(lhs));
                h.write_u64(ofp(rhs));
            }
        }
        Inst::Cast { kind, src, .. } => {
            h.write(b"cast");
            h.write(kind.name().as_bytes());
            h.write_u64(ofp(src));
        }
        Inst::Alloca { bytes, .. } => {
            h.write(b"alloca");
            h.write_u64(*bytes as u64);
        }
        Inst::Load { dst, addr } => {
            h.write(b"load");
            h.write_u64(f.ty(*dst).bytes() as u64);
            h.write_u64(ofp(addr));
        }
        Inst::Store { .. } => {}
        Inst::Call { callee, args, .. } => {
            h.write(b"call");
            // Hash the callee by name: pass pipelines may delete dead
            // functions and renumber the rest.
            if let Some(cf) = m.funcs.get(callee.idx()) {
                h.write(cf.name.as_bytes());
            }
            for a in args {
                h.write_u64(ofp(a));
            }
        }
        Inst::Phi { incoming, .. } => {
            h.write(b"phi");
            h.write_u64(incoming.len() as u64);
            // Multiset of incoming value fingerprints; predecessor block ids
            // are deliberately excluded (renumbering must not break matches).
            let mut acc = 0u64;
            for (_, op) in incoming {
                acc = acc.wrapping_add(h2("inc", ofp(op)));
            }
            h.write_u64(acc);
        }
        Inst::Select { cond, t, f: fv, .. } => {
            h.write(b"select");
            h.write_u64(ofp(cond));
            h.write_u64(ofp(t));
            h.write_u64(ofp(fv));
        }
        Inst::Splat { src, .. } => {
            h.write(b"splat");
            h.write_u64(ofp(src));
        }
        Inst::ExtractLane { src, lane, .. } => {
            h.write(b"extractlane");
            h.write_u64(*lane as u64);
            h.write_u64(ofp(src));
        }
        Inst::Reduce { op, src, .. } => {
            h.write(b"reduce");
            h.write(op.name().as_bytes());
            h.write_u64(ofp(src));
        }
    }
    h.finish()
}

/// Compute the per-value facts of `f`, given its interval analysis results.
pub fn value_facts(m: &Module, f: &Function, fi: &FunctionIntervals) -> ValueFacts {
    let nv = f.value_ty.len();
    let mut fp = vec![0u64; nv];
    let mut reachable = vec![false; nv];
    for i in 0..f.params.len() {
        fp[i] = h2("param", i as u64);
        reachable[i] = true;
    }
    let interval: Vec<Interval> = (0..nv)
        .map(|i| fi.val.get(i).copied().unwrap_or_else(Interval::top))
        .collect();
    if f.blocks.is_empty() {
        return ValueFacts {
            fp,
            reachable,
            interval,
            zero_loads: Vec::new(),
            nonzero_loads: Vec::new(),
            stores: Vec::new(),
            has_calls: false,
            rounds: 0,
        };
    }
    let cfg = Cfg::compute(f);
    for &b in &cfg.rpo {
        for inst in &f.blocks[b.idx()].insts {
            if let Some(d) = inst.dst() {
                reachable[d.idx()] = true;
            }
        }
    }

    // Fixpoint refinement over the reachable defs in RPO.
    let mut rounds = 0;
    for round in 1..=ROUNDS {
        rounds = round;
        let mut changed = false;
        for &b in &cfg.rpo {
            for inst in &f.blocks[b.idx()].insts {
                let Some(d) = inst.dst() else { continue };
                let nf = inst_fp(m, f, &fp, inst);
                if nf != fp[d.idx()] {
                    fp[d.idx()] = nf;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let (zero_loads, nonzero_loads, stores, has_calls) = classify_memory(f, fi, &cfg, &fp);
    ValueFacts { fp, reachable, interval, zero_loads, nonzero_loads, stores, has_calls, rounds }
}

/// Walk the reachable instructions once, classifying every memory access, and
/// derive the always-zero / provably-non-zero load sets plus the global-store
/// localisation list.
fn classify_memory(
    f: &Function,
    fi: &FunctionIntervals,
    cfg: &Cfg,
    fp: &[u64],
) -> (Vec<u32>, Vec<u32>, Vec<GlobalStore>, bool) {
    let slot_bytes: HashMap<u32, u32> =
        allocas(f).into_iter().map(|(v, _, _, bytes)| (v.0, bytes)).collect();
    // Per-alloca reachable stores: (block, inst index, size, offset, stored range).
    let mut slot_stores: HashMap<u32, Vec<(u32, usize, u32, Interval, Interval)>> = HashMap::new();
    // Candidate loads: (value, block, inst index, size, offset, alloca).
    let mut slot_loads: Vec<(ValueId, u32, usize, u32, Interval, u32)> = Vec::new();
    let mut stores = Vec::new();
    let mut has_calls = false;
    // A store the slot analysis cannot attribute (unknown root, or a stack
    // store that may run past its own slot) could hit any frame byte.
    let mut wild_store = false;

    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue;
        }
        for (ii, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Call { .. } => has_calls = true,
                Inst::Store { ty, val, addr } => {
                    let a = classify_addr(f, fi, addr);
                    let stored_iv = if ty.lanes == 1 && ty.scalar.is_int() {
                        fi.operand(f, val)
                    } else {
                        Interval::top()
                    };
                    match a.root {
                        Root::Global(g) => stores.push(GlobalStore {
                            global: g,
                            block: b.0,
                            val: val.as_value().map(|v| v.0),
                            fp: operand_fp(fp, val),
                            interval: stored_iv,
                        }),
                        Root::Stack(slot) => {
                            let in_bounds = slot_bytes.get(&slot).is_some_and(|&sb| {
                                !a.offset.is_bottom()
                                    && a.offset.lo >= 0
                                    && a.offset.hi + ty.bytes() as i128 <= sb as i128
                            });
                            if in_bounds {
                                slot_stores.entry(slot).or_default().push((
                                    b.0,
                                    ii,
                                    ty.bytes(),
                                    a.offset,
                                    stored_iv,
                                ));
                            } else {
                                wild_store = true;
                            }
                        }
                        Root::None | Root::Unknown => wild_store = true,
                    }
                }
                Inst::Load { dst, addr } => {
                    let a = classify_addr(f, fi, addr);
                    if let Root::Stack(slot) = a.root {
                        let bytes = f.ty(*dst).bytes();
                        let in_bounds = slot_bytes.get(&slot).is_some_and(|&sb| {
                            !a.offset.is_bottom()
                                && a.offset.lo >= 0
                                && a.offset.hi + bytes as i128 <= sb as i128
                        });
                        if in_bounds {
                            slot_loads.push((*dst, b.0, ii, bytes, a.offset, slot));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut zero_loads = Vec::new();
    let mut nonzero_loads = Vec::new();
    // With a call in the function some callee could write the frame through
    // an escaped address; with a wild store any byte may be written. Either
    // way the slot reasoning is off.
    if !has_calls && !wild_store {
        let dom = DomTree::compute(f, cfg);
        for &(v, lb, li, lbytes, ref loff, slot) in &slot_loads {
            match slot_stores.get(&slot) {
                // Never-stored slot: allocas are zero-initialised, so every
                // in-bounds load reads zero.
                None => zero_loads.push(v.0),
                Some(ss) => {
                    // Whole-slot scalar discipline only: load and every store
                    // cover offset 0 with the same width, every stored range
                    // excludes zero, and some store dominates the load.
                    let whole = |off: &Interval, sz: u32| {
                        off.lo == 0 && off.hi == 0 && sz == lbytes
                    };
                    let all_nonzero = whole(loff, lbytes)
                        && ss.iter().all(|(_, _, sz, off, iv)| {
                            whole(off, *sz) && !iv.is_bottom() && !iv.contains(0)
                        });
                    let dominated = ss.iter().any(|&(sb, si, ..)| {
                        let (sb, lb) = (BlockId(sb), BlockId(lb));
                        (sb != lb && dom.dominates(sb, lb)) || (sb == lb && si < li)
                    });
                    if all_nonzero && dominated {
                        nonzero_loads.push(v.0);
                    }
                }
            }
        }
    }
    zero_loads.sort_unstable();
    nonzero_loads.sort_unstable();
    (zero_loads, nonzero_loads, stores, has_calls)
}

/// Match values across a pass boundary: pairs `(pre, post)` whose fingerprint
/// is unique among the reachable values of *each* side. Sorted by pre id.
pub fn correspond(pre: &ValueFacts, post: &ValueFacts) -> Vec<(ValueId, ValueId)> {
    fn uniques(vf: &ValueFacts) -> HashMap<u64, Option<u32>> {
        // fp -> Some(id) if unique, None if seen more than once.
        let mut m: HashMap<u64, Option<u32>> = HashMap::new();
        for (i, &h) in vf.fp.iter().enumerate() {
            if !vf.reachable[i] {
                continue;
            }
            m.entry(h)
                .and_modify(|e| *e = None)
                .or_insert(Some(i as u32));
        }
        m
    }
    let a = uniques(pre);
    let b = uniques(post);
    let mut pairs: Vec<(ValueId, ValueId)> = a
        .iter()
        .filter_map(|(h, pa)| {
            let pa = (*pa)?;
            let pb = (*b.get(h)?)?;
            Some((ValueId(pa), ValueId(pb)))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use citroen_ir::builder::{counted_loop_ssa, FunctionBuilder};
    use citroen_ir::inst::BinOp;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn facts(m: &Module) -> Vec<ValueFacts> {
        let iv = intervals::analyze_module(m);
        m.funcs
            .iter()
            .enumerate()
            .map(|(fi, f)| value_facts(m, f, &iv.funcs[fi]))
            .collect()
    }

    #[test]
    fn identical_functions_self_correspond() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
        let s = b.bin(BinOp::Add, I64, b.param(0), b.param(1));
        let t = b.bin(BinOp::Mul, I64, s, Operand::imm64(3));
        b.store(I64, t, Operand::Global(g));
        b.ret(Some(t));
        m.add_func(b.finish());
        let vf = &facts(&m)[0];
        let pairs = correspond(vf, vf);
        // Every reachable value with a unique fingerprint maps to itself.
        assert!(pairs.iter().all(|(a, b)| a == b), "{pairs:?}");
        assert!(pairs.len() >= 4, "params + both bins should match: {pairs:?}");
        assert_eq!(vf.stores.len(), 1);
        assert_eq!(vf.stores[0].val, Some(t.as_value().unwrap().0));
    }

    #[test]
    fn commutative_swap_preserves_fingerprints() {
        let build = |swapped: bool| {
            let mut m = Module::new("m");
            let mut b = FunctionBuilder::new("f", vec![I64, I64], Some(I64));
            let (x, y) = (b.param(0), b.param(1));
            let s = if swapped {
                b.bin(BinOp::Add, I64, y, x)
            } else {
                b.bin(BinOp::Add, I64, x, y)
            };
            b.ret(Some(s));
            m.add_func(b.finish());
            m
        };
        let (ma, mb) = (build(false), build(true));
        let (fa, fb) = (facts(&ma), facts(&mb));
        let pairs = correspond(&fa[0], &fb[0]);
        // The add matches across the operand swap; subtraction would not.
        let add = ma.funcs[0].blocks[0].insts[0].dst().unwrap();
        assert!(pairs.contains(&(add, add)), "{pairs:?}");
    }

    #[test]
    fn phi_cycle_reaches_fixpoint_and_matches() {
        // counted_loop_ssa builds φ-cyclic induction and accumulator values;
        // the refinement must terminate and a module must still correspond
        // to its clone.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        let pre = b.current();
        let merged = counted_loop_ssa(&mut b, n, |b, iv, carried| {
            let acc = b.phi(I64, vec![(pre, Operand::imm64(0))]);
            let next = b.bin(BinOp::Add, I64, acc, iv);
            carried.feed(acc, next);
        });
        b.ret(Some(merged[0]));
        m.add_func(b.finish());
        let vf = &facts(&m)[0];
        assert!(vf.rounds <= ROUNDS);
        let pairs = correspond(vf, vf);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(a, b)| a == b), "{pairs:?}");
    }

    #[test]
    fn multi_function_modules_keep_facts_separate() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("callee", vec![I64], Some(I64));
        let d = cb.bin(BinOp::Mul, I64, cb.param(0), Operand::imm64(2));
        cb.ret(Some(d));
        let callee = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
        let v = b.call(callee, Some(I64), vec![b.param(0)]).unwrap();
        b.ret(Some(v));
        m.add_func(b.finish());
        let fs = facts(&m);
        assert_eq!(fs.len(), 2);
        assert!(fs[1].has_calls);
        assert!(!fs[0].has_calls);
        // The callee's double and the caller's call have distinct prints.
        assert!(correspond(&fs[0], &fs[0]).iter().all(|(a, b)| a == b));
    }

    #[test]
    fn uninitialised_slot_load_is_zero_load() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let a = b.alloca(8);
        let v = b.load(I64, a);
        b.ret(Some(v));
        m.add_func(b.finish());
        let vf = &facts(&m)[0];
        assert_eq!(vf.zero_loads, vec![v.as_value().unwrap().0]);
        assert!(vf.nonzero_loads.is_empty());
    }

    #[test]
    fn dominating_nonzero_store_is_nonzero_load() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let a = b.alloca(8);
        b.store(I64, Operand::imm64(7), a);
        let v = b.load(I64, a);
        b.ret(Some(v));
        m.add_func(b.finish());
        let vf = &facts(&m)[0];
        assert!(vf.zero_loads.is_empty());
        assert_eq!(vf.nonzero_loads, vec![v.as_value().unwrap().0]);
    }

    #[test]
    fn possible_zero_store_blocks_nonzero_proof() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let a = b.alloca(8);
        b.store(I64, b.param(0), a); // parameter may be zero
        let v = b.load(I64, a);
        b.ret(Some(v));
        m.add_func(b.finish());
        let vf = &facts(&m)[0];
        assert!(vf.zero_loads.is_empty());
        assert!(vf.nonzero_loads.is_empty());
    }
}
