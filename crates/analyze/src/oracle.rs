//! Per-pass applicability oracle: the fact bundle and verdict types behind
//! `Pass::precondition`, plus the pass-interaction graph derived from them.
//!
//! A precondition analysis answers, *without running the pass*: can this
//! pass possibly transform this module? The answer is asymmetric by design:
//!
//! - [`Verdict::CannotFire`] is a **theorem**. Running the pass must leave
//!   the module fingerprint unchanged and emit zero statistics. The fuzzing
//!   campaign in the root crate (`citroen-analyze oracle`) executes every
//!   `CannotFire` verdict it sees and fails the build on a contradiction.
//! - [`Verdict::MayFire`] is never wrong — it only means the analysis could
//!   not rule the pass out, with `evidence` naming what it found.
//!
//! This split is what makes the oracle usable for search-space pruning: a
//! tuner may delete `CannotFire` passes from a candidate sequence knowing
//! the compiled artifact is bit-identical, collapsing duplicate candidate
//! evaluations into cache hits.

use crate::intervals::{self, ModuleIntervals};
use crate::liveness::Liveness;
use crate::memeffects::{self, ModuleEffects};
use citroen_ir::analysis::Cfg;
use citroen_ir::module::Module;
use citroen_rt::json::Value;

/// The oracle's answer for one pass on one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Running the pass provably changes nothing and records no statistics.
    CannotFire,
    /// The pass was not ruled out.
    MayFire {
        /// What the analysis found that the pass could act on.
        evidence: String,
    },
}

impl Verdict {
    /// Shorthand for a `MayFire` verdict.
    pub fn may(evidence: impl Into<String>) -> Verdict {
        Verdict::MayFire { evidence: evidence.into() }
    }

    /// Whether this is the theorem-grade `CannotFire` verdict.
    pub fn is_cannot_fire(&self) -> bool {
        matches!(self, Verdict::CannotFire)
    }

    /// The evidence string of a `MayFire` verdict.
    pub fn evidence(&self) -> Option<&str> {
        match self {
            Verdict::CannotFire => None,
            Verdict::MayFire { evidence } => Some(evidence),
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::CannotFire => write!(f, "cannot-fire"),
            Verdict::MayFire { evidence } => write!(f, "may-fire ({evidence})"),
        }
    }
}

/// The dataflow facts handed to every `precondition` hook: the PR-2 analyses
/// computed once per module so individual preconditions don't repeat them.
#[derive(Debug, Clone)]
pub struct Facts {
    /// Interval abstract interpretation (per SSA value, per function).
    pub intervals: ModuleIntervals,
    /// Memory-effect summaries (global read/write sets, must-return proofs).
    pub effects: ModuleEffects,
    /// Backward SSA liveness, per function (module order).
    pub live: Vec<Liveness>,
}

/// Compute the fact bundle for `m`.
pub fn compute_facts(m: &Module) -> Facts {
    let intervals = intervals::analyze_module(m);
    let effects = memeffects::analyze_module(m, &intervals);
    let live = m
        .funcs
        .iter()
        .map(|f| {
            let cfg = Cfg::compute(f);
            Liveness::compute(f, &cfg)
        })
        .collect();
    Facts { intervals, effects, live }
}

/// One observed interaction: running pass `from` flipped pass `to`'s verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interaction {
    /// Index of the transforming pass.
    pub from: usize,
    /// Index of the pass whose verdict flipped.
    pub to: usize,
    /// On how many corpus modules the flip was observed.
    pub count: u64,
}

/// Per-pass work-class masks: the statically-declared subsumption model
/// (`Pass::{fires_on, clears, produces}` in the passes crate), serialised
/// alongside the interaction graph so the tuner's `SeqCanonicalizer` can
/// warm-start from a JSON file without re-deriving anything. Bit `i` of a
/// mask refers to `classes[i]`; every claim encoded here is fuzz-executed
/// as a theorem by `citroen-analyze subsume`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkModel {
    /// Work-class names, bit-index order.
    pub classes: Vec<String>,
    /// Per pass: classes whose presence is necessary for it to fire
    /// (`None` = unknown, never dropped). Registry id order.
    pub fires_on: Vec<Option<u64>>,
    /// Per pass: classes provably absent after it runs.
    pub clears: Vec<u64>,
    /// Per pass: classes it may create.
    pub produces: Vec<u64>,
}

impl WorkModel {
    /// The static subsumption matrix implied by the masks: `(p, q)` pairs
    /// where `q` provably cannot fire immediately after `p` on *any* module
    /// (`fires_on[q] ⊆ clears[p]`). This generalises the idempotence
    /// diagonal — `(p, p)` is an edge for every self-clearing pass.
    pub fn subsumed_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for p in 0..self.clears.len() {
            for (q, fires) in self.fires_on.iter().enumerate() {
                if let Some(fq) = fires {
                    if fq & !self.clears[p] == 0 {
                        out.push((p, q));
                    }
                }
            }
        }
        out
    }
}

/// The static pass-interaction graph: which passes enable (flip
/// `CannotFire` → `MayFire`) or disable (`MayFire` → `CannotFire`) which
/// other passes' preconditions, derived from pairwise verdicts over a module
/// corpus. Edges are existential over the corpus — "A enabled B on at least
/// `count` modules" — so the graph over-approximates enablement *relative to
/// that corpus*, which is what sequence canonicalisation wants: only drop a
/// dead pass when no earlier pass is known to wake it.
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    /// Pass names, in registry id order.
    pub passes: Vec<String>,
    /// Enable edges.
    pub enables: Vec<Interaction>,
    /// Disable edges.
    pub disables: Vec<Interaction>,
    /// Number of corpus modules the graph was derived from.
    pub modules: u64,
    /// The work-class subsumption model, when the producer declared one.
    /// Absent in graphs from older versions (missing JSON key → `None`).
    pub work: Option<WorkModel>,
}

impl InteractionGraph {
    /// Per-pass bitmask of the passes it enables (`mask[a]` has bit `b` set
    /// iff `a` enables `b`). Requires ≤ 64 passes.
    pub fn enables_mask(&self) -> Vec<u64> {
        assert!(self.passes.len() <= 64, "bitmask form limited to 64 passes");
        let mut mask = vec![0u64; self.passes.len()];
        for e in &self.enables {
            mask[e.from] |= 1u64 << e.to;
        }
        mask
    }

    /// Serialise as a JSON document (`citroen-analyze oracle` output).
    pub fn to_json(&self) -> String {
        let edge_list = |edges: &[Interaction]| {
            Value::Arr(
                edges
                    .iter()
                    .map(|e| {
                        Value::Obj(vec![
                            ("from".into(), Value::str(&self.passes[e.from])),
                            ("to".into(), Value::str(&self.passes[e.to])),
                            ("modules".into(), Value::U64(e.count)),
                        ])
                    })
                    .collect(),
            )
        };
        let mut obj = vec![
            (
                "passes".into(),
                Value::Arr(self.passes.iter().map(Value::str).collect()),
            ),
            ("corpus_modules".into(), Value::U64(self.modules)),
            ("enables".into(), edge_list(&self.enables)),
            ("disables".into(), edge_list(&self.disables)),
        ];
        if let Some(w) = &self.work {
            let masks = |ms: &[u64]| Value::Arr(ms.iter().map(|m| Value::U64(*m)).collect());
            obj.push((
                "work".into(),
                Value::Obj(vec![
                    ("classes".into(), Value::Arr(w.classes.iter().map(Value::str).collect())),
                    (
                        "fires_on".into(),
                        Value::Arr(
                            w.fires_on
                                .iter()
                                .map(|f| match f {
                                    Some(m) => Value::U64(*m),
                                    None => Value::str("unknown"),
                                })
                                .collect(),
                        ),
                    ),
                    ("clears".into(), masks(&w.clears)),
                    ("produces".into(), masks(&w.produces)),
                ]),
            ));
        }
        Value::Obj(obj).emit_pretty()
    }

    /// Parse a graph back from [`InteractionGraph::to_json`] output.
    pub fn from_json(text: &str) -> Result<InteractionGraph, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let passes: Vec<String> = v
            .get("passes")
            .and_then(Value::as_arr)
            .ok_or("missing 'passes' array")?
            .iter()
            .map(|p| p.as_str().map(str::to_string).ok_or("non-string pass name"))
            .collect::<Result<_, _>>()?;
        let index =
            |name: &str| passes.iter().position(|p| p == name).ok_or("unknown pass in edge");
        let edges = |key: &str| -> Result<Vec<Interaction>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing '{key}' array"))?
                .iter()
                .map(|e| {
                    Ok(Interaction {
                        from: index(e.get("from").and_then(Value::as_str).ok_or("bad edge")?)?,
                        to: index(e.get("to").and_then(Value::as_str).ok_or("bad edge")?)?,
                        count: e.get("modules").and_then(Value::as_u64).ok_or("bad edge")?,
                    })
                })
                .collect()
        };
        let work = match v.get("work") {
            None => None,
            Some(w) => {
                let classes: Vec<String> = w
                    .get("classes")
                    .and_then(Value::as_arr)
                    .ok_or("work: missing 'classes'")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string).ok_or("work: non-string class"))
                    .collect::<Result<_, _>>()?;
                let masks = |key: &str| -> Result<Vec<u64>, String> {
                    w.get(key)
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("work: missing '{key}'"))?
                        .iter()
                        .map(|m| m.as_u64().ok_or_else(|| format!("work: bad mask in '{key}'")))
                        .collect()
                };
                let fires_on: Vec<Option<u64>> = w
                    .get("fires_on")
                    .and_then(Value::as_arr)
                    .ok_or("work: missing 'fires_on'")?
                    .iter()
                    .map(|f| match (f.as_u64(), f.as_str()) {
                        (Some(m), _) => Ok(Some(m)),
                        (None, Some("unknown")) => Ok(None),
                        _ => Err("work: bad fires_on entry".to_string()),
                    })
                    .collect::<Result<_, _>>()?;
                let model = WorkModel { classes, fires_on, clears: masks("clears")?, produces: masks("produces")? };
                if model.fires_on.len() != passes.len()
                    || model.clears.len() != passes.len()
                    || model.produces.len() != passes.len()
                {
                    return Err("work: mask arrays must match 'passes' length".into());
                }
                Some(model)
            }
        };
        Ok(InteractionGraph {
            enables: edges("enables")?,
            disables: edges("disables")?,
            modules: v.get("corpus_modules").and_then(Value::as_u64).unwrap_or(0),
            passes,
            work,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::types::I64;

    #[test]
    fn facts_cover_every_function() {
        let mut m = Module::new("m");
        for name in ["f", "g"] {
            let mut b = FunctionBuilder::new(name, vec![I64], Some(I64));
            b.ret(Some(Operand::imm64(1)));
            m.add_func(b.finish());
        }
        let facts = compute_facts(&m);
        assert_eq!(facts.intervals.funcs.len(), 2);
        assert_eq!(facts.effects.funcs.len(), 2);
        assert_eq!(facts.live.len(), 2);
    }

    #[test]
    fn graph_json_roundtrip() {
        let g = InteractionGraph {
            passes: vec!["mem2reg".into(), "gvn".into(), "licm".into()],
            enables: vec![Interaction { from: 0, to: 1, count: 4 }],
            disables: vec![Interaction { from: 1, to: 2, count: 1 }],
            modules: 9,
            work: None,
        };
        let j = g.to_json();
        assert!(!j.contains("\"work\""), "no work model → no 'work' key");
        let back = InteractionGraph::from_json(&j).unwrap();
        assert_eq!(back.passes, g.passes);
        assert_eq!(back.enables, g.enables);
        assert_eq!(back.disables, g.disables);
        assert_eq!(back.modules, 9);
        assert!(back.work.is_none());
        assert_eq!(g.enables_mask(), vec![0b010, 0, 0]);
    }

    #[test]
    fn work_model_json_roundtrip_and_matrix() {
        let work = WorkModel {
            classes: vec!["dead".into(), "cp".into()],
            fires_on: vec![Some(0b01), None, Some(0b10)],
            clears: vec![0b01, 0b11, 0b10],
            produces: vec![0b11, 0b00, 0b11],
        };
        let g = InteractionGraph {
            passes: vec!["dce".into(), "gvn".into(), "constprop".into()],
            enables: Vec::new(),
            disables: Vec::new(),
            modules: 1,
            work: Some(work.clone()),
        };
        let back = InteractionGraph::from_json(&g.to_json()).unwrap();
        assert_eq!(back.work.as_ref(), Some(&work));
        // dce clears dead → subsumes dce; gvn clears both → subsumes dce and
        // constprop; constprop clears cp → subsumes itself. gvn itself has an
        // unknown fire mask and is never a subsumption target.
        assert_eq!(
            work.subsumed_pairs(),
            vec![(0, 0), (1, 0), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn work_model_length_mismatch_is_an_error() {
        let g = InteractionGraph {
            passes: vec!["dce".into(), "gvn".into()],
            enables: Vec::new(),
            disables: Vec::new(),
            modules: 0,
            work: Some(WorkModel {
                classes: vec!["dead".into()],
                fires_on: vec![Some(1)],
                clears: vec![1],
                produces: vec![1],
            }),
        };
        assert!(InteractionGraph::from_json(&g.to_json()).is_err());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::CannotFire.is_cannot_fire());
        let may = Verdict::may("2 promotable allocas");
        assert!(!may.is_cannot_fire());
        assert_eq!(may.evidence(), Some("2 promotable allocas"));
        assert_eq!(format!("{may}"), "may-fire (2 promotable allocas)");
    }
}
