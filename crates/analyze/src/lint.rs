//! Structured lints over the analysis results.
//!
//! Every lint is *definite-by-construction*: a diagnostic is only emitted when
//! the analyses prove the property (a store that cannot be observed, a block
//! that cannot execute, an index that is out of bounds on every execution).
//! That keeps the suite zero-noise on optimiser output — the acceptance bar is
//! zero diagnostics on the shipped corpus after `-O3` — at the cost of
//! missing maybe-bugs, which is the right trade for a gate that must never cry
//! wolf.

use crate::intervals::{self, Interval};
use crate::memeffects::{classify_addr, Access, Root};
use citroen_ir::analysis::{allocas, Cfg, DomTree, LoopInfo};
use citroen_ir::inst::{Inst, Operand, Term};
use citroen_ir::module::{Function, Module};
use std::collections::{HashMap, HashSet};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but well-defined (this IR zero-initialises allocas, so even
    /// an uninitialised load has deterministic semantics).
    Warning,
    /// Executing the flagged code traps or cannot make progress.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint identifier (e.g. `dead-store`).
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Function the finding is in.
    pub func: String,
    /// Block the finding is in, if block-precise.
    pub block: Option<u32>,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}] {}", self.code, self.func)?;
        if let Some(b) = self.block {
            write!(f, ":b{b}")?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// Run every lint over `m` and return the findings, deterministically ordered
/// (function order, then block, then code).
pub fn lint_module(m: &Module) -> Vec<Diagnostic> {
    let iv = intervals::analyze_module(m);
    let mut out = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        if f.is_decl() {
            continue;
        }
        lint_function(m, f, &iv.funcs[fi], &mut out);
    }
    out
}

/// Per-alloca usage facts gathered in one walk.
struct AllocaUsage {
    /// Alloca value id → byte size.
    size: HashMap<u32, u32>,
    /// Alloca value id → number of loads attributed to it.
    loads: HashMap<u32, u32>,
    /// Alloca value id → (block, inst index) of each attributed store.
    stores: HashMap<u32, Vec<(u32, usize)>>,
    /// Allocas whose address leaves the load/store-address position
    /// (stored as a value, passed to a call, returned).
    escaped: HashSet<u32>,
    /// The function contains a load/store the root analysis cannot attribute.
    has_unknown_load: bool,
    has_unknown_store: bool,
}

fn lint_function(
    m: &Module,
    f: &Function,
    fi: &intervals::FunctionIntervals,
    out: &mut Vec<Diagnostic>,
) {
    let cfg = Cfg::compute(f);
    let diag = |code, severity, block: Option<u32>, msg: String| Diagnostic {
        code,
        severity,
        func: f.name.clone(),
        block,
        msg,
    };

    // ---- unreachable-block -------------------------------------------------
    for (b, _) in f.iter_blocks() {
        if !cfg.reachable(b) {
            out.push(diag(
                "unreachable-block",
                Severity::Warning,
                Some(b.0),
                format!("block b{} can never execute but is still present", b.0),
            ));
        }
    }

    // ---- walk all accesses once -------------------------------------------
    let mut usage = AllocaUsage {
        size: allocas(f).into_iter().map(|(v, _, _, bytes)| (v.0, bytes)).collect(),
        loads: HashMap::new(),
        stores: HashMap::new(),
        escaped: HashSet::new(),
        has_unknown_load: false,
        has_unknown_store: false,
    };
    let classify = |op: &Operand| classify_addr(f, fi, op);
    let escape_check = |usage: &mut AllocaUsage, op: &Operand| {
        if let Root::Stack(a) = classify(op).root {
            usage.escaped.insert(a);
        }
    };
    // (access, bytes, is_store, block) for the bounds lint.
    let mut accesses: Vec<(Access, u32, bool, u32)> = Vec::new();

    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue; // dead code cannot execute: nothing to report inside it
        }
        for (i, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Load { dst, addr } => {
                    let a = classify(addr);
                    accesses.push((a, f.ty(*dst).bytes(), false, b.0));
                    match a.root {
                        Root::Stack(v) => *usage.loads.entry(v).or_insert(0) += 1,
                        Root::Global(_) => {}
                        _ => usage.has_unknown_load = true,
                    }
                }
                Inst::Store { ty, val, addr } => {
                    let a = classify(addr);
                    accesses.push((a, ty.bytes(), true, b.0));
                    match a.root {
                        Root::Stack(v) => {
                            usage.stores.entry(v).or_default().push((b.0, i))
                        }
                        Root::Global(_) => {}
                        _ => usage.has_unknown_store = true,
                    }
                    escape_check(&mut usage, val);
                }
                Inst::Call { args, .. } => {
                    for arg in args {
                        escape_check(&mut usage, arg);
                    }
                }
                _ => {}
            }
        }
        if let Term::Ret(Some(op)) = &blk.term {
            escape_check(&mut usage, op);
        }
    }

    // ---- oob-index ---------------------------------------------------------
    for (a, bytes, is_store, b) in &accesses {
        let size = match a.root {
            Root::Global(g) => m.globals.get(g as usize).map(|g| g.init.bytes()),
            Root::Stack(v) => usage.size.get(&v).copied(),
            _ => None,
        };
        let Some(size) = size else { continue };
        let valid = Interval { lo: 0, hi: size as i128 - *bytes as i128 };
        if !a.offset.is_bottom() && a.offset.meet(&valid).is_bottom() {
            let what = if *is_store { "store" } else { "load" };
            out.push(diag(
                "oob-index",
                Severity::Error,
                Some(*b),
                format!(
                    "{what} of {bytes} bytes at offset {} is out of bounds for a {size}-byte region",
                    a.offset
                ),
            ));
        }
    }

    // ---- dead-store / uninit-load ------------------------------------------
    let mut alloca_ids: Vec<u32> = usage.size.keys().copied().collect();
    alloca_ids.sort_unstable();
    for a in alloca_ids {
        if usage.escaped.contains(&a) {
            continue; // address leaked: a callee may read or write the slot
        }
        let loads = usage.loads.get(&a).copied().unwrap_or(0);
        let stores = usage.stores.get(&a).cloned().unwrap_or_default();
        if loads == 0 && !usage.has_unknown_load && !stores.is_empty() {
            for (b, _) in &stores {
                out.push(diag(
                    "dead-store",
                    Severity::Warning,
                    Some(*b),
                    format!("store to alloca %{a} whose contents are never read"),
                ));
            }
        }
        if stores.is_empty() && !usage.has_unknown_store && loads > 0 {
            out.push(diag(
                "uninit-load",
                Severity::Warning,
                None,
                format!("alloca %{a} is read but never written (always zero)"),
            ));
        }
    }

    // ---- infinite-loop -----------------------------------------------------
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);
    for l in &li.loops {
        let has_exit = l.blocks.iter().any(|&b| {
            cfg.succs[b.idx()].iter().any(|s| !l.contains(*s))
        });
        if !has_exit {
            out.push(diag(
                "infinite-loop",
                Severity::Warning,
                Some(l.header.0),
                format!("loop headed at b{} has no exit edge", l.header.0),
            ));
        }
    }
}

/// Keep only findings at or above `min`.
pub fn filter_severity(diags: Vec<Diagnostic>, min: Severity) -> Vec<Diagnostic> {
    diags.into_iter().filter(|d| d.severity >= min).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::{BinOp, CmpOp, Operand};
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn codes(m: &Module) -> Vec<&'static str> {
        let mut v: Vec<_> = lint_module(m).into_iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn clean_function_has_no_diagnostics() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, iv| {
            b.store(I64, iv, Operand::Global(g));
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        assert!(lint_module(&m).is_empty(), "{:?}", lint_module(&m));
    }

    #[test]
    fn dead_store_to_unread_alloca() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let slot = b.alloca(8);
        b.store(I64, b.param(0), slot);
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        assert_eq!(codes(&m), vec!["dead-store"]);
    }

    #[test]
    fn uninit_load_flagged() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let slot = b.alloca(8);
        let v = b.load(I64, slot);
        b.ret(Some(v));
        m.add_func(b.finish());
        assert_eq!(codes(&m), vec!["uninit-load"]);
    }

    #[test]
    fn escaped_alloca_is_not_flagged() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("sink", vec![I64], Some(I64));
        cb.ret(Some(cb.param(0)));
        let sink = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let slot = b.alloca(8);
        b.store(I64, b.param(0), slot);
        let r = b.call(sink, Some(I64), vec![slot]).unwrap();
        b.ret(Some(r));
        m.add_func(b.finish());
        assert!(lint_module(&m).is_empty(), "{:?}", lint_module(&m));
    }

    #[test]
    fn constant_oob_store_is_an_error() {
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::Zero(16), true);
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let addr = b.gep(Operand::Global(g), Operand::imm64(4), 8); // byte 32
        b.store(I64, Operand::imm64(1), addr);
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let diags = lint_module(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "oob-index");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn masked_index_is_in_bounds() {
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::Zero(2048), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let masked = b.bin(BinOp::And, I64, b.param(0), Operand::imm64(255));
        let addr = b.gep(Operand::Global(g), masked, 8);
        let v = b.load(I64, addr);
        b.ret(Some(v));
        m.add_func(b.finish());
        assert!(lint_module(&m).is_empty(), "{:?}", lint_module(&m));
    }

    #[test]
    fn unreachable_block_flagged() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let dead = b.block();
        b.ret(Some(Operand::imm64(0)));
        b.switch_to(dead);
        b.ret(Some(Operand::imm64(1)));
        m.add_func(b.finish());
        assert_eq!(codes(&m), vec!["unreachable-block"]);
    }

    #[test]
    fn trivially_infinite_loop_flagged() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], None);
        let hdr = b.block();
        b.br(hdr);
        b.switch_to(hdr);
        let c = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
        let other = b.block();
        b.cond_br(c, other, hdr);
        b.switch_to(other);
        b.br(hdr);
        m.add_func(b.finish());
        assert_eq!(codes(&m), vec!["infinite-loop"]);
    }
}
