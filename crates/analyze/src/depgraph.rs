//! Per-loop memory dependence graphs over the alias relation.
//!
//! For every natural loop of a function this module classifies each pair of
//! in-loop memory references (loads, stores, non-`readnone` calls) as
//! **loop-independent** (the references can touch the same bytes within one
//! iteration) or **loop-carried** (a reference in iteration *k* can touch
//! bytes a reference reads or writes in iteration *k' ≠ k*), or provably
//! neither. The two directions need different proofs:
//!
//! - *Same-iteration* queries compare two addresses in a single execution
//!   state, so the full [`AliasAnalysis`] relation applies (SSA atoms denote
//!   the same runtime values on both sides).
//! - *Cross-iteration* queries compare addresses from different states, so
//!   only iteration-independent facts count: distinct in-bounds roots
//!   (globals are laid out disjointly, allocas never share bytes), offset
//!   *intervals* (sound over every execution), and symbolic decompositions
//!   whose atoms are all defined outside the loop (the address re-evaluates
//!   identically each iteration).
//!
//! Calls are handled conservatively through the [`MemEffects`] summaries:
//! a call depends on an access to global `g` only if its callee's transitive
//! summary may touch `g` (or touches unattributable memory); call/call pairs
//! are independent when their touched-global sets cannot interfere. A callee
//! that could reach a caller alloca through an escaped pointer necessarily
//! carries the `*_unknown` effect (the address classifies as ⊤ inside the
//! callee), so stack-rooted accesses are safe against summarised calls.

use crate::alias::{AliasAnalysis, AliasResult, SymAddr};
use crate::intervals::ModuleIntervals;
use crate::memeffects::{MemEffects, ModuleEffects, Root};
use citroen_ir::analysis::{Cfg, DomTree, LoopInfo};
use citroen_ir::inst::{Inst, Operand};
use citroen_ir::module::Module;

/// Kind of memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefKind {
    /// A `load`.
    Load,
    /// A `store`.
    Store,
    /// A call that may touch memory.
    Call,
}

/// One in-loop memory reference.
#[derive(Debug, Clone)]
pub struct MemRef {
    /// Block index containing the reference.
    pub block: usize,
    /// Instruction index within the block.
    pub inst: usize,
    /// Load, store or call.
    pub kind: RefKind,
    /// The address operand (loads and stores).
    pub addr: Option<Operand>,
    /// Access width in bytes (loads and stores).
    pub bytes: u32,
    /// Whether the reference may write memory.
    pub is_write: bool,
    /// Callee index for calls.
    pub callee: Option<usize>,
}

/// A dependence between two references (indices into [`LoopDepGraph::refs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// First reference.
    pub a: usize,
    /// Second reference (`a == b` encodes a self-dependence across iterations).
    pub b: usize,
    /// Whether the dependence crosses iterations.
    pub carried: bool,
    /// Whether the two references provably touch the same start address.
    pub must: bool,
}

/// Dependence graph of one natural loop.
#[derive(Debug, Clone)]
pub struct LoopDepGraph {
    /// Header block index.
    pub header: usize,
    /// Block indices forming the loop body (header included).
    pub blocks: Vec<usize>,
    /// In-loop memory references.
    pub refs: Vec<MemRef>,
    /// Dependences that could not be disproven.
    pub deps: Vec<Dep>,
}

impl LoopDepGraph {
    /// Whether reference `r` participates in any loop-carried dependence.
    pub fn has_carried_dep(&self, r: usize) -> bool {
        self.deps.iter().any(|d| d.carried && (d.a == r || d.b == r))
    }

    /// Whether the loop has any loop-carried memory dependence at all.
    pub fn any_carried(&self) -> bool {
        self.deps.iter().any(|d| d.carried)
    }
}

/// Whether a summarised call may write observable memory.
fn call_writes(eff: &MemEffects) -> bool {
    eff.writes_unknown || !eff.may_write.is_empty()
}

/// Whether a summarised call may interfere with an access to byte indices
/// `[lo, hi]` of global `g` (`write_needed`: the access is a load, so only
/// callee writes matter). Uses the per-allocation-site refinement: a callee
/// that only ever touches a disjoint slice of `g` does not interfere.
fn call_touches_global(eff: &MemEffects, g: u32, lo: i128, hi: i128, write_needed: bool) -> bool {
    if write_needed {
        !eff.cannot_write_range(g, lo, hi)
    } else {
        !(eff.cannot_write_range(g, lo, hi) && eff.cannot_read_range(g, lo, hi))
    }
}

/// Build the dependence graphs of every natural loop of function `fidx`.
pub fn loop_dep_graphs(
    m: &Module,
    fidx: usize,
    iv: &ModuleIntervals,
    eff: &ModuleEffects,
) -> Vec<LoopDepGraph> {
    let f = &m.funcs[fidx];
    if f.is_decl() {
        return Vec::new();
    }
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dom);
    let aa = AliasAnalysis::new(m, f, &iv.funcs[fidx]);

    li.loops
        .iter()
        .map(|l| {
            let blocks: Vec<usize> = l.blocks.iter().map(|b| b.idx()).collect();
            let mut refs = Vec::new();
            for &bi in &blocks {
                for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                    match inst {
                        Inst::Load { dst, addr } => refs.push(MemRef {
                            block: bi,
                            inst: ii,
                            kind: RefKind::Load,
                            addr: Some(*addr),
                            bytes: f.ty(*dst).bytes(),
                            is_write: false,
                            callee: None,
                        }),
                        Inst::Store { ty, addr, .. } => refs.push(MemRef {
                            block: bi,
                            inst: ii,
                            kind: RefKind::Store,
                            addr: Some(*addr),
                            bytes: ty.bytes(),
                            is_write: true,
                            callee: None,
                        }),
                        Inst::Call { callee, .. } => {
                            let ce = &eff.funcs[callee.idx()];
                            let touches = call_writes(ce)
                                || ce.reads_unknown
                                || !ce.may_read.is_empty();
                            if touches {
                                refs.push(MemRef {
                                    block: bi,
                                    inst: ii,
                                    kind: RefKind::Call,
                                    addr: None,
                                    bytes: 0,
                                    is_write: call_writes(ce),
                                    callee: Some(callee.idx()),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }

            let syms: Vec<Option<SymAddr>> =
                refs.iter().map(|r| r.addr.as_ref().map(|a| aa.symbolic(a))).collect();
            let mut deps = Vec::new();
            for i in 0..refs.len() {
                for j in i..refs.len() {
                    let (ri, rj) = (&refs[i], &refs[j]);
                    if !ri.is_write && !rj.is_write {
                        continue; // read/read pairs never constrain anything
                    }
                    // Same-iteration (loop-independent) direction; a reference
                    // trivially "overlaps itself", so only i != j is a fact.
                    if i != j {
                        if let Some((carried_false_must, dep)) =
                            same_iteration(m, eff, &aa, ri, rj)
                        {
                            if dep {
                                deps.push(Dep {
                                    a: i,
                                    b: j,
                                    carried: false,
                                    must: carried_false_must,
                                });
                            }
                        }
                    }
                    // Cross-iteration (loop-carried) direction.
                    if let Some((must, dep)) =
                        cross_iteration(m, eff, &aa, &blocks, ri, &syms[i], rj, &syms[j])
                    {
                        if dep {
                            deps.push(Dep { a: i, b: j, carried: true, must });
                        }
                    }
                }
            }
            LoopDepGraph { header: l.header.idx(), blocks, refs, deps }
        })
        .collect()
}

/// Same-iteration interference test. Returns `Some((must, dep))`.
fn same_iteration(
    m: &Module,
    eff: &ModuleEffects,
    aa: &AliasAnalysis<'_>,
    ri: &MemRef,
    rj: &MemRef,
) -> Option<(bool, bool)> {
    match (ri.kind, rj.kind) {
        (RefKind::Call, RefKind::Call) => {
            let (ci, cj) = (&eff.funcs[ri.callee?], &eff.funcs[rj.callee?]);
            Some((false, calls_interfere(ci, cj)))
        }
        (RefKind::Call, _) | (_, RefKind::Call) => {
            let (call, acc) = if ri.kind == RefKind::Call { (ri, rj) } else { (rj, ri) };
            let ce = &eff.funcs[call.callee?];
            Some((false, call_vs_access(m, aa, ce, acc)))
        }
        _ => {
            let (a, b) = (ri.addr?, rj.addr?);
            match aa.alias(&a, ri.bytes, &b, rj.bytes) {
                AliasResult::No => Some((false, false)),
                AliasResult::May => Some((false, true)),
                AliasResult::Must => Some((true, true)),
            }
        }
    }
}

/// Whether two summarised calls can interfere.
fn calls_interfere(ci: &MemEffects, cj: &MemEffects) -> bool {
    if !ci.may_write.is_empty() || !cj.may_write.is_empty() {
        // Refine: disjoint touched-global sets with no unknown components
        // cannot interfere.
        if ci.writes_unknown || cj.writes_unknown || ci.reads_unknown || cj.reads_unknown {
            return true;
        }
        let wi_rj = ci.may_write.iter().any(|g| cj.may_read.contains(g) || cj.may_write.contains(g));
        let wj_ri = cj.may_write.iter().any(|g| ci.may_read.contains(g) || ci.may_write.contains(g));
        return wi_rj || wj_ri;
    }
    // Neither writes observable memory; reads commute.
    ci.writes_unknown || cj.writes_unknown
}

/// Whether a summarised call can interfere with a direct access.
fn call_vs_access(
    m: &Module,
    aa: &AliasAnalysis<'_>,
    ce: &MemEffects,
    acc: &MemRef,
) -> bool {
    let Some(addr) = acc.addr else { return true };
    let write_needed = !acc.is_write; // the access reads: only callee writes hurt
    let ca = aa.classify(&addr);
    match ca.root {
        Root::Global(g)
            if (g as usize) < m.globals.len()
                && !ca.offset.is_bottom()
                && ca.offset.lo >= 0
                && ca.offset.hi + acc.bytes as i128
                    <= m.globals[g as usize].init.bytes() as i128 =>
        {
            call_touches_global(
                ce,
                g,
                ca.offset.lo,
                ca.offset.hi + acc.bytes as i128 - 1,
                write_needed,
            )
        }
        Root::Stack(_) if !ca.offset.is_bottom() && ca.offset.lo >= 0 => {
            // A callee reaching this frame's allocas must have an
            // unattributable (⊤) effect in its summary.
            if write_needed {
                ce.writes_unknown
            } else {
                ce.writes_unknown || ce.reads_unknown
            }
        }
        _ => true,
    }
}

/// Cross-iteration interference test. Returns `Some((must, dep))`; `must`
/// marks a dependence on provably the *same* address every iteration.
#[allow(clippy::too_many_arguments)]
fn cross_iteration(
    m: &Module,
    eff: &ModuleEffects,
    aa: &AliasAnalysis<'_>,
    blocks: &[usize],
    ri: &MemRef,
    si: &Option<SymAddr>,
    rj: &MemRef,
    sj: &Option<SymAddr>,
) -> Option<(bool, bool)> {
    match (ri.kind, rj.kind) {
        (RefKind::Call, RefKind::Call) => {
            let (ci, cj) = (&eff.funcs[ri.callee?], &eff.funcs[rj.callee?]);
            Some((false, calls_interfere(ci, cj)))
        }
        (RefKind::Call, _) | (_, RefKind::Call) => {
            let (call, acc) = if ri.kind == RefKind::Call { (ri, rj) } else { (rj, ri) };
            let ce = &eff.funcs[call.callee?];
            Some((false, call_vs_access(m, aa, ce, acc)))
        }
        _ => {
            let (a, b) = (ri.addr?, rj.addr?);
            let (ca, cb) = (aa.classify(&a), aa.classify(&b));

            // Root disjointness and offset intervals are facts about *every*
            // execution, so they rule out cross-iteration overlap too. The
            // symbolic argument only transfers when every atom is defined
            // outside the loop (the address is the same bytes each iteration).
            let invariant = match (si, sj) {
                (Some(x), Some(y)) => {
                    x.terms == y.terms
                        && aa.atoms_invariant_outside(x, blocks)
                        && aa.atoms_invariant_outside(y, blocks)
                }
                _ => false,
            };
            if invariant {
                let (x, y) = (si.as_ref().unwrap(), sj.as_ref().unwrap());
                let d = (x.offset as u64).wrapping_sub(y.offset as u64);
                if d == 0 {
                    return Some((true, true));
                }
                if d >= rj.bytes as u64 && d.wrapping_neg() >= ri.bytes as u64 {
                    return Some((false, false));
                }
                return Some((false, true));
            }

            let in_b = |c: &crate::memeffects::Access, bytes: u32| match c.root {
                Root::Global(g) => {
                    (g as usize) < m.globals.len()
                        && !c.offset.is_bottom()
                        && c.offset.lo >= 0
                        && c.offset.hi + bytes as i128
                            <= m.globals[g as usize].init.bytes() as i128
                }
                _ => false,
            };
            let stack_fwd = |c: &crate::memeffects::Access| {
                matches!(c.root, Root::Stack(_)) && !c.offset.is_bottom() && c.offset.lo >= 0
            };
            let independent = match (ca.root, cb.root) {
                (Root::Global(ga), Root::Global(gb)) if ga != gb => {
                    in_b(&ca, ri.bytes) && in_b(&cb, rj.bytes)
                }
                (Root::Global(ga), Root::Global(gb)) if ga == gb => {
                    in_b(&ca, ri.bytes)
                        && in_b(&cb, rj.bytes)
                        && (ca.offset.hi + ri.bytes as i128 <= cb.offset.lo
                            || cb.offset.hi + rj.bytes as i128 <= ca.offset.lo)
                }
                (Root::Global(_), Root::Stack(_)) => in_b(&ca, ri.bytes) && stack_fwd(&cb),
                (Root::Stack(_), Root::Global(_)) => in_b(&cb, rj.bytes) && stack_fwd(&ca),
                // Distinct allocas never share bytes, in any pair of states.
                (Root::Stack(va), Root::Stack(vb)) if va != vb => {
                    stack_fwd(&ca) && stack_fwd(&cb)
                }
                _ => false,
            };
            Some((false, !independent))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{intervals, memeffects};
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::BinOp;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::I64;

    fn graphs(m: &Module) -> Vec<LoopDepGraph> {
        let iv = intervals::analyze_module(m);
        let eff = memeffects::analyze_module(m, &iv);
        loop_dep_graphs(m, 0, &iv, &eff)
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        assert!(graphs(&m).is_empty());
    }

    #[test]
    fn accumulator_store_is_carried_must() {
        // A store to the same global every iteration: carried self-dependence
        // on provably the same address.
        let mut m = Module::new("m");
        let g = m.add_global("acc", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, _| {
            let v = b.load(I64, Operand::Global(g));
            let v2 = b.bin(BinOp::Add, I64, v, Operand::imm64(1));
            b.store(I64, v2, Operand::Global(g));
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let gs = graphs(&m);
        assert!(!gs.is_empty());
        let g0 = &gs[0];
        assert!(
            g0.deps.iter().any(|d| d.carried && d.must),
            "accumulator loop must have a carried must-dependence: {:?}",
            g0.deps
        );
    }

    #[test]
    fn disjoint_globals_have_no_cross_deps() {
        // Load from g1, store to g2: provably independent in both directions
        // (beyond the loop-counter alloca traffic, which classifies as stack
        // and is disjoint from both globals).
        let mut m = Module::new("m");
        let g1 = m.add_global("src", GlobalInit::Zero(8), true);
        let g2 = m.add_global("dst", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, _| {
            let v = b.load(I64, Operand::Global(g1));
            b.store(I64, v, Operand::Global(g2));
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let gs = graphs(&m);
        let g0 = &gs[0];
        // Find the ref indices of the g1-load and g2-store.
        let li = g0
            .refs
            .iter()
            .position(|r| r.kind == RefKind::Load && r.addr == Some(Operand::Global(g1)))
            .unwrap();
        let si = g0
            .refs
            .iter()
            .position(|r| r.kind == RefKind::Store && r.addr == Some(Operand::Global(g2)))
            .unwrap();
        assert!(
            !g0.deps.iter().any(|d| (d.a == li && d.b == si) || (d.a == si && d.b == li)),
            "load g1 / store g2 must be independent: {:?}",
            g0.deps
        );
        // But the g2 store still self-depends across iterations (same cell).
        assert!(g0.has_carried_dep(si));
    }
}
