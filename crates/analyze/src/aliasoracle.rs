//! Concrete soundness oracle for the alias analysis.
//!
//! [`alias`](crate::alias) answers [`No`](AliasResult::No) and
//! [`Must`](AliasResult::Must) as *theorems* about every execution; the
//! sanitizer rules (S9–S11), the loop dependence graphs, and the sharpened
//! pass preconditions all lean on them. This module checks the theorems the
//! brute-force way: record every dynamic memory access with its static site
//! (via the interpreter's [`EventSink::mem_site`] hook), group accesses into
//! per-block dynamic *instances* (one execution of one block in one function
//! activation), and compare each claimed pair's concrete addresses:
//!
//! - `No` for `(a, sa)` vs `(b, sb)` ⇒ `[a, a+sa)` and `[b, b+sb)` are
//!   disjoint in every instance that executes both accesses;
//! - `Must` ⇒ the start addresses are equal in every such instance.
//!
//! Claims are same-block pairs only: within one block instance each SSA
//! value has exactly one concrete value, which is the world the symbolic
//! difference argument reasons about. (Cross-block queries are exercised
//! indirectly — the dependence graphs and sanitizer are built on the same
//! `alias` entry point — but their per-iteration semantics has no single
//! concrete witness to compare against.)
//!
//! The campaign driver (`citroen-analyze alias-oracle`) runs this over
//! hundreds of generated modules and reduces any violating module with
//! [`reduce_module`](crate::reduce::reduce_module), keeping the violated
//! claim reachable.

use crate::alias::{access_bytes, AliasAnalysis, AliasResult};
use crate::intervals;
use citroen_ir::inst::FuncId;
use citroen_ir::interp::{self, EventSink, Limits, OpClass, Trap};
use citroen_ir::module::Module;
use std::collections::HashMap;

/// A `No`/`Must` answer for a same-block access pair, identified by static
/// site (function, block, instruction indices `a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliasClaim {
    /// Function index.
    pub func: usize,
    /// Block index.
    pub block: usize,
    /// First access's instruction index within the block.
    pub a: usize,
    /// Second access's instruction index (`a < b`).
    pub b: usize,
    /// Byte widths of the two accesses.
    pub bytes: (u32, u32),
    /// The claimed relation (never [`AliasResult::May`]).
    pub result: AliasResult,
}

/// A claim contradicted by a concrete execution.
#[derive(Debug, Clone)]
pub struct AliasViolation {
    /// The contradicted claim.
    pub claim: AliasClaim,
    /// Concrete start addresses observed in the violating block instance.
    pub addrs: (u64, u64),
}

impl std::fmt::Display for AliasViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.claim;
        write!(
            f,
            "func {} block {}: claimed {:?} for insts {} ({}B) and {} ({}B), \
             but observed addrs {:#x} and {:#x}",
            c.func, c.block, c.result, c.a, c.bytes.0, c.b, c.bytes.1, self.addrs.0, self.addrs.1
        )
    }
}

/// Every `No`/`Must` answer the analysis gives for same-block access pairs
/// of `m`. `May` answers claim nothing and are not recorded.
pub fn same_block_claims(m: &Module) -> Vec<AliasClaim> {
    let iv = intervals::analyze_module(m);
    let mut claims = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        if f.is_decl() {
            continue;
        }
        let aa = AliasAnalysis::new(m, f, &iv.funcs[fi]);
        for (bi, blk) in f.blocks.iter().enumerate() {
            let accesses: Vec<(usize, citroen_ir::inst::Operand, u32)> = blk
                .insts
                .iter()
                .enumerate()
                .filter_map(|(ii, inst)| access_bytes(f, inst).map(|(op, sz)| (ii, op, sz)))
                .collect();
            for (x, &(ia, opa, sa)) in accesses.iter().enumerate() {
                for &(ib, opb, sb) in &accesses[x + 1..] {
                    let result = aa.alias(&opa, sa, &opb, sb);
                    if matches!(result, AliasResult::May) {
                        continue;
                    }
                    claims.push(AliasClaim {
                        func: fi,
                        block: bi,
                        a: ia,
                        b: ib,
                        bytes: (sa, sb),
                        result,
                    });
                }
            }
        }
    }
    claims
}

/// One recorded dynamic access.
#[derive(Debug, Clone, Copy)]
struct Rec {
    act: u32,
    func: u32,
    block: u32,
    inst: u32,
    addr: u64,
}

/// Sink that attributes every access to its site and function activation.
#[derive(Default)]
struct RecordingSink {
    recs: Vec<Rec>,
    stack: Vec<u32>,
    next_act: u32,
}

impl EventSink for RecordingSink {
    fn op(&mut self, _class: OpClass, _lanes: u8) {}
    fn mem(&mut self, _addr: u64, _bytes: u32, _store: bool) {}
    fn branch(&mut self, _site: u32, _taken: bool) {}
    fn enter_function(&mut self, _f: FuncId) {
        self.stack.push(self.next_act);
        self.next_act += 1;
    }
    fn exit_function(&mut self) {
        self.stack.pop();
    }
    fn mem_site(&mut self, f: FuncId, block: u32, inst: u32, addr: u64, _bytes: u32, _store: bool) {
        let act = *self.stack.last().expect("access outside any activation");
        self.recs.push(Rec { act, func: f.0, block, inst, addr });
    }
}

/// Check `claims` against a recorded access stream. Exposed for unit tests;
/// campaign callers use [`check_module`].
fn check_claims(claims: &[AliasClaim], recs: &[Rec]) -> Vec<AliasViolation> {
    // Index claims by (func, block) for instance lookup.
    let mut by_site: HashMap<(u32, u32), Vec<&AliasClaim>> = HashMap::new();
    for c in claims {
        by_site.entry((c.func as u32, c.block as u32)).or_default().push(c);
    }
    // Split the stream into block instances: within one activation, a block
    // instance emits its accesses in strictly increasing instruction order,
    // so a repeat or regress of the index starts the next instance.
    let mut cur: HashMap<(u32, u32, u32), HashMap<u32, u64>> = HashMap::new();
    let mut out = Vec::new();
    let flush = |insts: &HashMap<u32, u64>, func: u32, block: u32, out: &mut Vec<AliasViolation>| {
        let Some(claims) = by_site.get(&(func, block)) else { return };
        for c in claims {
            let (Some(&aa), Some(&ab)) = (insts.get(&(c.a as u32)), insts.get(&(c.b as u32)))
            else {
                continue;
            };
            let bad = match c.result {
                AliasResult::No => {
                    aa < ab + c.bytes.1 as u64 && ab < aa + c.bytes.0 as u64
                }
                AliasResult::Must => aa != ab,
                AliasResult::May => false,
            };
            if bad {
                out.push(AliasViolation { claim: **c, addrs: (aa, ab) });
            }
        }
    };
    for r in recs {
        let key = (r.act, r.func, r.block);
        let slot = cur.entry(key).or_default();
        if slot.contains_key(&r.inst) || slot.keys().any(|&k| k > r.inst) {
            flush(slot, r.func, r.block, &mut out);
            slot.clear();
        }
        slot.insert(r.inst, r.addr);
    }
    for ((_, func, block), insts) in &cur {
        flush(insts, *func, *block, &mut out);
    }
    out
}

/// Compute all same-block claims for `m`, execute it from `entry` with no
/// arguments, and return every claim a concrete block instance contradicts.
/// A trapping module proves nothing and is reported as the trap.
pub fn check_module(m: &Module, entry: FuncId, max_steps: u64) -> Result<Vec<AliasViolation>, Trap> {
    let claims = same_block_claims(m);
    let mut sink = RecordingSink::default();
    let limits = Limits { max_steps, ..Limits::default() };
    interp::run(m, entry, &[], &mut sink, limits)?;
    Ok(check_claims(&claims, &sink.recs))
}

/// Number of `No`/`Must` claims [`check_module`] would test on `m` (for
/// campaign reporting).
pub fn claim_count(m: &Module) -> (usize, usize) {
    let claims = same_block_claims(m);
    let no = claims.iter().filter(|c| matches!(c.result, AliasResult::No)).count();
    (no, claims.len() - no)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::FunctionBuilder;
    use citroen_ir::inst::Operand;
    use citroen_ir::module::GlobalInit;
    use citroen_ir::interp::Value;
    use citroen_ir::types::I64;

    /// store @a; store @b; load @a — distinct globals, in-bounds.
    fn two_globals() -> Module {
        let mut m = Module::new("m");
        let ga = m.add_global("a", GlobalInit::Zero(8), true);
        let gb = m.add_global("b", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        b.store(I64, Operand::imm64(1), Operand::Global(ga));
        b.store(I64, Operand::imm64(2), Operand::Global(gb));
        let v = b.load(I64, Operand::Global(ga));
        b.ret(Some(v));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn claims_cover_no_and_must() {
        let m = two_globals();
        let claims = same_block_claims(&m);
        assert!(
            claims.iter().any(|c| matches!(c.result, AliasResult::No)),
            "distinct globals must claim No: {claims:?}"
        );
        assert!(
            claims.iter().any(|c| matches!(c.result, AliasResult::Must)),
            "same global same offset must claim Must: {claims:?}"
        );
    }

    #[test]
    fn concrete_execution_upholds_the_claims() {
        let m = two_globals();
        let v = check_module(&m, FuncId(0), 1 << 20).expect("runs");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn checker_detects_a_planted_lie() {
        // Fabricate a claim the real analysis would never make: the two
        // distinct-global stores "must" alias. The concrete run must convict.
        let m = two_globals();
        let mut claims = same_block_claims(&m);
        let no = claims
            .iter()
            .position(|c| matches!(c.result, AliasResult::No))
            .expect("has a No claim");
        claims[no].result = AliasResult::Must;
        let mut sink = RecordingSink::default();
        interp::run(&m, FuncId(0), &[], &mut sink, Limits::default()).expect("runs");
        let v = check_claims(&claims, &sink.recs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].claim.result, AliasResult::Must));

        // And the dual: claim No for the must-aliasing store/load pair.
        let mut claims = same_block_claims(&m);
        let must = claims
            .iter()
            .position(|c| matches!(c.result, AliasResult::Must))
            .expect("has a Must claim");
        claims[must].result = AliasResult::No;
        let v = check_claims(&claims, &sink.recs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].claim.result, AliasResult::No));
    }

    #[test]
    fn loop_instances_are_split_per_iteration() {
        // A counted loop storing then loading the same global: every
        // iteration is its own instance, and the Must claim holds in each.
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("main", vec![I64], Some(I64));
        let n = b.param(0);
        citroen_ir::builder::counted_loop_mem(&mut b, n, |b, _| {
            b.store(I64, Operand::imm64(3), Operand::Global(g));
            let v = b.load(I64, Operand::Global(g));
            b.store(I64, v, Operand::Global(g));
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let claims = same_block_claims(&m);
        assert!(claims.iter().any(|c| matches!(c.result, AliasResult::Must)));
        let mut sink = RecordingSink::default();
        interp::run(&m, FuncId(0), &[Value::I(5)], &mut sink, Limits::default()).expect("runs");
        assert!(sink.recs.len() >= 15, "5 iterations x 3 accesses: {}", sink.recs.len());
        let v = check_claims(&claims, &sink.recs);
        assert!(v.is_empty(), "{v:?}");
    }
}
