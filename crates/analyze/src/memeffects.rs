//! Conservative per-function memory-effects summaries.
//!
//! For every function the analysis computes which globals it *may* read and
//! write, which globals it *must* write on every terminating run (stores whose
//! block dominates all reachable returns, including through calls), the join
//! of the integer value ranges stored to each global, and whether it touches
//! addresses the root analysis cannot attribute (an "unknown" access, the ⊤
//! effect). Alloca-rooted traffic is function-local and tracked only as
//! `reads_stack`/`writes_stack` — it is invisible to callers and to the
//! observable memory digest.
//!
//! Calls are closed transitively by a module-level monotone fixpoint, so the
//! summary of `main` covers its whole static call tree; calls to unresolved
//! declarations degrade to the ⊤ effect.

use crate::intervals::{FunctionIntervals, Interval, ModuleIntervals};
use citroen_ir::analysis::{Cfg, DomTree};
use citroen_ir::inst::{BinOp, Inst, Operand, Term, ValueId};
use citroen_ir::module::{Function, Module};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Where an address expression is rooted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Root {
    /// Pure integer with no memory base (offset arithmetic).
    None,
    /// Byte offset from global `g`.
    Global(u32),
    /// Byte offset from the alloca defining value `v`.
    Stack(u32),
    /// Could be anywhere.
    Unknown,
}

/// A classified address: a root plus the interval of the byte offset from it
/// (for [`Root::None`] the interval is the value itself).
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// The base the address is computed from.
    pub root: Root,
    /// Offset (or absolute value) interval.
    pub offset: Interval,
}

/// Classify the address operand `op` of function `f`, using interval facts
/// for the pure-integer parts. Deterministic and memoised per call site.
pub fn classify_addr(f: &Function, fi: &FunctionIntervals, op: &Operand) -> Access {
    let mut memo: HashMap<u32, Access> = HashMap::new();
    classify(f, fi, op, &mut memo, 0)
}

fn classify(
    f: &Function,
    fi: &FunctionIntervals,
    op: &Operand,
    memo: &mut HashMap<u32, Access>,
    depth: u32,
) -> Access {
    let unknown = Access { root: Root::Unknown, offset: Interval::top() };
    if depth > 64 {
        return unknown;
    }
    match op {
        Operand::Global(g) => Access { root: Root::Global(g.0), offset: Interval::constant(0) },
        Operand::ImmI(..) | Operand::ImmF(_) => {
            Access { root: Root::None, offset: fi.operand(f, op) }
        }
        Operand::Value(v) => {
            if let Some(a) = memo.get(&v.0) {
                return *a;
            }
            // Mark in-progress (φ cycles resolve to Unknown).
            memo.insert(v.0, unknown);
            let def = find_def(f, *v);
            let a = match def {
                Some(Inst::Alloca { dst, .. }) => {
                    Access { root: Root::Stack(dst.0), offset: Interval::constant(0) }
                }
                Some(Inst::Bin { op: BinOp::Add, lhs, rhs, .. }) => {
                    let la = classify(f, fi, lhs, memo, depth + 1);
                    let ra = classify(f, fi, rhs, memo, depth + 1);
                    combine_add(la, ra)
                }
                Some(Inst::Bin { op: BinOp::Sub, lhs, rhs, .. }) => {
                    let la = classify(f, fi, lhs, memo, depth + 1);
                    let ra = classify(f, fi, rhs, memo, depth + 1);
                    match (la.root, ra.root) {
                        (_, Root::None) if la.root != Root::Unknown => Access {
                            root: la.root,
                            offset: sub_iv(la.offset, ra.offset),
                        },
                        (Root::None, Root::None) => {
                            Access { root: Root::None, offset: fi.val[v.idx()] }
                        }
                        _ => unknown,
                    }
                }
                Some(Inst::Phi { incoming, .. }) => {
                    let mut acc: Option<Access> = None;
                    let mut ok = true;
                    for (_, inc) in incoming {
                        let ia = classify(f, fi, inc, memo, depth + 1);
                        acc = Some(match acc {
                            None => ia,
                            Some(prev) if prev.root == ia.root => Access {
                                root: prev.root,
                                offset: prev.offset.join(&ia.offset),
                            },
                            Some(_) => {
                                ok = false;
                                break;
                            }
                        });
                    }
                    if ok {
                        acc.unwrap_or(unknown)
                    } else {
                        unknown
                    }
                }
                Some(Inst::Select { t, f: fv, .. }) => {
                    let ta = classify(f, fi, t, memo, depth + 1);
                    let fa = classify(f, fi, fv, memo, depth + 1);
                    if ta.root == fa.root {
                        Access { root: ta.root, offset: ta.offset.join(&fa.offset) }
                    } else {
                        unknown
                    }
                }
                // Any other defining instruction produces a plain integer as
                // far as rooting is concerned; its interval is the "offset".
                Some(_) => Access { root: Root::None, offset: fi.val[v.idx()] },
                // Parameters (or missing defs): an integer from outside —
                // cannot be attributed to a base.
                None => Access { root: Root::None, offset: fi.val[v.idx()] },
            };
            memo.insert(v.0, a);
            a
        }
    }
}

fn sub_iv(a: Interval, b: Interval) -> Interval {
    if a.is_bottom() || b.is_bottom() {
        return Interval::bottom();
    }
    Interval { lo: a.lo - b.hi, hi: a.hi - b.lo }
}

fn combine_add(a: Access, b: Access) -> Access {
    let unknown = Access { root: Root::Unknown, offset: Interval::top() };
    match (a.root, b.root) {
        (Root::Unknown, _) | (_, Root::Unknown) => unknown,
        (Root::None, Root::None) => Access {
            root: Root::None,
            offset: add_iv(a.offset, b.offset),
        },
        (Root::None, r) => Access { root: r, offset: add_iv(a.offset, b.offset) },
        (r, Root::None) => Access { root: r, offset: add_iv(a.offset, b.offset) },
        _ => unknown, // two bases: not an offset expression
    }
}

fn add_iv(a: Interval, b: Interval) -> Interval {
    if a.is_bottom() || b.is_bottom() {
        return Interval::bottom();
    }
    Interval { lo: a.lo + b.lo, hi: a.hi + b.hi }
}

fn find_def(f: &Function, v: ValueId) -> Option<&Inst> {
    if v.idx() < f.params.len() {
        return None;
    }
    for blk in &f.blocks {
        for inst in &blk.insts {
            if inst.dst() == Some(v) {
                return Some(inst);
            }
        }
    }
    None
}

/// Memory-effects summary of one function (transitively through calls).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemEffects {
    /// Globals possibly read.
    pub may_read: BTreeSet<u32>,
    /// Globals possibly written.
    pub may_write: BTreeSet<u32>,
    /// Globals written on *every terminating run* (store block dominates all
    /// reachable returns).
    pub must_write: BTreeSet<u32>,
    /// Per-global interval of byte indices possibly read (the allocation-site
    /// refinement of [`may_read`](Self::may_read): `[lo, hi]` bounds every
    /// byte the function's transitive reads of `g` can touch).
    pub read_sites: BTreeMap<u32, Interval>,
    /// Per-global interval of byte indices possibly written (refines
    /// [`may_write`](Self::may_write) the same way).
    pub write_sites: BTreeMap<u32, Interval>,
    /// Join of the value ranges stored to each global (ints only; a float or
    /// vector store degrades the entry to ⊤).
    pub stored: BTreeMap<u32, Interval>,
    /// Reads an address the root analysis cannot attribute.
    pub reads_unknown: bool,
    /// Writes an address the root analysis cannot attribute.
    pub writes_unknown: bool,
    /// Touches its own stack frame (reads).
    pub reads_stack: bool,
    /// Touches its own stack frame (writes).
    pub writes_stack: bool,
    /// The function provably returns on every run: reachable CFG is acyclic,
    /// free of `unreachable` terminators, every div/rem has a provably
    /// non-zero divisor, every access is provably in bounds and every callee
    /// must return. (Resource-limit traps — call depth, step budget — are
    /// outside the model; see DESIGN.md.)
    pub must_return: bool,
}

impl MemEffects {
    /// Whether the summary proves the function cannot write global `g`.
    pub fn cannot_write(&self, g: u32) -> bool {
        !self.writes_unknown && !self.may_write.contains(&g)
    }

    /// Whether the function provably writes no observable (global) memory.
    pub fn provably_pure_writes(&self) -> bool {
        !self.writes_unknown && self.may_write.is_empty()
    }

    /// Whether the summary proves no write of the function can touch byte
    /// indices `[lo, hi]` of global `g`.
    pub fn cannot_write_range(&self, g: u32, lo: i128, hi: i128) -> bool {
        if self.writes_unknown {
            return false;
        }
        match self.write_sites.get(&g) {
            None => !self.may_write.contains(&g),
            Some(w) => w.is_bottom() || w.hi < lo || w.lo > hi,
        }
    }

    /// Whether the summary proves no read of the function can touch byte
    /// indices `[lo, hi]` of global `g`.
    pub fn cannot_read_range(&self, g: u32, lo: i128, hi: i128) -> bool {
        if self.reads_unknown {
            return false;
        }
        match self.read_sites.get(&g) {
            None => !self.may_read.contains(&g),
            Some(r) => r.is_bottom() || r.hi < lo || r.lo > hi,
        }
    }
}

/// Per-module memory-effects facts, one summary per function.
#[derive(Debug, Clone)]
pub struct ModuleEffects {
    /// Summaries in module function order.
    pub funcs: Vec<MemEffects>,
}

/// Compute memory-effects summaries for every function of `m`, closing calls
/// with a monotone fixpoint over the (finite) summary lattice.
pub fn analyze_module(m: &Module, intervals: &ModuleIntervals) -> ModuleEffects {
    // Local (call-free) parts plus the per-function call sites.
    struct Local {
        eff: MemEffects,
        // (callee index, dominates-all-returns)
        calls: Vec<(usize, bool)>,
        local_ok: bool, // local conditions of must_return
    }
    let locals: Vec<Local> = m
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let (eff, calls, local_ok) = local_effects(m, f, &intervals.funcs[fi]);
            Local { eff, calls, local_ok }
        })
        .collect();

    let mut out: Vec<MemEffects> = locals.iter().map(|l| l.eff.clone()).collect();
    // must_return: optimistic false → raise while provable; everything else:
    // grow until stable. Both directions are monotone, so iteration converges.
    loop {
        let mut changed = false;
        for fi in 0..m.funcs.len() {
            let mut next = out[fi].clone();
            for &(callee, dominates) in &locals[fi].calls {
                let ce = out[callee].clone();
                next.may_read.extend(ce.may_read.iter().copied());
                next.may_write.extend(ce.may_write.iter().copied());
                next.reads_unknown |= ce.reads_unknown;
                next.writes_unknown |= ce.writes_unknown;
                for (g, r) in &ce.stored {
                    let e = next.stored.entry(*g).or_insert_with(Interval::bottom);
                    *e = e.join(r);
                }
                for (g, r) in &ce.read_sites {
                    let e = next.read_sites.entry(*g).or_insert_with(Interval::bottom);
                    *e = e.join(r);
                }
                for (g, r) in &ce.write_sites {
                    let e = next.write_sites.entry(*g).or_insert_with(Interval::bottom);
                    *e = e.join(r);
                }
                if dominates {
                    next.must_write.extend(ce.must_write.iter().copied());
                }
            }
            next.must_return =
                locals[fi].local_ok && locals[fi].calls.iter().all(|&(c, _)| out[c].must_return);
            if next != out[fi] {
                out[fi] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ModuleEffects { funcs: out }
}

/// Effects of `f` ignoring calls, plus its call sites and the local part of
/// the must-return proof.
fn local_effects(
    m: &Module,
    f: &Function,
    fi: &FunctionIntervals,
) -> (MemEffects, Vec<(usize, bool)>, bool) {
    let mut eff = MemEffects::default();
    let mut calls = Vec::new();
    if f.is_decl() {
        // Unresolved declaration: assume the worst.
        eff.reads_unknown = true;
        eff.writes_unknown = true;
        return (eff, calls, false);
    }
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let ret_blocks: Vec<_> = f
        .iter_blocks()
        .filter(|(b, blk)| cfg.reachable(*b) && matches!(blk.term, Term::Ret(_)))
        .map(|(b, _)| b)
        .collect();
    let dominates_all_rets = |b| {
        !ret_blocks.is_empty() && ret_blocks.iter().all(|&r| dom.dominates(b, r))
    };

    let mut local_ok = !has_cycle(&cfg) && !ret_blocks.is_empty();
    let mut memo: HashMap<u32, Access> = HashMap::new();

    for (b, blk) in f.iter_blocks() {
        if !cfg.reachable(b) {
            continue;
        }
        if matches!(blk.term, Term::Unreachable) {
            local_ok = false;
        }
        let dom_ret = dominates_all_rets(b);
        for inst in &blk.insts {
            match inst {
                Inst::Load { dst, addr } => {
                    let bytes = f.ty(*dst).bytes();
                    let a = classify(f, fi, addr, &mut memo, 0);
                    record_access(m, &mut eff, &a, bytes, false, None, &mut local_ok);
                }
                Inst::Store { ty, val, addr } => {
                    let a = classify(f, fi, addr, &mut memo, 0);
                    let stored = if ty.lanes == 1 && ty.scalar.is_int() {
                        fi.operand(f, val)
                    } else {
                        Interval::top()
                    };
                    record_access(
                        m,
                        &mut eff,
                        &a,
                        ty.bytes(),
                        true,
                        Some((stored, dom_ret)),
                        &mut local_ok,
                    );
                }
                Inst::Call { callee, .. } => {
                    calls.push((callee.idx(), dom_ret));
                }
                Inst::Bin { op: BinOp::SDiv | BinOp::SRem, rhs, .. } => {
                    let r = fi.operand(f, rhs);
                    if r.contains(0) || r.is_bottom() {
                        local_ok = false;
                    }
                }
                // Lane bounds are a verifier concern, but an out-of-range
                // extract traps at run time — drop the must-return proof.
                Inst::ExtractLane { .. } => local_ok = false,
                _ => {}
            }
        }
    }
    (eff, calls, local_ok)
}

#[allow(clippy::too_many_arguments)]
fn record_access(
    m: &Module,
    eff: &mut MemEffects,
    a: &Access,
    bytes: u32,
    is_store: bool,
    stored: Option<(Interval, bool)>,
    local_ok: &mut bool,
) {
    let in_bounds = |size: u32| {
        !a.offset.is_bottom()
            && a.offset.lo >= 0
            && a.offset.hi + bytes as i128 <= size as i128
    };
    match a.root {
        Root::Global(g) if (g as usize) < m.globals.len()
            && in_bounds(m.globals[g as usize].init.bytes()) =>
        {
            // Allocation-site refinement: the byte indices this access spans.
            let touched =
                Interval { lo: a.offset.lo, hi: a.offset.hi + bytes as i128 - 1 };
            if is_store {
                eff.may_write.insert(g);
                let w = eff.write_sites.entry(g).or_insert_with(Interval::bottom);
                *w = w.join(&touched);
                if let Some((range, dom_ret)) = stored {
                    let e = eff.stored.entry(g).or_insert_with(Interval::bottom);
                    *e = e.join(&range);
                    if dom_ret {
                        eff.must_write.insert(g);
                    }
                }
            } else {
                eff.may_read.insert(g);
                let r = eff.read_sites.entry(g).or_insert_with(Interval::bottom);
                *r = r.join(&touched);
            }
        }
        Root::Stack(_) if !a.offset.is_bottom() && a.offset.lo >= 0 => {
            // In-bounds check against the alloca size happens in the lints;
            // for the summary any stack access is local. An offset that might
            // run past the frame is treated as unknown below.
            if is_store {
                eff.writes_stack = true;
            } else {
                eff.reads_stack = true;
            }
        }
        _ => {
            if is_store {
                eff.writes_unknown = true;
            } else {
                eff.reads_unknown = true;
            }
            *local_ok = false; // cannot prove the access in bounds
        }
    }
    // Must-return also needs the global access in provable bounds.
    if matches!(a.root, Root::Global(_)) {
        let ok = match a.root {
            Root::Global(g) => {
                (g as usize) < m.globals.len() && in_bounds(m.globals[g as usize].init.bytes())
            }
            _ => false,
        };
        if !ok {
            *local_ok = false;
        }
    }
    if let Root::Stack(_) = a.root {
        // Stack frames are bounded but alloca sizes are checked by the lints;
        // conservatively keep must-return only for provably-forward offsets.
        if a.offset.is_bottom() || a.offset.lo < 0 {
            *local_ok = false;
        }
    }
}

fn has_cycle(cfg: &Cfg) -> bool {
    // DFS colouring over the reachable part.
    let n = cfg.succs.len();
    let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &start in &cfg.rpo {
        if colour[start.idx()] != 0 {
            continue;
        }
        colour[start.idx()] = 1;
        stack.push((start.idx(), 0));
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < cfg.succs[b].len() {
                let s = cfg.succs[b][*i].idx();
                *i += 1;
                match colour[s] {
                    0 => {
                        colour[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                colour[b] = 2;
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::CastKind;
    use citroen_ir::module::{GlobalInit, Module};
    use citroen_ir::types::{ScalarTy, I64};

    fn effects(m: &Module) -> ModuleEffects {
        let iv = intervals::analyze_module(m);
        analyze_module(m, &iv)
    }

    #[test]
    fn straight_line_global_store_is_must_write() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        b.store(I64, Operand::imm64(42), Operand::Global(g));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let e = &effects(&m).funcs[0];
        assert!(e.may_write.contains(&g.0));
        assert!(e.must_write.contains(&g.0));
        assert!(e.must_return);
        assert_eq!(e.stored.get(&g.0).and_then(|i| i.as_const()), Some(42));
    }

    #[test]
    fn loop_store_is_may_not_must() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(2048), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let n = b.param(0);
        counted_loop_mem(&mut b, n, |b, iv| {
            let masked = b.bin(BinOp::And, I64, iv, Operand::imm64(255));
            let addr = b.gep(Operand::Global(g), masked, 8);
            b.store(I64, Operand::imm64(1), addr);
        });
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let e = &effects(&m).funcs[0];
        assert!(e.may_write.contains(&g.0), "masked gep store must attribute to the global");
        assert!(!e.must_write.contains(&g.0), "loop body does not dominate the return");
        assert!(!e.must_return, "looping function has no termination proof");
        assert!(!e.writes_unknown);
        assert!(e.reads_stack && e.writes_stack, "loop counter lives in an alloca");
    }

    #[test]
    fn call_effects_propagate() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(8), true);
        let mut cb = FunctionBuilder::new("callee", vec![I64], Some(I64));
        cb.store(I64, cb.param(0), Operand::Global(g));
        cb.ret(Some(cb.param(0)));
        let callee = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        let v = b.call(callee, Some(I64), vec![Operand::imm64(3)]).unwrap();
        b.ret(Some(v));
        m.add_func(b.finish());
        let e = &effects(&m).funcs[1];
        assert!(e.may_write.contains(&g.0));
        assert!(e.must_write.contains(&g.0), "dominating call site inherits callee must-writes");
        assert!(e.must_return);
    }

    #[test]
    fn unbounded_offset_is_unknown() {
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::Zero(64), true);
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let addr = b.gep(Operand::Global(g), b.param(0), 8);
        let v = b.load(I64, addr);
        b.ret(Some(v));
        m.add_func(b.finish());
        let e = &effects(&m).funcs[0];
        assert!(e.reads_unknown, "unbounded index can escape the global");
        assert!(!e.must_return);
    }

    #[test]
    fn division_kills_must_return_unless_nonzero() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![I64], Some(I64));
        let d = b.bin(BinOp::SDiv, I64, b.param(0), Operand::imm64(2));
        b.ret(Some(d));
        m.add_func(b.finish());
        let mut b2 = FunctionBuilder::new("g", vec![I64], Some(I64));
        let d2 = b2.bin(BinOp::SDiv, I64, Operand::imm64(1), b2.param(0));
        b2.ret(Some(d2));
        m.add_func(b2.finish());
        let e = effects(&m);
        assert!(e.funcs[0].must_return, "divisor 2 is provably non-zero");
        assert!(!e.funcs[1].must_return, "divisor is a parameter: may be zero");
    }

    #[test]
    fn per_site_intervals_refine_touched_bytes() {
        // Store to bytes [8, 15] and load bytes [0, 7] of a 16-byte global:
        // the site maps must separate the two slices, transitively through a
        // call.
        let mut m = Module::new("m");
        let g = m.add_global("buf", GlobalInit::Zero(16), true);
        let mut cb = FunctionBuilder::new("callee", vec![], Some(I64));
        let addr = cb.bin(BinOp::Add, I64, Operand::Global(g), Operand::imm64(8));
        cb.store(I64, Operand::imm64(1), addr);
        let v = cb.load(I64, Operand::Global(g));
        cb.ret(Some(v));
        let callee = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Some(I64));
        let r = b.call(callee, Some(I64), vec![]).unwrap();
        b.ret(Some(r));
        m.add_func(b.finish());
        for e in &effects(&m).funcs {
            let w = e.write_sites.get(&g.0).expect("write site recorded");
            assert_eq!((w.lo, w.hi), (8, 15), "{w:?}");
            let r = e.read_sites.get(&g.0).expect("read site recorded");
            assert_eq!((r.lo, r.hi), (0, 7), "{r:?}");
            assert!(e.cannot_write_range(g.0, 0, 7));
            assert!(!e.cannot_write_range(g.0, 8, 8));
            assert!(e.cannot_read_range(g.0, 8, 15));
        }
    }

    #[test]
    fn sixteen_bit_store_range_tracked() {
        let mut m = Module::new("m");
        let g = m.add_global("out", GlobalInit::Zero(2), true);
        let mut b = FunctionBuilder::new("f", vec![], Some(I64));
        let x = b.cast(
            CastKind::Trunc,
            citroen_ir::types::I16,
            Operand::ImmI(300, ScalarTy::I64),
        );
        b.store(citroen_ir::types::I16, x, Operand::Global(g));
        b.ret(Some(Operand::imm64(0)));
        m.add_func(b.finish());
        let e = &effects(&m).funcs[0];
        let r = e.stored.get(&g.0).unwrap();
        assert!(r.contains(300 % 65536) || !r.is_bottom());
    }
}
