//! One hand-built module per lint, exercised through the public crate API.
//!
//! The in-crate unit tests cover the minimal triggering shapes; these
//! integration tests build slightly richer modules (branches, loops, mixed
//! clean/dirty functions) and pin down the full `Diagnostic` surface — code,
//! severity, function attribution and `Display` rendering — the way the
//! `citroen-analyze --lint` front end consumes it.

use citroen_analyze::{filter_severity, lint_module, Severity};
use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{CmpOp, Operand};
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::I64;

fn find<'d>(
    diags: &'d [citroen_analyze::Diagnostic],
    code: &str,
) -> &'d citroen_analyze::Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no '{code}' diagnostic in {diags:?}"))
}

#[test]
fn dead_store_behind_a_branch() {
    // The store sits in only one arm of a branch; the slot is still never
    // read on any path, so the lint must fire.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("branchy", vec![I64], Some(I64));
    let slot = b.alloca(8);
    let c = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
    let (then_b, join) = (b.block(), b.block());
    b.cond_br(c, then_b, join);
    b.switch_to(then_b);
    b.store(I64, b.param(0), slot);
    b.br(join);
    b.switch_to(join);
    b.ret(Some(Operand::imm64(0)));
    m.add_func(b.finish());

    let diags = lint_module(&m);
    let d = find(&diags, "dead-store");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.func, "branchy");
    assert!(d.to_string().contains("warning[dead-store]"), "{d}");
}

#[test]
fn uninit_load_feeding_the_return() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("reader", vec![], Some(I64));
    let slot = b.alloca(8);
    let v = b.load(I64, slot);
    b.ret(Some(v));
    m.add_func(b.finish());

    let diags = lint_module(&m);
    let d = find(&diags, "uninit-load");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.func, "reader");
    // Warnings are filtered out by the --errors-only path.
    assert!(filter_severity(diags, Severity::Error).is_empty());
}

#[test]
fn const_oob_load_is_an_error() {
    // 8-byte load at byte offset 24 of a 16-byte global: provably out of
    // bounds on every execution, hence Error severity.
    let mut m = Module::new("m");
    let g = m.add_global("table", GlobalInit::Zero(16), true);
    let mut b = FunctionBuilder::new("oob", vec![], Some(I64));
    let addr = b.gep(Operand::Global(g), Operand::imm64(3), 8);
    let v = b.load(I64, addr);
    b.ret(Some(v));
    m.add_func(b.finish());

    let diags = lint_module(&m);
    let d = find(&diags, "oob-index");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.func, "oob");
    // Errors survive the strict filter.
    assert_eq!(filter_severity(diags, Severity::Error).len(), 1);
}

#[test]
fn unreachable_block_in_otherwise_clean_function() {
    // A realistic shape: a function with a genuine loop plus one orphaned
    // block. Only the orphan may be reported — nothing inside dead code, and
    // nothing about the healthy loop.
    let mut m = Module::new("m");
    let g = m.add_global("out", GlobalInit::Zero(8), true);
    let mut b = FunctionBuilder::new("orphaned", vec![I64], Some(I64));
    let n = b.param(0);
    counted_loop_mem(&mut b, n, |b, iv| {
        b.store(I64, iv, Operand::Global(g));
    });
    b.ret(Some(Operand::imm64(0)));
    let dead = b.block();
    b.switch_to(dead);
    // Even a dead store inside the dead block must stay unreported.
    let slot = b.alloca(8);
    b.store(I64, Operand::imm64(9), slot);
    b.ret(Some(Operand::imm64(1)));
    m.add_func(b.finish());

    let diags = lint_module(&m);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "unreachable-block");
    assert_eq!(diags[0].func, "orphaned");
}

#[test]
fn infinite_loop_with_internal_branching() {
    // Two blocks branching between each other with no edge out: an exit-free
    // SCC that the loop lint must flag exactly once (at the header).
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("spin", vec![I64], None);
    let hdr = b.block();
    b.br(hdr);
    b.switch_to(hdr);
    let c = b.cmp(CmpOp::Sgt, b.param(0), Operand::imm64(0));
    let body = b.block();
    b.cond_br(c, body, hdr);
    b.switch_to(body);
    b.br(hdr);
    m.add_func(b.finish());

    let diags = lint_module(&m);
    let d = find(&diags, "infinite-loop");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.func, "spin");
    assert_eq!(diags.iter().filter(|d| d.code == "infinite-loop").count(), 1);
}

#[test]
fn diagnostics_attribute_the_right_function_in_a_mixed_module() {
    // One clean function and one dirty one: every finding must name the
    // dirty function, none the clean one.
    let mut m = Module::new("m");
    let mut clean = FunctionBuilder::new("clean", vec![I64], Some(I64));
    clean.ret(Some(clean.param(0)));
    m.add_func(clean.finish());
    let mut dirty = FunctionBuilder::new("dirty", vec![I64], Some(I64));
    let slot = dirty.alloca(8);
    dirty.store(I64, dirty.param(0), slot);
    dirty.ret(Some(Operand::imm64(0)));
    m.add_func(dirty.finish());

    let diags = lint_module(&m);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.func == "dirty"), "{diags:?}");
}
