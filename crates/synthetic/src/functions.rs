//! The heavily-studied synthetic test functions of thesis Table 4.1, at any
//! dimensionality, with their standard search ranges and global minimum 0.

use citroen_bo::Bounds;

/// A named synthetic function with its standard bounds.
#[derive(Clone)]
pub struct SyntheticFn {
    /// Name (e.g. `Ackley100`).
    pub name: String,
    /// Search bounds.
    pub bounds: Bounds,
    /// The function (global minimum value 0).
    pub f: fn(&[f64]) -> f64,
}

fn ackley_f(x: &[f64]) -> f64 {
    let d = x.len() as f64;
    let s1 = x.iter().map(|v| v * v).sum::<f64>() / d;
    let s2 = x.iter().map(|v| (2.0 * std::f64::consts::PI * v).cos()).sum::<f64>() / d;
    -20.0 * (-0.2 * s1.sqrt()).exp() - s2.exp() + 20.0 + std::f64::consts::E
}

fn rosenbrock_f(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

fn rastrigin_f(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

fn griewank_f(x: &[f64]) -> f64 {
    let s: f64 = x.iter().map(|v| v * v).sum::<f64>() / 4000.0;
    let p: f64 =
        x.iter().enumerate().map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos()).product();
    s - p + 1.0
}

/// Ackley in `d` dimensions over `[-5, 10]^d` (Table 4.1).
pub fn ackley(d: usize) -> SyntheticFn {
    SyntheticFn { name: format!("Ackley{d}"), bounds: Bounds::cube(d, -5.0, 10.0), f: ackley_f }
}

/// Rosenbrock in `d` dimensions over `[-5, 10]^d`.
pub fn rosenbrock(d: usize) -> SyntheticFn {
    SyntheticFn {
        name: format!("Rosenbrock{d}"),
        bounds: Bounds::cube(d, -5.0, 10.0),
        f: rosenbrock_f,
    }
}

/// Rastrigin in `d` dimensions over `[-5.12, 5.12]^d`.
pub fn rastrigin(d: usize) -> SyntheticFn {
    SyntheticFn {
        name: format!("Rastrigin{d}"),
        bounds: Bounds::cube(d, -5.12, 5.12),
        f: rastrigin_f,
    }
}

/// Griewank in `d` dimensions over `[-10, 10]^d` (the restricted range of
/// Table 4.1, which keeps the problem multimodal at low dimensionality).
pub fn griewank(d: usize) -> SyntheticFn {
    SyntheticFn { name: format!("Griewank{d}"), bounds: Bounds::cube(d, -10.0, 10.0), f: griewank_f }
}

/// The standard benchmark set at a given dimensionality.
pub fn standard_set(d: usize) -> Vec<SyntheticFn> {
    vec![ackley(d), rosenbrock(d), rastrigin(d), griewank(d)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_minima_are_zero() {
        assert!((ackley_f(&[0.0; 10])).abs() < 1e-9);
        assert!((rosenbrock_f(&[1.0; 10])).abs() < 1e-9);
        assert!((rastrigin_f(&[0.0; 10])).abs() < 1e-9);
        assert!((griewank_f(&[0.0; 10])).abs() < 1e-9);
    }

    #[test]
    fn functions_are_positive_away_from_minimum() {
        for f in standard_set(20) {
            let x = vec![2.3; 20];
            assert!((f.f)(&x) > 0.1, "{} should be positive at 2.3", f.name);
            assert_eq!(f.bounds.dim(), 20);
        }
    }

    #[test]
    fn rastrigin_is_multimodal() {
        // local minimum near integer lattice away from 0
        let near_local = rastrigin_f(&[0.994, 0.994]);
        let barrier = rastrigin_f(&[0.5, 0.5]);
        assert!(near_local < barrier);
        assert!(near_local > 0.5); // but worse than the global
    }
}
