//! The compiler-flag-selection task of thesis §4.2.2: each flag
//! enables/disables one pass of the `-O3` pipeline (binary space, order
//! fixed), embedded into `[0,1]^d` with a 0.5 threshold so continuous BO can
//! operate directly — exactly the paper's reformulation.

use citroen_bo::Bounds;
use citroen_core::Task;
use citroen_passes::{o3_pipeline, PassId};

/// A flag-selection problem over a task's `-O3` pipeline.
pub struct FlagSelection {
    /// The fixed `-O3` pipeline being gated.
    pub pipeline: Vec<PassId>,
    /// Continuous search bounds (`[0,1]^d`).
    pub bounds: Bounds,
}

impl FlagSelection {
    /// Build from a task (uses its registry's `-O3` pipeline).
    pub fn new(task: &Task) -> FlagSelection {
        let pipeline = o3_pipeline(&task.registry);
        let bounds = Bounds::cube(pipeline.len(), 0.0, 1.0);
        FlagSelection { pipeline, bounds }
    }

    /// Threshold a continuous point into the enabled-pass subsequence
    /// (values ≥ 0.5 enable the corresponding pipeline slot).
    pub fn decode(&self, x: &[f64]) -> Vec<PassId> {
        self.pipeline
            .iter()
            .zip(x)
            .filter(|(_, v)| **v >= 0.5)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Evaluate one flag configuration: compile the gated pipeline and
    /// measure the binary. Returns runtime seconds (minimised).
    pub fn evaluate(&self, task: &mut Task, x: &[f64]) -> f64 {
        let seq = self.decode(x);
        match task.measure_seq(&seq) {
            Ok(t) => t,
            // Should not happen (passes are verified); worst-case penalty.
            Err(_) => task.o0_seconds * 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_core::TaskConfig;
    use citroen_passes::Registry;
    use citroen_sim::Platform;

    #[test]
    fn decode_thresholds() {
        let task = Task::new(
            citroen_suite::kernels::telecom_crc32(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig::default(),
        );
        let fs = FlagSelection::new(&task);
        let d = fs.bounds.dim();
        assert!(d >= 40, "O3 pipeline should give a wide flag space, got {d}");
        let all_on = fs.decode(&vec![1.0; d]);
        assert_eq!(all_on.len(), d);
        let all_off = fs.decode(&vec![0.0; d]);
        assert!(all_off.is_empty());
        let half = fs.decode(&(0..d).map(|i| if i % 2 == 0 { 0.9 } else { 0.1 }).collect::<Vec<_>>());
        assert_eq!(half.len(), d.div_ceil(2));
    }

    #[test]
    fn all_flags_on_equals_o3() {
        let mut task = Task::new(
            citroen_suite::kernels::telecom_crc32(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig::default(),
        );
        let fs = FlagSelection::new(&task);
        let d = fs.bounds.dim();
        let t_on = fs.evaluate(&mut task, &vec![1.0; d]);
        assert!((t_on / task.o3_seconds - 1.0).abs() < 0.05);
        // All-off ≈ O0 (slower).
        let t_off = fs.evaluate(&mut task, &vec![0.0; d]);
        assert!(t_off > t_on);
    }
}
