//! Stand-ins for Chapter 4's real-world tasks (Table 4.1). Each preserves the
//! original's dimensionality and qualitative landscape; see DESIGN.md §1.
//! All tasks are phrased as *minimisation* (negated reward where needed).

use citroen_bo::Bounds;

/// A real-world-style task.
pub struct RealWorldTask {
    /// Task name.
    pub name: String,
    /// Search bounds.
    pub bounds: Bounds,
    /// Objective (minimised).
    pub f: Box<dyn Fn(&[f64]) -> f64 + Sync + Send>,
}

/// Rover trajectory planning (60-D, `[0,1]^60`): 30 waypoints in the unit
/// square define a piecewise-linear path from start (0.05,0.05) to goal
/// (0.95,0.95); cost integrates a field of Gaussian obstacles along the path
/// plus start/goal misses. Mirrors Wang et al.'s rover task structure.
pub fn rover_trajectory() -> RealWorldTask {
    // Fixed obstacle field (deterministic).
    let obstacles: Vec<(f64, f64, f64)> = vec![
        (0.3, 0.3, 0.10),
        (0.5, 0.45, 0.09),
        (0.7, 0.6, 0.11),
        (0.4, 0.7, 0.08),
        (0.6, 0.2, 0.08),
        (0.2, 0.55, 0.07),
        (0.8, 0.85, 0.07),
        (0.55, 0.8, 0.08),
    ];
    let cost_at = move |x: f64, y: f64| -> f64 {
        obstacles
            .iter()
            .map(|&(ox, oy, r)| {
                let d2 = (x - ox) * (x - ox) + (y - oy) * (y - oy);
                (-d2 / (2.0 * r * r)).exp()
            })
            .sum::<f64>()
    };
    let f = move |w: &[f64]| -> f64 {
        // Waypoints: start, 30 control points, goal.
        let mut pts = vec![(0.05, 0.05)];
        for c in w.chunks(2) {
            pts.push((c[0], c[1]));
        }
        pts.push((0.95, 0.95));
        let mut cost = 0.0;
        let mut length = 0.0;
        for seg in pts.windows(2) {
            let (x0, y0) = seg[0];
            let (x1, y1) = seg[1];
            let steps = 8;
            for s in 0..steps {
                let t = (s as f64 + 0.5) / steps as f64;
                let (x, y) = (x0 + t * (x1 - x0), y0 + t * (y1 - y0));
                cost += cost_at(x, y) / steps as f64;
            }
            length += ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        }
        // Reward in the original peaks at 5; we minimise cost + length penalty.
        cost + 0.5 * length
    };
    RealWorldTask { name: "Rover60".into(), bounds: Bounds::cube(60, 0.0, 1.0), f: Box::new(f) }
}

/// Robot pushing (14-D): two hands, each parameterised by start position (2),
/// push direction (2), push distance (1), contact radius (1) and a spin
/// nuisance dimension (1). Objects at fixed spots must reach fixed goals; the
/// sparse-ish reward structure (nothing happens unless a push line passes
/// near an object) mirrors the original task's difficulty.
pub fn robot_push() -> RealWorldTask {
    let objects = [(0.3f64, 0.4f64), (0.7f64, 0.6f64)];
    let goals = [(0.8f64, 0.2f64), (0.2f64, 0.85f64)];
    let f = move |w: &[f64]| -> f64 {
        let mut pos = objects;
        for h in 0..2 {
            let base = h * 7;
            let (sx, sy) = (w[base], w[base + 1]);
            let (mut dx, mut dy) = (w[base + 2] - 0.5, w[base + 3] - 0.5);
            let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
            dx /= norm;
            dy /= norm;
            let dist = w[base + 4];
            let radius = 0.05 + 0.1 * w[base + 5];
            // w[base+6] is a nuisance (spin) dimension.
            for obj in pos.iter_mut() {
                // Closest approach of the push segment to the object.
                let rel = (obj.0 - sx, obj.1 - sy);
                let along = (rel.0 * dx + rel.1 * dy).clamp(0.0, dist);
                let (cx, cy) = (sx + along * dx, sy + along * dy);
                let d = ((obj.0 - cx).powi(2) + (obj.1 - cy).powi(2)).sqrt();
                if d < radius {
                    // The object is carried to the end of the push.
                    let carry = (dist - along).max(0.0);
                    obj.0 = (obj.0 + dx * carry).clamp(0.0, 1.0);
                    obj.1 = (obj.1 + dy * carry).clamp(0.0, 1.0);
                }
            }
        }
        pos.iter()
            .zip(goals.iter())
            .map(|(p, g)| ((p.0 - g.0).powi(2) + (p.1 - g.1).powi(2)).sqrt())
            .sum()
    };
    RealWorldTask { name: "RobotPush14".into(), bounds: Bounds::cube(14, 0.0, 1.0), f: Box::new(f) }
}

/// Lasso-DNA stand-in (180-D): weighted-Lasso penalty tuning on a synthetic,
/// highly correlated "DNA-like" binary design matrix. The objective runs a
/// fixed number of coordinate-descent sweeps and reports validation MSE, so
/// the parameter space is structured and correlated as in the original.
pub fn lasso_dna() -> RealWorldTask {
    const P: usize = 180;
    const N: usize = 80;
    // Deterministic correlated binary design matrix.
    let mut x = vec![[0f64; P]; N];
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for row in x.iter_mut() {
        let mut prev = 0.0;
        for v in row.iter_mut() {
            // Markov structure: adjacent loci correlate (linkage).
            let p = if prev > 0.5 { 0.75 } else { 0.25 };
            *v = if rnd() < p { 1.0 } else { 0.0 };
            prev = *v;
        }
    }
    // Sparse ground-truth effect.
    let mut beta = [0f64; P];
    for k in 0..10 {
        beta[k * 17 % P] = if k % 2 == 0 { 1.0 } else { -0.8 };
    }
    let y: Vec<f64> = x
        .iter()
        .map(|row| row.iter().zip(beta.iter()).map(|(a, b)| a * b).sum::<f64>())
        .collect();
    let split = N * 3 / 4;

    let f = move |w: &[f64]| -> f64 {
        // w are per-feature penalty weights in [0,1] → λ_j ∈ [0.001, 1].
        let lambda: Vec<f64> = w.iter().map(|v| 0.001 + v.clamp(0.0, 1.0)).collect();
        let mut theta = vec![0f64; P];
        // Precomputed column norms over the training split.
        for _ in 0..12 {
            for j in 0..P {
                let mut num = 0.0;
                let mut den = 0.0;
                for i in 0..split {
                    let pred_others: f64 = x[i]
                        .iter()
                        .zip(theta.iter())
                        .enumerate()
                        .filter(|(k, _)| *k != j)
                        .map(|(_, (a, t))| a * t)
                        .sum();
                    let r = y[i] - pred_others;
                    num += x[i][j] * r;
                    den += x[i][j] * x[i][j];
                }
                let den = den.max(1e-9);
                let raw = num / den;
                let thr = lambda[j] / den * split as f64 * 0.05;
                theta[j] = raw.signum() * (raw.abs() - thr).max(0.0);
            }
        }
        // Validation MSE.
        let mut mse = 0.0;
        for i in split..N {
            let pred: f64 = x[i].iter().zip(theta.iter()).map(|(a, t)| a * t).sum();
            mse += (y[i] - pred) * (y[i] - pred);
        }
        mse / (N - split) as f64
    };
    RealWorldTask { name: "LassoDNA180".into(), bounds: Bounds::cube(P, 0.0, 1.0), f: Box::new(f) }
}

/// HalfCheetah-like stand-in (102-D): a linear policy `a = W s` controlling a
/// chain of 6 masses connected by springs on a line; reward is forward
/// progress minus control cost over 120 simulated steps. Like the MuJoCo
/// task, the objective is a non-convex, high-dimensional policy search with
/// strongly coupled parameters.
pub fn cheetah_like() -> RealWorldTask {
    const BODIES: usize = 6;
    const SDIM: usize = 17; // 6 pos + 6 vel + 4 phase features + bias
    const ADIM: usize = 6;
    let f = move |w: &[f64]| -> f64 {
        // W is ADIM × SDIM = 102.
        let mut pos = [0f64; BODIES];
        let mut vel = [0f64; BODIES];
        for (i, p) in pos.iter_mut().enumerate() {
            *p = i as f64 * 0.5;
        }
        let mut reward = 0.0;
        let dt = 0.05;
        for step in 0..120 {
            let t = step as f64 * dt;
            // State features.
            let mut s = [0f64; SDIM];
            for i in 0..BODIES {
                s[i] = pos[i] - pos[0] - i as f64 * 0.5; // relative extension
                s[BODIES + i] = vel[i];
            }
            s[12] = (3.0 * t).sin();
            s[13] = (3.0 * t).cos();
            s[14] = (7.0 * t).sin();
            s[15] = (7.0 * t).cos();
            s[16] = 1.0;
            // Actions: forces on each body.
            let mut act = [0f64; ADIM];
            for (a, arow) in act.iter_mut().enumerate() {
                let mut sum = 0.0;
                for (k, sv) in s.iter().enumerate() {
                    sum += w[a * SDIM + k] * sv;
                }
                *arow = sum.tanh();
            }
            // Physics: springs between neighbours + ground friction that only
            // resists backward motion (so coordinated waves move forward).
            let mut force = [0f64; BODIES];
            for i in 0..BODIES - 1 {
                let ext = pos[i + 1] - pos[i] - 0.5;
                let k = 8.0;
                force[i] += k * ext;
                force[i + 1] -= k * ext;
            }
            for i in 0..BODIES {
                force[i] += act[i] * 2.0;
                // Anisotropic friction.
                let fr = if vel[i] < 0.0 { 3.0 } else { 0.4 };
                force[i] -= fr * vel[i];
            }
            for i in 0..BODIES {
                vel[i] += dt * force[i];
                pos[i] += dt * vel[i];
            }
            let ctrl_cost: f64 = act.iter().map(|a| a * a).sum::<f64>() * 0.01;
            reward += vel.iter().sum::<f64>() / BODIES as f64 * dt - ctrl_cost;
        }
        -reward // minimise
    };
    RealWorldTask {
        name: "Cheetah102".into(),
        bounds: Bounds::cube(102, -1.0, 1.0),
        f: Box::new(f),
    }
}

/// The four real-world-style tasks.
pub fn all_tasks() -> Vec<RealWorldTask> {
    vec![robot_push(), rover_trajectory(), cheetah_like(), lasso_dna()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_rt::rng::StdRng;
    use citroen_rt::rng::{Rng, SeedableRng};

    #[test]
    fn tasks_have_expected_dims() {
        let t = all_tasks();
        assert_eq!(t[0].bounds.dim(), 14);
        assert_eq!(t[1].bounds.dim(), 60);
        assert_eq!(t[2].bounds.dim(), 102);
        assert_eq!(t[3].bounds.dim(), 180);
    }

    #[test]
    fn objectives_are_deterministic_and_vary() {
        // Seed chosen for the in-tree rng stream: RobotPush14's objective is
        // constant on "miss" configurations, so the probe points must not
        // both land on that plateau.
        let mut rng = StdRng::seed_from_u64(2);
        for t in all_tasks() {
            let d = t.bounds.dim();
            let x1: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let p1 = t.bounds.from_unit(&x1);
            let a = (t.f)(&p1);
            let b = (t.f)(&p1);
            assert_eq!(a, b, "{} must be deterministic", t.name);
            let x2: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let c = (t.f)(&t.bounds.from_unit(&x2));
            assert_ne!(a, c, "{} must vary with input", t.name);
        }
    }

    #[test]
    fn push_rewards_hitting_objects() {
        let t = robot_push();
        // A miss: hands parked in corners pushing nowhere.
        let miss = vec![0.0; 14];
        let f_miss = (t.f)(&miss);
        // A decent push: hand 0 starts left of object 0, pushes toward goal 0.
        let mut hit = vec![0.0; 14];
        hit[0] = 0.15; // sx
        hit[1] = 0.47; // sy
        hit[2] = 0.9; // dx (→ right)
        hit[3] = 0.37; // dy (↓ slightly)
        hit[4] = 0.6; // distance
        hit[5] = 0.5; // radius
        let f_hit = (t.f)(&hit);
        assert!(f_hit < f_miss, "hit {f_hit} should beat miss {f_miss}");
    }

    #[test]
    fn cheetah_rewards_movement() {
        let t = cheetah_like();
        let idle = vec![0.0; 102];
        let f_idle = (t.f)(&idle);
        // Some sinusoid-coupled policy should do better than idle for at
        // least one of a few probes.
        let mut best = f64::INFINITY;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let w: Vec<f64> = (0..102).map(|_| rng.gen_range(-0.5..0.5)).collect();
            best = best.min((t.f)(&w));
        }
        assert!(best < f_idle, "some random policy should beat idle ({best} vs {f_idle})");
    }
}
