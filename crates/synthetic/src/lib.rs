//! # citroen-synthetic
//!
//! Chapter 4's benchmark problems: the four synthetic functions (Table 4.1)
//! at any dimensionality, stand-ins for the real-world tasks (rover
//! trajectory planning, robot pushing, Lasso-DNA, a HalfCheetah-like linear
//! policy control task — see DESIGN.md §1 for the substitution rationale),
//! and the compiler-flag-selection task of §4.2.2.

#![warn(missing_docs)]

pub mod flags;
pub mod functions;
pub mod realworld;

pub use flags::FlagSelection;
pub use functions::{ackley, griewank, rastrigin, rosenbrock, SyntheticFn};
pub use realworld::{all_tasks, cheetah_like, lasso_dna, robot_push, rover_trajectory, RealWorldTask};
