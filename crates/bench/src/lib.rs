//! # citroen-bench
//!
//! The experiment harness: one runner per paper table and figure (see
//! DESIGN.md §3 for the index). The `experiments` binary dispatches on the
//! experiment id; every runner prints markdown rows and writes a CSV under
//! `results/`.

#![warn(missing_docs)]

pub mod ch4;
pub mod ch5;

use std::fs;
use std::path::PathBuf;

/// Global experiment options (shared CLI flags).
#[derive(Debug, Clone)]
pub struct ExpCfg {
    /// Repetitions (random seeds) per configuration.
    pub reps: u64,
    /// Measurement/evaluation budget.
    pub budget: usize,
    /// Pass-sequence length for phase-ordering tasks.
    pub seq_len: usize,
    /// Include the second platform / large dimensionalities.
    pub full: bool,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Stream one JSONL telemetry trace per benchmark×tuner×seed cell into
    /// this directory (`fig5_6` only). Forces sequential cell execution:
    /// the telemetry sink is process-global, so parallel cells would
    /// interleave into one stream.
    pub trace_dir: Option<PathBuf>,
    /// Restrict benchmark-grid experiments to these benchmark names
    /// (`--benchmarks a,b,c`); `None` = the full suite.
    pub benchmarks: Option<Vec<String>>,
}

impl Default for ExpCfg {
    fn default() -> ExpCfg {
        ExpCfg {
            reps: 3,
            budget: 60,
            seq_len: 24,
            full: false,
            out_dir: PathBuf::from("results"),
            trace_dir: None,
            benchmarks: None,
        }
    }
}

impl ExpCfg {
    /// Parse `--reps N --budget N --seq-len N --full` style flags.
    pub fn from_args(args: &[String]) -> ExpCfg {
        let mut cfg = ExpCfg::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" => {
                    cfg.reps = args[i + 1].parse().expect("--reps N");
                    i += 1;
                }
                "--budget" => {
                    cfg.budget = args[i + 1].parse().expect("--budget N");
                    i += 1;
                }
                "--seq-len" => {
                    cfg.seq_len = args[i + 1].parse().expect("--seq-len N");
                    i += 1;
                }
                "--full" => cfg.full = true,
                "--out" => {
                    cfg.out_dir = PathBuf::from(&args[i + 1]);
                    i += 1;
                }
                "--trace-dir" => {
                    cfg.trace_dir = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--benchmarks" => {
                    cfg.benchmarks = Some(
                        args[i + 1].split(',').map(|s| s.trim().to_string()).collect(),
                    );
                    i += 1;
                }
                other => panic!("unknown flag '{other}'"),
            }
            i += 1;
        }
        cfg
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Geometric mean (for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple experiment report: markdown printing + CSV persistence.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// New report with column headers.
    pub fn new(name: &str, headers: &[&str]) -> Report {
        Report {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Read-only access to the accumulated rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print as a markdown table and write `<out>/<name>.csv`.
    pub fn finish(&self, cfg: &ExpCfg) {
        println!("\n### {}\n", self.name);
        println!("| {} |", self.headers.join(" | "));
        println!("|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for r in &self.rows {
            println!("| {} |", r.join(" | "));
        }
        let _ = fs::create_dir_all(&cfg.out_dir);
        let path = cfg.out_dir.join(format!("{}.csv", self.name));
        let mut csv = self.headers.join(",") + "\n";
        for r in &self.rows {
            csv += &r.join(",");
            csv += "\n";
        }
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\n[written {}]", path.display());
        }
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(std_dev(&[1.0, 1.0, 1.0]) < 1e-12);
        assert!(std_dev(&[1.0, 3.0]) > 1.0);
    }

    #[test]
    fn args_parse() {
        let cfg = ExpCfg::from_args(&[
            "--reps".into(),
            "5".into(),
            "--budget".into(),
            "99".into(),
            "--full".into(),
        ]);
        assert_eq!(cfg.reps, 5);
        assert_eq!(cfg.budget, 99);
        assert!(cfg.full);
        assert_eq!(cfg.trace_dir, None);
        assert_eq!(cfg.benchmarks, None);
    }

    #[test]
    fn trace_flags_parse() {
        let cfg = ExpCfg::from_args(&[
            "--trace-dir".into(),
            "traces".into(),
            "--benchmarks".into(),
            "telecom_gsm, telecom_crc32".into(),
        ]);
        assert_eq!(cfg.trace_dir, Some(PathBuf::from("traces")));
        assert_eq!(
            cfg.benchmarks,
            Some(vec!["telecom_gsm".to_string(), "telecom_crc32".to_string()])
        );
    }
}
