//! Chapter 5 (IPDPS paper) experiment runners: Tables 5.1–5.5, Figures
//! 5.1 and 5.6–5.12, plus the adaptive multi-module allocation study.

use crate::{f3, f4, geomean, mean, std_dev, ExpCfg, Report};
use citroen_core::{
    run_citroen, run_multimodule, Allocation, CitroenConfig, MultiModuleConfig, Task, TaskConfig,
};
use citroen_ir::interp::run_counting;
use citroen_passes::{o3_pipeline, PassManager, Registry};
use citroen_sim::Platform;
use citroen_suite::Benchmark;
use citroen_telemetry as telemetry;
use citroen_tuners::{ablation, baselines, CitroenTuner, SeqTuner};
use citroen_rt::par::IntoParIter;

/// Construct a fresh benchmark by name.
fn bench_by_name(name: &str) -> Benchmark {
    citroen_suite::all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

fn make_task(name: &str, platform: &Platform, cfg: &ExpCfg, seed: u64) -> Task {
    make_task_with_registry(name, platform, cfg, seed, Registry::full())
}

fn make_task_with_registry(
    name: &str,
    platform: &Platform,
    cfg: &ExpCfg,
    seed: u64,
    registry: Registry,
) -> Task {
    Task::new(
        bench_by_name(name),
        registry,
        platform.clone(),
        TaskConfig { seq_len: cfg.seq_len, seed, ..Default::default() },
    )
}

fn platforms(cfg: &ExpCfg) -> Vec<Platform> {
    if cfg.full {
        vec![Platform::tx2(), Platform::amd()]
    } else {
        vec![Platform::tx2()]
    }
}

fn cbench_names() -> Vec<&'static str> {
    citroen_suite::cbench().iter().map(|b| b.name).collect()
}

fn spec_names() -> Vec<&'static str> {
    citroen_suite::spec().iter().map(|b| b.name).collect()
}

/// A focused subset for the ablation-style studies.
fn cbench_subset() -> Vec<&'static str> {
    vec!["telecom_gsm", "telecom_crc32", "automotive_bitcount", "consumer_jpeg_dct", "network_dijkstra"]
}

// ---------------------------------------------------------------------------
// Fig 5.1 + Table 5.1 — the motivating example
// ---------------------------------------------------------------------------

/// Fig. 5.1: the `mem2reg`/`instcombine`/`slp-vectorizer` ordering flips
/// whether the GSM kernel vectorises.
pub fn fig5_1(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig5_1_phase_order_matters",
        &["sequence", "SLP.NumVectorInstructions", "dyn ops", "vectorised?"],
    );
    let bench = bench_by_name("telecom_gsm");
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    for seq in [
        "mem2reg,loop-rotate,loop-unroll,instsimplify,slp-vectorizer",
        "mem2reg,loop-rotate,loop-unroll,instsimplify,instcombine,slp-vectorizer",
    ] {
        let res = pm.compile_named(&bench.modules[0], seq).unwrap();
        let linked = bench.link_with(Some(std::slice::from_ref(&res.module)));
        let entry = bench.entry_in(&linked);
        let (out, _) = run_counting(&linked, entry, &bench.args).unwrap();
        let nvi = res.stats.get("slp", "NumVectorInstructions");
        rep.row(vec![
            seq.to_string(),
            nvi.to_string(),
            out.steps.to_string(),
            if nvi > 0 { "yes".into() } else { "no".into() },
        ]);
    }
    rep.finish(cfg);
}

/// Table 5.1: pass-related compilation statistics vs speedup for five
/// sequences on the GSM kernel.
pub fn tab5_1(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "tab5_1_stats_vs_speedup",
        &["sequence", "SLP.NVI", "mem2reg.NPI", "mem2reg.NP", "instcombine.NC", "speedup_vs_O3"],
    );
    let platform = Platform::tx2();
    let mut task = make_task("telecom_gsm", &platform, cfg, 0);
    let base = "mem2reg,loop-rotate,loop-unroll,instsimplify";
    let seqs = [
        format!("{base},slp-vectorizer"),
        format!("slp-vectorizer,{base}"),
        format!("instcombine,{base},slp-vectorizer"),
        format!("{base},instcombine,slp-vectorizer"),
        format!("{base},slp-vectorizer,instcombine"),
    ];
    for s in &seqs {
        let seq = task.registry.parse_seq(s).unwrap();
        let hot = task.hot();
        let (stats, _, module) = task.compile_hot(hot, &seq);
        let (linked, fp) = task.assemble(&[(hot, &module)]);
        let t = task.measure_linked(&linked, fp).unwrap();
        rep.row(vec![
            s.clone(),
            stats.get("slp", "NumVectorInstructions").to_string(),
            stats.get("mem2reg", "NumPHIInsert").to_string(),
            stats.get("mem2reg", "NumPromoted").to_string(),
            stats.get("instcombine", "NumCombined").to_string(),
            f3(task.speedup(t)),
        ]);
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Tables 5.2–5.5
// ---------------------------------------------------------------------------

/// Table 5.2: the coverage issue — fraction of generated candidates whose
/// statistics/binaries duplicate already-observed points, and the effect of
/// the coverage-aware filter on final speedup.
pub fn tab5_2(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "tab5_2_coverage_issue",
        &["benchmark", "dup_fraction", "speedup_filtered", "speedup_unfiltered"],
    );
    let platform = Platform::tx2();
    for name in cbench_subset() {
        let rows: Vec<(f64, f64, f64)> = (0..cfg.reps)
            .into_par_iter()
            .map(|seed| {
                let mut t1 = make_task(name, &platform, cfg, seed);
                let c1 = CitroenConfig { seed, ..Default::default() };
                let (tr1, _) = run_citroen(&mut t1, cfg.budget, &c1);
                let dup = tr1.coverage_dropped as f64
                    / tr1.candidates_generated.max(1) as f64;
                let s1 = t1.speedup(tr1.best());
                let mut t2 = make_task(name, &platform, cfg, seed);
                // Without coverage handling, duplicated binaries genuinely
                // cost budget (no dedup machinery).
                t2.charge_cached = true;
                let c2 = CitroenConfig { seed, coverage_filter: false, ..Default::default() };
                let (tr2, _) = run_citroen(&mut t2, cfg.budget, &c2);
                let s2 = t2.speedup(tr2.best());
                (dup, s1, s2)
            })
            .collect();
        rep.row(vec![
            name.to_string(),
            f3(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f3(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f3(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
        ]);
    }
    rep.finish(cfg);
}

/// Table 5.3: the pass universe.
pub fn tab5_3(cfg: &ExpCfg) {
    let mut rep = Report::new("tab5_3_pass_registry", &["id", "pass", "in LLVM10 subset?"]);
    let full = Registry::full();
    let old = Registry::llvm10();
    for id in full.ids() {
        let name = full.name(id);
        rep.row(vec![
            id.0.to_string(),
            name.to_string(),
            if old.by_name(name).is_some() { "yes".into() } else { "no".into() },
        ]);
    }
    println!(
        "registry: {} passes; sequence length {} → search space ≈ {} ^ {}",
        full.len(),
        cfg.seq_len,
        full.len(),
        cfg.seq_len
    );
    rep.finish(cfg);
}

/// Table 5.4: the benchmark suites.
pub fn tab5_4(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "tab5_4_benchmarks",
        &["benchmark", "suite", "modules", "functions", "IR insts", "dyn ops (O0)"],
    );
    for b in citroen_suite::all_benchmarks() {
        let linked = b.link();
        let entry = b.entry_in(&linked);
        let (out, _) = run_counting(&linked, entry, &b.args).unwrap();
        rep.row(vec![
            b.name.to_string(),
            format!("{:?}", b.suite),
            b.modules.len().to_string(),
            linked.funcs.len().to_string(),
            linked.num_insts().to_string(),
            out.steps.to_string(),
        ]);
    }
    rep.finish(cfg);
}

/// Table 5.5: top-5 most impactful compilation statistics per benchmark,
/// via the fitted cost model's ARD length-scales.
pub fn tab5_5(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "tab5_5_impactful_stats",
        &["benchmark", "rank", "statistic", "ARD lengthscale"],
    );
    let platform = Platform::tx2();
    for name in cbench_subset() {
        let mut task = make_task(name, &platform, cfg, 7);
        let c = CitroenConfig { seed: 7, ..Default::default() };
        let (_, report) = run_citroen(&mut task, cfg.budget, &c);
        for (rank, (stat, ls)) in report.ranked.iter().take(5).enumerate() {
            rep.row(vec![name.to_string(), (rank + 1).to_string(), stat.clone(), f4(*ls)]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 5.6 / 5.7 — main comparison + budget sweep
// ---------------------------------------------------------------------------

fn all_tuners(seed: u64) -> Vec<Box<dyn SeqTuner>> {
    let mut v: Vec<Box<dyn SeqTuner>> =
        vec![Box::new(CitroenTuner { seed, cfg: None })];
    v.extend(baselines(seed));
    v
}

/// Fig. 5.6 + Fig. 5.7: tuner comparison across the suites, reported at
/// budget checkpoints (the full-budget column is Fig. 5.6; the sweep across
/// checkpoints is Fig. 5.7).
pub fn fig5_6_7(cfg: &ExpCfg) {
    let checkpoints: Vec<usize> =
        vec![cfg.budget / 4, cfg.budget / 2, (3 * cfg.budget) / 4, cfg.budget]
            .into_iter()
            .filter(|c| *c > 0)
            .collect();
    let mut headers = vec!["platform".to_string(), "benchmark".to_string(), "tuner".to_string()];
    for c in &checkpoints {
        headers.push(format!("speedup@{c}"));
    }
    headers.push("sd@final".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("fig5_6_7_tuner_comparison", &hdr_refs);

    let names: Vec<&str> = {
        let mut v = cbench_names();
        v.extend(spec_names());
        if let Some(filter) = &cfg.benchmarks {
            for want in filter {
                assert!(v.contains(&want.as_str()), "--benchmarks: unknown benchmark '{want}'");
            }
            v.retain(|n| filter.iter().any(|w| w == n));
        }
        v
    };
    let tuner_names: Vec<&'static str> =
        all_tuners(0).iter().map(|t| t.name()).collect();

    for platform in platforms(cfg) {
        // Flatten (benchmark × seed × tuner) into independent jobs. Each
        // job reports its convergence curve plus the task's budget
        // accounting (measurements, compilations) for live progress lines.
        let ntuners = tuner_names.len();
        let jobs: Vec<(usize, u64, usize)> = names
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| {
                (0..cfg.reps)
                    .flat_map(move |seed| (0..ntuners).map(move |ti| (bi, seed, ti)))
            })
            .collect();
        let run_job = |(bi, seed, ti): (usize, u64, usize)| {
            let tuner = &all_tuners(seed)[ti];
            let mut task = make_task(names[bi], &platform, cfg, seed);
            let trace = tuner.run(&mut task, cfg.budget);
            eprintln!(
                "[fig5_6] {} / {} / seed {} done (best {:.3}x)",
                names[bi],
                tuner.name(),
                seed,
                task.speedup(trace.best())
            );
            let curve: Vec<f64> =
                checkpoints.iter().map(|&c| task.speedup(trace.best_at(c))).collect();
            (((bi, seed, ti), curve), task.measurements, task.compilations)
        };
        let results: Vec<((usize, u64, usize), Vec<f64>)> = match &cfg.trace_dir {
            // Traced mode: one JSONL stream per cell, cells sequential (the
            // telemetry sink is process-global).
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("--trace-dir {}: {e}", dir.display()));
                jobs.into_iter()
                    .map(|job| {
                        let (bi, seed, ti) = job;
                        let cell = cell_name(&platform.model.name, names[bi], tuner_names[ti], seed);
                        let path = dir.join(format!("{cell}.jsonl"));
                        telemetry::install(Box::new(
                            telemetry::StreamSink::create(&path).unwrap_or_else(|e| {
                                panic!("cannot stream to {}: {e}", path.display())
                            }),
                        ));
                        eprintln!("[trace] {cell}: streaming to {}", path.display());
                        let t0 = std::time::Instant::now();
                        let (res, meas, compiles) = run_job(job);
                        drop(telemetry::disable()); // join writer, flush file
                        eprintln!(
                            "[trace] {cell}: best {:.3}x, {meas}/{} budget, \
                             {compiles} compiles, {:.1}s",
                            res.1.last().copied().unwrap_or(f64::NAN),
                            cfg.budget,
                            t0.elapsed().as_secs_f64()
                        );
                        res
                    })
                    .collect()
            }
            None => jobs.into_par_iter().map(|job| run_job(job).0).collect(),
        };
        for (bi, name) in names.iter().enumerate() {
            for (ti, tname) in tuner_names.iter().enumerate() {
                let mut row =
                    vec![platform.model.name.to_string(), name.to_string(), tname.to_string()];
                for (ci, _) in checkpoints.iter().enumerate() {
                    let vals: Vec<f64> = results
                        .iter()
                        .filter(|((b, _, t), _)| *b == bi && *t == ti)
                        .map(|(_, curve)| curve[ci])
                        .collect();
                    row.push(f3(mean(&vals)));
                }
                let finals: Vec<f64> = results
                    .iter()
                    .filter(|((b, _, t), _)| *b == bi && *t == ti)
                    .map(|(_, curve)| curve[checkpoints.len() - 1])
                    .collect();
                row.push(f3(std_dev(&finals)));
                rep.row(row);
            }
        }
        // Suite geomeans at the final checkpoint.
        for (suite, snames) in [("cBench", cbench_names()), ("SPEC", spec_names())] {
            for (ti, tname) in tuner_names.iter().enumerate() {
                let mut finals = Vec::new();
                for name in &snames {
                    // Recompute cheaply from the CSV rows we just built.
                    for r in rep_rows(&rep, &platform.model.name, name, tname) {
                        finals.push(r);
                    }
                }
                let _ = ti;
                if !finals.is_empty() {
                    rep.row(vec![
                        platform.model.name.to_string(),
                        format!("GEOMEAN({suite})"),
                        tname.to_string(),
                        String::new(),
                        String::new(),
                        String::new(),
                        f3(geomean(&finals)),
                        String::new(),
                    ]);
                }
            }
        }
    }
    rep.finish(cfg);
}

/// File-system-safe trace-file stem for one benchmark×tuner×seed cell.
fn cell_name(platform: &str, bench: &str, tuner: &str, seed: u64) -> String {
    format!("{platform}_{bench}_{tuner}_s{seed}")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '-' })
        .collect()
}

// Pull final-checkpoint speedups back out of the report rows (keeps the
// geomean consistent with what was printed).
fn rep_rows(rep: &Report, platform: &str, bench: &str, tuner: &str) -> Vec<f64> {
    rep.rows()
        .iter()
        .filter(|r| r[0] == platform && r[1] == bench && r[2] == tuner)
        .filter_map(|r| r[r.len() - 2].parse::<f64>().ok())
        .collect()
}

// ---------------------------------------------------------------------------
// Fig 5.8 — ablation study
// ---------------------------------------------------------------------------

/// Fig. 5.8: CITROEN vs its ablations (no statistics features, no DES
/// generator, no coverage filter).
pub fn fig5_8(cfg: &ExpCfg) {
    let mut rep =
        Report::new("fig5_8_ablation", &["benchmark", "variant", "speedup", "sd"]);
    let platform = Platform::tx2();
    for name in cbench_subset() {
        for variant in ["full", "no-stats", "no-des", "no-coverage"] {
            let speedups: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut task = make_task(name, &platform, cfg, seed);
                    if variant == "no-coverage" {
                        task.charge_cached = true;
                    }
                    let c = ablation(variant, seed);
                    let (trace, _) = run_citroen(&mut task, cfg.budget, &c);
                    task.speedup(trace.best())
                })
                .collect();
            rep.row(vec![
                name.to_string(),
                variant.to_string(),
                f3(mean(&speedups)),
                f3(std_dev(&speedups)),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 5.9 / 5.10 — alternative features, LLVM10 registry
// ---------------------------------------------------------------------------

/// Fig. 5.9: compilation statistics vs Autophase features vs raw sequences.
pub fn fig5_9(cfg: &ExpCfg) {
    let mut rep =
        Report::new("fig5_9_feature_comparison", &["benchmark", "features", "speedup", "sd"]);
    let platform = Platform::tx2();
    use citroen_core::FeatureKind::*;
    // The fourth variant ablates `oracle_features`: compilation statistics
    // with the precondition oracle's per-pass verdict bits appended to the
    // feature vector (an extension beyond the paper's three feature kinds).
    for name in cbench_subset() {
        for (label, kind, oracle_bits) in [
            ("compilation-stats", CompilationStats, false),
            ("stats+oracle-bits", CompilationStats, true),
            ("autophase", Autophase, false),
            ("raw-seq", RawSequence, false),
        ] {
            let speedups: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut task = make_task(name, &platform, cfg, seed);
                    let c = CitroenConfig {
                        features: kind,
                        oracle_features: oracle_bits,
                        seed,
                        ..Default::default()
                    };
                    let (trace, _) = run_citroen(&mut task, cfg.budget, &c);
                    task.speedup(trace.best())
                })
                .collect();
            rep.row(vec![
                name.to_string(),
                label.to_string(),
                f3(mean(&speedups)),
                f3(std_dev(&speedups)),
            ]);
        }
    }
    rep.finish(cfg);
}

/// Fig. 5.10: CITROEN vs Autophase-features BO under the reduced "LLVM 10"
/// pass universe.
pub fn fig5_10(cfg: &ExpCfg) {
    let mut rep =
        Report::new("fig5_10_llvm10", &["benchmark", "tuner", "speedup_vs_O3", "sd"]);
    let platform = Platform::tx2();
    use citroen_core::FeatureKind::*;
    for name in cbench_subset() {
        for (label, kind) in [("citroen", CompilationStats), ("autophase", Autophase)] {
            let speedups: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut task = make_task_with_registry(
                        name,
                        &platform,
                        cfg,
                        seed,
                        Registry::llvm10(),
                    );
                    let c = CitroenConfig { features: kind, seed, ..Default::default() };
                    let (trace, _) = run_citroen(&mut task, cfg.budget, &c);
                    task.speedup(trace.best())
                })
                .collect();
            rep.row(vec![
                name.to_string(),
                label.to_string(),
                f3(mean(&speedups)),
                f3(std_dev(&speedups)),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 5.11 — hyperparameter sensitivity
// ---------------------------------------------------------------------------

/// Fig. 5.11: sensitivity to UCB β, candidate-batch size, DES mutation rate
/// and GP refit cadence.
pub fn fig5_11(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig5_11_hyperparams",
        &["benchmark", "knob", "value", "speedup", "sd"],
    );
    let platform = Platform::tx2();
    let knobs: Vec<(&str, Vec<CitroenConfig>)> = vec![
        (
            "beta",
            vec![1.0, 1.96, 4.0]
                .into_iter()
                .map(|b| CitroenConfig { beta: b, ..Default::default() })
                .collect(),
        ),
        (
            "candidates",
            vec![16, 40, 96]
                .into_iter()
                .map(|c| CitroenConfig { candidates: c, ..Default::default() })
                .collect(),
        ),
        (
            "mutation",
            vec![0.05, 0.1, 0.25]
                .into_iter()
                .map(|m| CitroenConfig { mutation_rate: Some(m), ..Default::default() })
                .collect(),
        ),
        (
            "fit_every",
            vec![1, 4, 8]
                .into_iter()
                .map(|k| CitroenConfig { fit_every: k, ..Default::default() })
                .collect(),
        ),
    ];
    for name in ["telecom_gsm", "consumer_jpeg_dct"] {
        for (knob, variants) in &knobs {
            for c0 in variants {
                let value = match *knob {
                    "beta" => c0.beta.to_string(),
                    "candidates" => c0.candidates.to_string(),
                    "mutation" => c0.mutation_rate.unwrap().to_string(),
                    _ => c0.fit_every.to_string(),
                };
                let speedups: Vec<f64> = (0..cfg.reps)
                    .into_par_iter()
                    .map(|seed| {
                        let mut task = make_task(name, &platform, cfg, seed);
                        let c = CitroenConfig { seed, ..c0.clone() };
                        let (trace, _) = run_citroen(&mut task, cfg.budget, &c);
                        task.speedup(trace.best())
                    })
                    .collect();
                rep.row(vec![
                    name.to_string(),
                    knob.to_string(),
                    value,
                    f3(mean(&speedups)),
                    f3(std_dev(&speedups)),
                ]);
            }
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 5.12 — runtime proportions
// ---------------------------------------------------------------------------

/// Fig. 5.12: proportion of tuning wall time spent compiling candidates,
/// profiling binaries, and in the model/acquisition ("algorithmic") code.
pub fn fig5_12(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig5_12_time_proportions",
        &["benchmark", "compile_pct", "measure_pct", "model_pct"],
    );
    let platform = Platform::tx2();
    for name in cbench_subset() {
        let mut task = make_task(name, &platform, cfg, 11);
        let c = CitroenConfig { seed: 11, ..Default::default() };
        let _ = run_citroen(&mut task, cfg.budget, &c);
        let total = (task.times.compile + task.times.measure + task.times.model)
            .as_secs_f64()
            .max(1e-12);
        rep.row(vec![
            name.to_string(),
            f3(task.times.compile.as_secs_f64() / total * 100.0),
            f3(task.times.measure.as_secs_f64() / total * 100.0),
            f3(task.times.model.as_secs_f64() / total * 100.0),
        ]);
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Batched tuning — the Fig 5.12 story under q > 1
// ---------------------------------------------------------------------------

/// Batch-size ablation: wall time, best speedup and the Fig 5.12 time
/// proportions as the per-iteration batch size q grows. q=1 is the
/// sequential loop; q>1 selects with greedy qUCB and runs the compile and
/// measurement sweeps on the `rt::par` worker pool, overlapping the GP fit
/// with the measurements. Quality (best-found speedup) should hold roughly
/// flat while wall time drops — compile time amortises over the batch even
/// on one core, and parallelises across cores.
pub fn batch_sweep(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "batch_sweep",
        &["benchmark", "q", "speedup", "sd", "wall_ms", "compile_pct", "measure_pct", "model_pct"],
    );
    let platform = Platform::tx2();
    for name in cbench_subset() {
        for q in [1usize, 2, 4, 8] {
            // Seeds run sequentially: the inner loop already owns the worker
            // pool when q>1, and the wall-clock column must not be polluted
            // by sibling seeds competing for cores.
            let mut speedups = Vec::new();
            let mut walls = Vec::new();
            let mut props = (0.0f64, 0.0f64, 0.0f64);
            for seed in 0..cfg.reps {
                let mut task = make_task(name, &platform, cfg, seed);
                let c = CitroenConfig { batch: q, seed, ..Default::default() };
                let t0 = std::time::Instant::now();
                let (trace, _) = run_citroen(&mut task, cfg.budget, &c);
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
                speedups.push(task.speedup(trace.best()));
                let total = (task.times.compile + task.times.measure + task.times.model)
                    .as_secs_f64()
                    .max(1e-12);
                props.0 += task.times.compile.as_secs_f64() / total * 100.0;
                props.1 += task.times.measure.as_secs_f64() / total * 100.0;
                props.2 += task.times.model.as_secs_f64() / total * 100.0;
            }
            let n = cfg.reps.max(1) as f64;
            rep.row(vec![
                name.to_string(),
                q.to_string(),
                f3(mean(&speedups)),
                f3(std_dev(&speedups)),
                f3(mean(&walls)),
                f3(props.0 / n),
                f3(props.1 / n),
                f3(props.2 / n),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Adaptive multi-module allocation
// ---------------------------------------------------------------------------

/// Thesis contribution 3: adaptive vs round-robin vs uniform budget
/// allocation on the SPEC-like multi-module programs, reporting speedup at
/// checkpoints and the convergence-speed ratio.
pub fn adaptive_multimodule(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "adaptive_multimodule",
        &["benchmark", "policy", "speedup@1/2", "speedup@full", "meas_to_95pct"],
    );
    let platform = Platform::tx2();
    for name in spec_names() {
        for (label, policy) in [
            ("adaptive", Allocation::Adaptive),
            ("round-robin", Allocation::RoundRobin),
            ("uniform", Allocation::Uniform),
        ] {
            let rows: Vec<(f64, f64, usize)> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut task = make_task(name, &platform, cfg, seed);
                    if task.hot_modules.len() < 2 {
                        // Ensure the allocation question exists.
                        let extra = (0..task.benchmark().modules.len())
                            .find(|i| !task.hot_modules.contains(i))
                            .unwrap();
                        task.hot_modules.push(extra);
                    }
                    let c = MultiModuleConfig { allocation: policy, seed, ..Default::default() };
                    let res = run_multimodule(&mut task, cfg.budget, &c);
                    let half = task.speedup(res.trace.best_at(cfg.budget / 2));
                    let full = task.speedup(res.trace.best());
                    // measurements to reach 95% of the final improvement
                    let target =
                        task.o3_seconds - 0.95 * (task.o3_seconds - res.trace.best());
                    let reach = res
                        .trace
                        .best_history
                        .iter()
                        .position(|b| *b <= target)
                        .map(|i| i + 1)
                        .unwrap_or(res.trace.best_history.len());
                    (half, full, reach)
                })
                .collect();
            rep.row(vec![
                name.to_string(),
                label.to_string(),
                f3(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
                f3(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
                f3(mean(&rows.iter().map(|r| r.2 as f64).collect::<Vec<_>>())),
            ]);
        }
    }
    rep.finish(cfg);
}

/// Extension (thesis §6.3.2 future work): transfer the best sequence found
/// on one program as the DES warm start for another. Reports cold vs warm
/// convergence on every cBench benchmark, with `telecom_gsm` as the donor.
pub fn transfer(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "transfer_warm_start",
        &["benchmark", "mode", "speedup@1/3", "speedup@full"],
    );
    let platform = Platform::tx2();
    // Donor: tune gsm once.
    let mut donor = make_task("telecom_gsm", &platform, cfg, 99);
    let (donor_trace, _) =
        run_citroen(&mut donor, cfg.budget, &CitroenConfig { seed: 99, ..Default::default() });
    let donor_seq = donor_trace.best_seqs[0].clone();
    println!(
        "donor sequence ({}): {}",
        donor.benchmark().name,
        donor.registry.seq_to_string(&donor_seq)
    );
    for name in cbench_names() {
        if name == "telecom_gsm" {
            continue;
        }
        for (mode, warm) in [("cold", None), ("warm", Some(donor_seq.clone()))] {
            let rows: Vec<(f64, f64)> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut task = make_task(name, &platform, cfg, seed);
                    let c = CitroenConfig {
                        seed,
                        warm_start: warm.clone(),
                        ..Default::default()
                    };
                    let (tr, _) = run_citroen(&mut task, cfg.budget, &c);
                    (
                        task.speedup(tr.best_at(cfg.budget / 3)),
                        task.speedup(tr.best()),
                    )
                })
                .collect();
            rep.row(vec![
                name.to_string(),
                mode.to_string(),
                f3(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
                f3(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            ]);
        }
    }
    rep.finish(cfg);
}

/// Sanity experiment: the `-O3` pipeline vs `-O1` vs nothing, per benchmark
/// (not a paper figure; documents the headroom the tuners are exploring).
pub fn headroom(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "headroom",
        &["benchmark", "O0_ms", "O1_speedup", "O3_speedup"],
    );
    let platform = Platform::tx2();
    for b in citroen_suite::all_benchmarks() {
        let reg = Registry::full();
        let pm = PassManager::new(&reg);
        let name = b.name;
        let linked0 = b.link();
        let entry = b.entry_in(&linked0);
        let e0 = platform.execute(&linked0, entry, &b.args).unwrap();
        let o1: Vec<_> =
            b.modules.iter().map(|m| pm.compile(m, &citroen_passes::o1_pipeline(&reg)).module).collect();
        let l1 = b.link_with(Some(&o1));
        let e1 = platform.execute(&l1, b.entry_in(&l1), &b.args).unwrap();
        let o3: Vec<_> = b.modules.iter().map(|m| pm.compile(m, &o3_pipeline(&reg)).module).collect();
        let l3 = b.link_with(Some(&o3));
        let e3 = platform.execute(&l3, b.entry_in(&l3), &b.args).unwrap();
        rep.row(vec![
            name.to_string(),
            f3(e0.seconds * 1e3),
            f3(e0.seconds / e1.seconds),
            f3(e0.seconds / e3.seconds),
        ]);
    }
    rep.finish(cfg);
}
