//! Chapter 4 (AIBO) experiment runners: Figures 4.3–4.15 and Table 4.2.

use crate::{f3, f4, mean, std_dev, ExpCfg, Report};
use citroen_bo::aibo::presets;
use citroen_bo::maximizer::{top_n_by_af, GradMaximizer};
use citroen_bo::{
    run_aibo, run_heuristic, run_hesbo, run_random_search, run_turbo, Acquisition, AiboConfig,
    Bounds, StrategyKind, TurboConfig,
};
use citroen_core::{Task, TaskConfig};
use citroen_gp::{Gp, GpConfig, Mat};
use citroen_passes::Registry;
use citroen_sim::Platform;
use citroen_synthetic::{functions, realworld, FlagSelection};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::SeedableRng;
use citroen_rt::par::IntoParIter;

fn fast_gp() -> GpConfig {
    GpConfig { fit_iters: 12, yeo_johnson: true, ..Default::default() }
}

fn small_aibo() -> AiboConfig {
    AiboConfig { k: 200, init_samples: 20, gp: fast_gp(), ..Default::default() }
}

/// Run a named optimiser on a task, minimising; returns the best-so-far curve.
fn run_optimiser(
    which: &str,
    bounds: &Bounds,
    seed: u64,
    budget: usize,
    f: &mut dyn FnMut(&[f64]) -> f64,
) -> Vec<f64> {
    let res = match which {
        "AIBO" => run_aibo(bounds, &small_aibo(), seed, budget, f),
        "AIBO-none" => {
            let cfg = AiboConfig { maximizer: None, ..small_aibo() };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-grad" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_grad(400, 2) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-random" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_random(400) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-es" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_es(200) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-cmaes_grad" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_cmaes_grad(200) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-boltzmann_grad" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_boltzmann_grad(200) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "BO-Gaussian_grad" => {
            let cfg = AiboConfig { gp: fast_gp(), ..presets::bo_gaussian_grad(200) };
            run_aibo(bounds, &cfg, seed, budget, f)
        }
        "TuRBO" => run_turbo(bounds, &TurboConfig::default(), seed, budget, f),
        "HeSBO" => run_hesbo(bounds, bounds.dim().min(12), seed, budget, f),
        "CMA-ES" => run_heuristic(bounds, StrategyKind::CmaEs, seed, budget, f),
        "GA" => run_heuristic(bounds, StrategyKind::Ga, seed, budget, f),
        "Random" => run_random_search(bounds, seed, budget, f),
        other => panic!("unknown optimiser {other}"),
    };
    res.best_history
}

// ---------------------------------------------------------------------------
// Fig 4.3 — candidate-pool analysis on Ackley
// ---------------------------------------------------------------------------

/// Fig. 4.3: with random AF-maximiser initialisation, compare selecting the
/// next query by AF, at random, or by an oracle over the candidate pool.
/// The AF tracks the oracle closely — the pool itself is the bottleneck.
pub fn fig4_3(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_3_candidate_selection",
        &["restarts", "selection", "best_value", "sd"],
    );
    let dim = if cfg.full { 100 } else { 30 };
    let fun = functions::ackley(dim);
    for restarts in [10usize, 100] {
        for selection in ["af", "random", "oracle"] {
            let finals: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    candidate_selection_run(&fun, restarts, selection, seed, cfg.budget)
                })
                .collect();
            rep.row(vec![
                restarts.to_string(),
                selection.to_string(),
                f3(mean(&finals)),
                f3(std_dev(&finals)),
            ]);
        }
    }
    rep.finish(cfg);
}

fn candidate_selection_run(
    fun: &functions::SyntheticFn,
    restarts: usize,
    selection: &str,
    seed: u64,
    budget: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = &fun.bounds;
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for _ in 0..20.min(budget) {
        let u = bounds.sample_unit(&mut rng);
        let y = (fun.f)(&bounds.from_unit(&u));
        xs.push(u);
        ys.push(y);
    }
    let acq = Acquisition::Ucb { beta: 1.96 };
    let gm = GradMaximizer { iters: 6, lr: 0.05 };
    while ys.len() < budget {
        let gp = Gp::fit(Mat::from_rows(xs.clone()), &ys, fast_gp());
        let best_raw = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_z = gp.transform().forward(best_raw);
        // Random-initialised multi-start maximisation → a candidate pool.
        let raw: Vec<Vec<f64>> = (0..400).map(|_| bounds.sample_unit(&mut rng)).collect();
        let starts = top_n_by_af(&gp, acq, best_z, raw, restarts);
        let pool = gm.maximize(&gp, acq, best_z, &starts);
        let chosen = match selection {
            "af" => {
                pool.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0.clone()
            }
            "random" => pool[rng.gen_range_idx(pool.len())].0.clone(),
            _ => pool
                .iter()
                .min_by(|a, b| {
                    (fun.f)(&bounds.from_unit(&a.0))
                        .partial_cmp(&(fun.f)(&bounds.from_unit(&b.0)))
                        .unwrap()
                })
                .unwrap()
                .0
                .clone(),
        };
        let y = (fun.f)(&bounds.from_unit(&chosen));
        xs.push(chosen);
        ys.push(y);
    }
    ys.iter().cloned().fold(f64::INFINITY, f64::min)
}

trait GenRangeIdx {
    fn gen_range_idx(&mut self, n: usize) -> usize;
}
impl GenRangeIdx for StdRng {
    fn gen_range_idx(&mut self, n: usize) -> usize {
        use citroen_rt::rng::Rng;
        self.gen_range(0..n)
    }
}

// ---------------------------------------------------------------------------
// Fig 4.4 — compiler flag selection
// ---------------------------------------------------------------------------

/// Fig. 4.4: AIBO vs BO-grad on the compiler-flag-selection task.
pub fn fig4_4(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_4_flag_selection",
        &["optimiser", "speedup_vs_O3@half", "speedup_vs_O3@full", "sd"],
    );
    for which in ["AIBO", "BO-grad", "Random"] {
        let rows: Vec<(f64, f64)> = (0..cfg.reps)
            .into_par_iter()
            .map(|seed| {
                let mut task = Task::new(
                    citroen_suite::kernels::telecom_gsm(),
                    Registry::full(),
                    Platform::amd(),
                    TaskConfig { seq_len: cfg.seq_len, seed, ..Default::default() },
                );
                let fs = FlagSelection::new(&task);
                let bounds = fs.bounds.clone();
                let o3 = task.o3_seconds;
                let mut obj = |x: &[f64]| fs.evaluate(&mut task, x);
                let hist = run_optimiser(which, &bounds, seed, cfg.budget, &mut obj);
                let half = o3 / hist[hist.len() / 2];
                let full = o3 / hist[hist.len() - 1];
                (half, full)
            })
            .collect();
        let halves: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let fulls: Vec<f64> = rows.iter().map(|r| r.1).collect();
        rep.row(vec![
            which.to_string(),
            f3(mean(&halves)),
            f3(mean(&fulls)),
            f3(std_dev(&fulls)),
        ]);
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 4.5 / 4.6 — synthetic + real-world comparisons
// ---------------------------------------------------------------------------

/// Fig. 4.5: synthetic functions; AIBO vs standard BO, heuristics and
/// high-dimensional BO baselines.
pub fn fig4_5(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_5_synthetic",
        &["function", "optimiser", "best@half", "best@full", "sd"],
    );
    let dims: Vec<usize> = if cfg.full { vec![20, 100] } else { vec![20] };
    let optimisers =
        ["AIBO", "BO-grad", "BO-es", "BO-random", "AIBO-none", "TuRBO", "HeSBO", "CMA-ES", "GA", "Random"];
    for d in dims {
        for fun in functions::standard_set(d) {
            for which in optimisers {
                let finals: Vec<(f64, f64)> = (0..cfg.reps)
                    .into_par_iter()
                    .map(|seed| {
                        let mut f = |x: &[f64]| (fun.f)(x);
                        let hist =
                            run_optimiser(which, &fun.bounds, seed, cfg.budget, &mut f);
                        (hist[hist.len() / 2], hist[hist.len() - 1])
                    })
                    .collect();
                let halves: Vec<f64> = finals.iter().map(|r| r.0).collect();
                let fulls: Vec<f64> = finals.iter().map(|r| r.1).collect();
                rep.row(vec![
                    fun.name.clone(),
                    which.to_string(),
                    f3(mean(&halves)),
                    f3(mean(&fulls)),
                    f3(std_dev(&fulls)),
                ]);
            }
        }
    }
    rep.finish(cfg);
}

/// Fig. 4.6: the real-world task stand-ins.
pub fn fig4_6(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_6_realworld",
        &["task", "optimiser", "best@half", "best@full", "sd"],
    );
    let optimisers = ["AIBO", "BO-grad", "TuRBO", "CMA-ES", "GA", "Random"];
    for task in realworld::all_tasks() {
        for which in optimisers {
            let finals: Vec<(f64, f64)> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut f = |x: &[f64]| (task.f)(x);
                    let hist = run_optimiser(which, &task.bounds, seed, cfg.budget, &mut f);
                    (hist[hist.len() / 2], hist[hist.len() - 1])
                })
                .collect();
            let halves: Vec<f64> = finals.iter().map(|r| r.0).collect();
            let fulls: Vec<f64> = finals.iter().map(|r| r.1).collect();
            rep.row(vec![
                task.name.clone(),
                which.to_string(),
                f3(mean(&halves)),
                f3(mean(&fulls)),
                f3(std_dev(&fulls)),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 4.7 — different AFs
// ---------------------------------------------------------------------------

/// Fig. 4.7: AIBO vs BO-grad under UCB1 / UCB1.96 / UCB4 / EI.
pub fn fig4_7(cfg: &ExpCfg) {
    let mut rep =
        Report::new("fig4_7_acquisitions", &["function", "AF", "optimiser", "best", "sd"]);
    let afs = [
        Acquisition::Ucb { beta: 1.0 },
        Acquisition::Ucb { beta: 1.96 },
        Acquisition::Ucb { beta: 4.0 },
        Acquisition::Ei,
    ];
    let dim = if cfg.full { 100 } else { 20 };
    for fun in [functions::ackley(dim), functions::rastrigin(dim)] {
        for af in afs {
            for (which, strategies) in [
                ("AIBO", vec![StrategyKind::CmaEs, StrategyKind::Ga, StrategyKind::Random]),
                ("BO-grad", vec![StrategyKind::Random]),
            ] {
                let finals: Vec<f64> = (0..cfg.reps)
                    .into_par_iter()
                    .map(|seed| {
                        let c = AiboConfig { af, strategies: strategies.clone(), ..small_aibo() };
                        let mut f = |x: &[f64]| (fun.f)(x);
                        run_aibo(&fun.bounds, &c, seed, cfg.budget, &mut f).best()
                    })
                    .collect();
                rep.row(vec![
                    fun.name.clone(),
                    af.name(),
                    which.to_string(),
                    f3(mean(&finals)),
                    f3(std_dev(&finals)),
                ]);
            }
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 4.8–4.10 — which strategy wins / over-exploration
// ---------------------------------------------------------------------------

/// Figs. 4.8–4.10: per-strategy counts of AF wins, lowest posterior mean
/// (exploitation) and highest posterior variance (exploration), under
/// several AF settings. Random initialisation should dominate the
/// highest-variance column — the over-exploration finding.
pub fn fig4_8_10(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_8_10_strategy_analysis",
        &["AF", "strategy", "af_wins", "lowest_mean_wins", "highest_var_wins"],
    );
    let dim = if cfg.full { 100 } else { 30 };
    let fun = functions::ackley(dim);
    for af in [Acquisition::Ucb { beta: 1.96 }, Acquisition::Ucb { beta: 1.0 }, Acquisition::Ei] {
        let mut wins = [0usize; 3];
        let mut mean_wins = [0usize; 3];
        let mut var_wins = [0usize; 3];
        for seed in 0..cfg.reps {
            let c = AiboConfig { af, ..small_aibo() };
            let mut f = |x: &[f64]| (fun.f)(x);
            let res = run_aibo(&fun.bounds, &c, seed, cfg.budget, &mut f);
            for r in &res.records {
                wins[r.winner] += 1;
                let lm = r
                    .post_mean
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                mean_wins[lm] += 1;
                let hv = r
                    .post_var
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                var_wins[hv] += 1;
            }
        }
        for (i, strat) in ["cma-es", "ga", "random"].iter().enumerate() {
            rep.row(vec![
                af.name(),
                strat.to_string(),
                wins[i].to_string(),
                mean_wins[i].to_string(),
                var_wins[i].to_string(),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 4.11 / 4.12 / 4.13 — over-exploitation, ablations, other inits
// ---------------------------------------------------------------------------

/// Fig. 4.11: the over-exploitation case — AIBO_gacma with a tiny GA
/// population and CMA σ degrades; adding random initialisation recovers.
pub fn fig4_11(cfg: &ExpCfg) {
    let mut rep = Report::new("fig4_11_overexploitation", &["setting", "best", "sd"]);
    let task = realworld::robot_push();
    let settings: Vec<(&str, AiboConfig)> = vec![
        (
            "AIBO_gacma(default)",
            AiboConfig {
                strategies: vec![StrategyKind::CmaEs, StrategyKind::Ga],
                ..small_aibo()
            },
        ),
        (
            "AIBO_gacma(pop3,sigma0.01)",
            AiboConfig {
                strategies: vec![StrategyKind::CmaEs, StrategyKind::Ga],
                ga_pop: 3,
                cma_sigma: 0.01,
                ..small_aibo()
            },
        ),
        (
            "AIBO(pop3,sigma0.01,+random)",
            AiboConfig { ga_pop: 3, cma_sigma: 0.01, ..small_aibo() },
        ),
    ];
    for (label, c) in settings {
        let finals: Vec<f64> = (0..cfg.reps)
            .into_par_iter()
            .map(|seed| {
                let mut f = |x: &[f64]| (task.f)(x);
                run_aibo(&task.bounds, &c, seed, cfg.budget, &mut f).best()
            })
            .collect();
        rep.row(vec![label.to_string(), f4(mean(&finals)), f4(std_dev(&finals))]);
    }
    rep.finish(cfg);
}

/// Fig. 4.12: AIBO vs its single-strategy variants.
pub fn fig4_12(cfg: &ExpCfg) {
    let mut rep = Report::new("fig4_12_ablation", &["function", "variant", "best", "sd"]);
    let dim = if cfg.full { 100 } else { 20 };
    let variants: Vec<(&str, Vec<StrategyKind>)> = vec![
        ("AIBO", vec![StrategyKind::CmaEs, StrategyKind::Ga, StrategyKind::Random]),
        ("AIBO_gacma", vec![StrategyKind::CmaEs, StrategyKind::Ga]),
        ("AIBO_ga", vec![StrategyKind::Ga]),
        ("AIBO_cmaes", vec![StrategyKind::CmaEs]),
        ("AIBO_random(BO-grad)", vec![StrategyKind::Random]),
    ];
    for fun in [functions::ackley(dim), functions::rosenbrock(dim)] {
        for (label, strategies) in &variants {
            let finals: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let c = AiboConfig { strategies: strategies.clone(), ..small_aibo() };
                    let mut f = |x: &[f64]| (fun.f)(x);
                    run_aibo(&fun.bounds, &c, seed, cfg.budget, &mut f).best()
                })
                .collect();
            rep.row(vec![
                fun.name.clone(),
                label.to_string(),
                f3(mean(&finals)),
                f3(std_dev(&finals)),
            ]);
        }
    }
    rep.finish(cfg);
}

/// Fig. 4.13: AIBO vs non-random initialisation strategies that ignore the
/// black-box history (CMA-ES-on-AF, Boltzmann, Gaussian spray).
pub fn fig4_13(cfg: &ExpCfg) {
    let mut rep = Report::new("fig4_13_other_inits", &["function", "method", "best", "sd"]);
    let dim = if cfg.full { 100 } else { 20 };
    let methods = ["AIBO", "BO-cmaes_grad", "BO-boltzmann_grad", "BO-Gaussian_grad"];
    for fun in [functions::rastrigin(dim), functions::ackley(dim)] {
        for which in methods {
            let finals: Vec<f64> = (0..cfg.reps)
                .into_par_iter()
                .map(|seed| {
                    let mut f = |x: &[f64]| (fun.f)(x);
                    let hist = run_optimiser(which, &fun.bounds, seed, cfg.budget, &mut f);
                    hist[hist.len() - 1]
                })
                .collect();
            rep.row(vec![
                fun.name.clone(),
                which.to_string(),
                f3(mean(&finals)),
                f3(std_dev(&finals)),
            ]);
        }
    }
    rep.finish(cfg);
}

// ---------------------------------------------------------------------------
// Fig 4.14 / 4.15 / Table 4.2
// ---------------------------------------------------------------------------

/// Fig. 4.14: AIBO hyper-parameters (GA pop / CMA σ; k and n; batch size).
pub fn fig4_14(cfg: &ExpCfg) {
    let mut rep = Report::new("fig4_14_hyperparams", &["function", "setting", "best", "sd"]);
    let dim = if cfg.full { 100 } else { 20 };
    let fun = functions::ackley(dim);
    let settings: Vec<(&str, AiboConfig)> = vec![
        ("default(pop50,s0.2,k200,n1,b1)", small_aibo()),
        ("explore(pop100,s0.5)", AiboConfig { ga_pop: 100, cma_sigma: 0.5, ..small_aibo() }),
        ("exploit(pop10,s0.05)", AiboConfig { ga_pop: 10, cma_sigma: 0.05, ..small_aibo() }),
        ("k800,n4", AiboConfig { k: 800, n: 4, ..small_aibo() }),
        ("k50,n1", AiboConfig { k: 50, n: 1, ..small_aibo() }),
        ("batch5", AiboConfig { batch: 5, ..small_aibo() }),
    ];
    for (label, c) in settings {
        let finals: Vec<f64> = (0..cfg.reps)
            .into_par_iter()
            .map(|seed| {
                let mut f = |x: &[f64]| (fun.f)(x);
                run_aibo(&fun.bounds, &c, seed, cfg.budget, &mut f).best()
            })
            .collect();
        rep.row(vec![
            fun.name.clone(),
            label.to_string(),
            f3(mean(&finals)),
            f3(std_dev(&finals)),
        ]);
    }
    rep.finish(cfg);
}

/// Fig. 4.15: GA population diversity under UCB1.96 vs UCB9.
pub fn fig4_15(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "fig4_15_ga_diversity",
        &["AF", "mean_diversity_early", "mean_diversity_late"],
    );
    let dim = if cfg.full { 100 } else { 30 };
    let fun = functions::ackley(dim);
    for af in [Acquisition::Ucb { beta: 1.96 }, Acquisition::Ucb { beta: 9.0 }] {
        let mut early = Vec::new();
        let mut late = Vec::new();
        for seed in 0..cfg.reps {
            let c = AiboConfig { af, ..small_aibo() };
            let mut f = |x: &[f64]| (fun.f)(x);
            let res = run_aibo(&fun.bounds, &c, seed, cfg.budget, &mut f);
            let n = res.records.len();
            for (i, r) in res.records.iter().enumerate() {
                if i < n / 2 {
                    early.push(r.ga_diversity);
                } else {
                    late.push(r.ga_diversity);
                }
            }
        }
        rep.row(vec![af.name(), f4(mean(&early)), f4(mean(&late))]);
    }
    rep.finish(cfg);
}

/// Table 4.2: pure algorithmic runtime of AIBO vs BO-grad (BO-grad is given
/// the costlier maximisation budget, as in the thesis).
pub fn tab4_2(cfg: &ExpCfg) {
    let mut rep = Report::new(
        "tab4_2_algorithmic_runtime",
        &["function", "optimiser", "algo_seconds", "best"],
    );
    let dim = if cfg.full { 100 } else { 20 };
    let fun = functions::ackley(dim);
    for (label, c) in [
        ("AIBO", small_aibo()),
        (
            "BO-grad(k2000,n10)",
            AiboConfig { gp: fast_gp(), ..presets::bo_grad(2000, 10) },
        ),
    ] {
        let mut f = |x: &[f64]| (fun.f)(x);
        let res = run_aibo(&fun.bounds, &c, 0, cfg.budget, &mut f);
        rep.row(vec![
            fun.name.clone(),
            label.to_string(),
            f3(res.algo_time.as_secs_f64()),
            f3(res.best()),
        ]);
    }
    rep.finish(cfg);
}
