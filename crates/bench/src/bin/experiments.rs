//! Experiment dispatcher: `experiments <id> [--reps N] [--budget N]
//! [--seq-len N] [--full] [--out DIR] [--trace-dir DIR] [--benchmarks a,b]`.
//!
//! Ids mirror the paper's tables/figures (DESIGN.md §3). `ch4`, `ch5` and
//! `all` run groups.

use citroen_bench::{ch4, ch5, ExpCfg};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((id, rest)) = args.split_first() else {
        usage();
        return;
    };
    let cfg = ExpCfg::from_args(rest);
    println!(
        "== experiment {id} (reps={}, budget={}, seq_len={}, full={}) ==",
        cfg.reps, cfg.budget, cfg.seq_len, cfg.full
    );
    run(id, &cfg);
}

fn run(id: &str, cfg: &ExpCfg) {
    match id {
        // Chapter 5 (the IPDPS paper)
        "fig5_1" => ch5::fig5_1(cfg),
        "tab5_1" => ch5::tab5_1(cfg),
        "tab5_2" => ch5::tab5_2(cfg),
        "tab5_3" => ch5::tab5_3(cfg),
        "tab5_4" => ch5::tab5_4(cfg),
        "tab5_5" => ch5::tab5_5(cfg),
        "fig5_6" | "fig5_7" | "fig5_6_7" => ch5::fig5_6_7(cfg),
        "fig5_8" => ch5::fig5_8(cfg),
        "fig5_9" => ch5::fig5_9(cfg),
        "fig5_10" => ch5::fig5_10(cfg),
        "fig5_11" => ch5::fig5_11(cfg),
        "fig5_12" => ch5::fig5_12(cfg),
        "batch_sweep" => ch5::batch_sweep(cfg),
        "multimodule" => ch5::adaptive_multimodule(cfg),
        "headroom" => ch5::headroom(cfg),
        "transfer" => ch5::transfer(cfg),
        // Chapter 4 (AIBO)
        "fig4_3" => ch4::fig4_3(cfg),
        "fig4_4" => ch4::fig4_4(cfg),
        "fig4_5" => ch4::fig4_5(cfg),
        "fig4_6" => ch4::fig4_6(cfg),
        "fig4_7" => ch4::fig4_7(cfg),
        "fig4_8_10" => ch4::fig4_8_10(cfg),
        "fig4_11" => ch4::fig4_11(cfg),
        "fig4_12" => ch4::fig4_12(cfg),
        "fig4_13" => ch4::fig4_13(cfg),
        "fig4_14" => ch4::fig4_14(cfg),
        "fig4_15" => ch4::fig4_15(cfg),
        "tab4_2" => ch4::tab4_2(cfg),
        // Groups
        "ch5" => {
            for e in [
                "fig5_1", "tab5_1", "tab5_2", "tab5_3", "tab5_4", "tab5_5", "fig5_6_7",
                "fig5_8", "fig5_9", "fig5_10", "fig5_11", "fig5_12", "batch_sweep",
                "multimodule", "headroom",
            ] {
                println!("\n==== {e} ====");
                run(e, cfg);
            }
        }
        "ch4" => {
            for e in [
                "fig4_3", "fig4_4", "fig4_5", "fig4_6", "fig4_7", "fig4_8_10", "fig4_11",
                "fig4_12", "fig4_13", "fig4_14", "fig4_15", "tab4_2",
            ] {
                println!("\n==== {e} ====");
                run(e, cfg);
            }
        }
        "all" => {
            run("ch5", cfg);
            run("ch4", cfg);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            usage();
        }
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <id> [--reps N] [--budget N] [--seq-len N] [--full] [--out DIR]
                   [--trace-dir DIR] [--benchmarks a,b,c]
ids: fig5_1 tab5_1..tab5_5 fig5_6_7 fig5_8..fig5_12 batch_sweep multimodule headroom
     fig4_3..fig4_15 tab4_2 | ch4 | ch5 | all
fig5_6_7 only: --trace-dir streams one JSONL telemetry trace per
benchmark×tuner×seed cell (cells run sequentially; analyse with
`citroen-trace curve/flame/tail`); --benchmarks restricts the grid."
    );
}
