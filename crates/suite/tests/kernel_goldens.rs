//! Golden checksums for every benchmark, at `-O0` and under `-O3`. Any
//! semantic drift in the kernels, the interpreter, the linker or the pass
//! pipeline shows up here as a changed value.

use citroen_ir::interp::{run_counting, Value};
use citroen_passes::{o3_pipeline, PassManager, Registry};

const GOLDENS: &[(&str, i64)] = &[
    ("telecom_gsm", 21049706),
    ("telecom_crc32", 1276884025),
    ("telecom_adpcm", 8647),
    ("automotive_bitcount", 18507),
    ("automotive_susan", 2153),
    ("automotive_shellsort", 620826783),
    ("security_sha", -536367801),
    ("network_dijkstra", 692),
    ("office_stringsearch", 3),
    ("consumer_jpeg_dct", 518),
    ("spec_compress", 5057293020656831133),
    ("spec_imgproc", 16590),
    ("spec_simul", 2152347),
];

#[test]
fn o0_checksums_match_goldens() {
    for b in citroen_suite::all_benchmarks() {
        let expect = GOLDENS
            .iter()
            .find(|(n, _)| *n == b.name)
            .unwrap_or_else(|| panic!("no golden for {}", b.name))
            .1;
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &b.args).unwrap();
        assert_eq!(out.ret, Some(Value::I(expect)), "{} drifted", b.name);
    }
}

#[test]
fn o3_checksums_match_goldens() {
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    let o3 = o3_pipeline(&reg);
    for b in citroen_suite::all_benchmarks() {
        let expect = GOLDENS.iter().find(|(n, _)| *n == b.name).unwrap().1;
        let opt: Vec<_> = b.modules.iter().map(|m| pm.compile(m, &o3).module).collect();
        let linked = b.link_with(Some(&opt));
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &b.args).unwrap();
        assert_eq!(out.ret, Some(Value::I(expect)), "{} mis-optimised by -O3", b.name);
    }
}

#[test]
fn every_golden_has_a_benchmark() {
    let names: Vec<&str> = citroen_suite::all_benchmarks().iter().map(|b| b.name).collect();
    for (n, _) in GOLDENS {
        assert!(names.contains(n), "golden for unknown benchmark {n}");
    }
    assert_eq!(names.len(), GOLDENS.len());
}
