//! SPEC-CPU-like multi-module programs (paper Table 5.4): several source
//! modules with skewed hotness, cross-module calls and shared globals. These
//! drive the multi-module adaptive budget allocation experiments.

use crate::kernels::lcg;
use crate::{Benchmark, SuiteKind};
use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Operand};
use citroen_ir::module::{Function, GlobalInit, Module};
use citroen_ir::types::{F64, I16, I32, I64, I8};

/// `spec_compress` — an LZ-style compressor split across five modules:
/// `hash.c` (rolling hash), `match.c` (longest-match search — the hot spot),
/// `encode.c` (bit packing), `io.c` (buffer copy), `main.c` (driver).
pub fn spec_compress() -> Benchmark {
    const N: i64 = 1536;
    let input: Vec<i8> = lcg(111, N as usize).into_iter().map(|v| (v % 17) as i8).collect();

    // hash.c: hash3(pos) = (in[pos]*33 + in[pos+1])*33 + in[pos+2], masked.
    let mut hash_m = Module::new("hash.c");
    let inp_h = hash_m.add_extern_global("input");
    let mut h = FunctionBuilder::new("hash3", vec![I64], Some(I64));
    let pos = h.param(0);
    let a0 = h.gep(Operand::Global(inp_h), pos, 1);
    let c0 = h.load(I8, a0);
    let p1 = h.bin(BinOp::Add, I64, pos, Operand::imm64(1));
    let a1 = h.gep(Operand::Global(inp_h), p1, 1);
    let c1 = h.load(I8, a1);
    let p2 = h.bin(BinOp::Add, I64, pos, Operand::imm64(2));
    let a2 = h.gep(Operand::Global(inp_h), p2, 1);
    let c2 = h.load(I8, a2);
    let e0 = h.cast(CastKind::ZExt, I64, c0);
    let e1 = h.cast(CastKind::ZExt, I64, c1);
    let e2 = h.cast(CastKind::ZExt, I64, c2);
    let m1 = h.bin(BinOp::Mul, I64, e0, Operand::imm64(33));
    let s1 = h.bin(BinOp::Add, I64, m1, e1);
    let m2 = h.bin(BinOp::Mul, I64, s1, Operand::imm64(33));
    let s2 = h.bin(BinOp::Add, I64, m2, e2);
    let masked = h.bin(BinOp::And, I64, s2, Operand::imm64(255));
    h.ret(Some(masked));
    hash_m.add_func(h.finish());

    // match.c: match_len(a, b, max) — byte-compare loop (hot).
    let mut match_m = Module::new("match.c");
    let inp_m = match_m.add_extern_global("input");
    let mut mf = FunctionBuilder::new("match_len", vec![I64, I64, I64], Some(I64));
    let pa = mf.param(0);
    let pb = mf.param(1);
    let maxl = mf.param(2);
    let len = mf.alloca(8);
    mf.store(I64, Operand::imm64(0), len);
    let check = mf.block();
    let body = mf.block();
    let done = mf.block();
    mf.br(check);
    mf.switch_to(check);
    let lv = mf.load(I64, len);
    let more = mf.cmp(CmpOp::Slt, lv, maxl);
    mf.cond_br(more, body, done);
    mf.switch_to(body);
    let ia = mf.bin(BinOp::Add, I64, pa, lv);
    let ib = mf.bin(BinOp::Add, I64, pb, lv);
    let aa = mf.gep(Operand::Global(inp_m), ia, 1);
    let ab = mf.gep(Operand::Global(inp_m), ib, 1);
    let ca = mf.load(I8, aa);
    let cb = mf.load(I8, ab);
    let eq = mf.cmp(CmpOp::Eq, ca, cb);
    let cont = mf.block();
    mf.cond_br(eq, cont, done);
    mf.switch_to(cont);
    let l1 = mf.bin(BinOp::Add, I64, lv, Operand::imm64(1));
    mf.store(I64, l1, len);
    mf.br(check);
    mf.switch_to(done);
    let r = mf.load(I64, len);
    mf.ret(Some(r));
    match_m.add_func(mf.finish());

    // encode.c: pack (len, dist) into a bit stream checksum.
    let mut enc_m = Module::new("encode.c");
    let mut ef = FunctionBuilder::new("encode_pair", vec![I64, I64, I64], Some(I64));
    let acc = ef.param(0);
    let l = ef.param(1);
    let d = ef.param(2);
    let sh = ef.bin(BinOp::Shl, I64, acc, Operand::imm64(5));
    let x1 = ef.bin(BinOp::Xor, I64, sh, l);
    let rot = ef.bin(BinOp::LShr, I64, x1, Operand::imm64(13));
    let x2 = ef.bin(BinOp::Xor, I64, x1, rot);
    let x3 = ef.bin(BinOp::Add, I64, x2, d);
    ef.ret(Some(x3));
    enc_m.add_func(ef.finish());

    // io.c: copy input into the window buffer once (cold).
    let mut io_m = Module::new("io.c");
    let inp_io = io_m.add_extern_global("input");
    let win_io = io_m.add_extern_global("window");
    let mut iof = FunctionBuilder::new("fill_window", vec![], None);
    counted_loop_mem(&mut iof, Operand::imm64(N), |f, i| {
        let sa = f.gep(Operand::Global(inp_io), i, 1);
        let v = f.load(I8, sa);
        let da = f.gep(Operand::Global(win_io), i, 1);
        f.store(I8, v, da);
    });
    iof.ret(None);
    io_m.add_func(iof.finish());

    // main.c: driver with the hash table.
    let mut main_m = Module::new("main.c");
    main_m.add_global("input", GlobalInit::I8s(input), false);
    main_m.add_global("window", GlobalInit::Zero(N as u32), true);
    let head = main_m.add_global("head", GlobalInit::Zero(8 * 256), true);
    let hash3 = main_m.add_func(Function::decl("hash3", vec![I64], Some(I64)));
    let match_len = main_m.add_func(Function::decl("match_len", vec![I64, I64, I64], Some(I64)));
    let encode_pair =
        main_m.add_func(Function::decl("encode_pair", vec![I64, I64, I64], Some(I64)));
    let fill_window = main_m.add_func(Function::decl("fill_window", vec![], None));
    let mut e = FunctionBuilder::new("compress_main", vec![], Some(I64));
    e.call(fill_window, None, vec![]);
    let acc = e.alloca(8);
    e.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut e, Operand::imm64(N - 16), |e, pos| {
        let hv = e.call(hash3, Some(I64), vec![pos]).unwrap();
        let ha = e.gep(Operand::Global(head), hv, 8);
        let cand = e.load(I64, ha);
        e.store(I64, pos, ha);
        // only search when the candidate is a strictly earlier position
        let earlier = e.cmp(CmpOp::Slt, cand, pos);
        let search = e.block();
        let cont = e.block();
        e.cond_br(earlier, search, cont);
        e.switch_to(search);
        let len = e.call(match_len, Some(I64), vec![cand, pos, Operand::imm64(12)]).unwrap();
        let dist = e.bin(BinOp::Sub, I64, pos, cand);
        let a0 = e.load(I64, acc);
        let a1 = e.call(encode_pair, Some(I64), vec![a0, len, dist]).unwrap();
        e.store(I64, a1, acc);
        e.br(cont);
        e.switch_to(cont);
    });
    let r = e.load(I64, acc);
    e.ret(Some(r));
    main_m.add_func(e.finish());

    Benchmark {
        name: "spec_compress",
        suite: SuiteKind::Spec,
        modules: vec![hash_m, match_m, enc_m, io_m, main_m],
        entry: "compress_main",
        args: vec![],
    }
}

/// `spec_imgproc` — image pipeline across five modules: `decode.c` (unpack),
/// `filter.c` (5-tap separable stencil — hot), `quant.c` (divide/round),
/// `hist.c` (histogram), `main.c` (driver).
pub fn spec_imgproc() -> Benchmark {
    const W: i64 = 48;
    const H: i64 = 32;
    let raw: Vec<i8> = lcg(131, (W * H) as usize).into_iter().map(|v| (v % 127) as i8).collect();

    let mut dec_m = Module::new("decode.c");
    let raw_d = dec_m.add_extern_global("raw");
    let img_d = dec_m.add_extern_global("img");
    let mut df = FunctionBuilder::new("decode", vec![], None);
    counted_loop_mem(&mut df, Operand::imm64(W * H), |f, i| {
        let sa = f.gep(Operand::Global(raw_d), i, 1);
        let v = f.load(I8, sa);
        let v16 = f.cast(CastKind::SExt, I16, v);
        let da = f.gep(Operand::Global(img_d), i, 2);
        f.store(I16, v16, da);
    });
    df.ret(None);
    dec_m.add_func(df.finish());

    // filter.c: 1-D 5-tap horizontal filter per row (hot).
    let mut fil_m = Module::new("filter.c");
    let img_f = fil_m.add_extern_global("img");
    let flt_f = fil_m.add_extern_global("filtered");
    let mut ff = FunctionBuilder::new("filter_row", vec![I64], None);
    let y = ff.param(0);
    let row = ff.bin(BinOp::Mul, I64, y, Operand::imm64(W));
    let rbase = ff.gep(Operand::Global(img_f), row, 2);
    let obase = ff.gep(Operand::Global(flt_f), row, 2);
    counted_loop_mem(&mut ff, Operand::imm64(W - 4), |f, x| {
        let acc = f.alloca(8);
        f.store(I64, Operand::imm64(0), acc);
        let taps = [1i64, 4, 6, 4, 1];
        let sbase = f.gep(rbase, x, 2);
        for (k, t) in taps.iter().enumerate() {
            let ta = f.gep(sbase, Operand::imm64(k as i64), 2);
            let p = f.load(I16, ta);
            let p32 = f.cast(CastKind::SExt, I32, p);
            let prod = f.bin(BinOp::Mul, I32, p32, Operand::imm32(*t as i32));
            let p64 = f.cast(CastKind::SExt, I64, prod);
            let a0 = f.load(I64, acc);
            let a1 = f.bin(BinOp::Add, I64, a0, p64);
            f.store(I64, a1, acc);
        }
        let total = f.load(I64, acc);
        let norm = f.bin(BinOp::AShr, I64, total, Operand::imm64(4));
        let n16 = f.cast(CastKind::Trunc, I16, norm);
        let oa = f.gep(obase, x, 2);
        f.store(I16, n16, oa);
    });
    ff.ret(None);
    fil_m.add_func(ff.finish());

    // quant.c: q[i] = filtered[i] / 7 (division-heavy).
    let mut q_m = Module::new("quant.c");
    let flt_q = q_m.add_extern_global("filtered");
    let qnt_q = q_m.add_extern_global("quant");
    let mut qf = FunctionBuilder::new("quantise", vec![], None);
    counted_loop_mem(&mut qf, Operand::imm64(W * H), |f, i| {
        let sa = f.gep(Operand::Global(flt_q), i, 2);
        let v = f.load(I16, sa);
        let v64 = f.cast(CastKind::SExt, I64, v);
        let q = f.bin(BinOp::SDiv, I64, v64, Operand::imm64(7));
        let q8 = f.cast(CastKind::Trunc, I8, q);
        let da = f.gep(Operand::Global(qnt_q), i, 1);
        f.store(I8, q8, da);
    });
    qf.ret(None);
    q_m.add_func(qf.finish());

    // hist.c: histogram of quantised values (data-dependent stores).
    let mut h_m = Module::new("hist.c");
    let qnt_h = h_m.add_extern_global("quant");
    let hist_h = h_m.add_extern_global("hist");
    let mut hf = FunctionBuilder::new("histogram", vec![], Some(I64));
    counted_loop_mem(&mut hf, Operand::imm64(W * H), |f, i| {
        let sa = f.gep(Operand::Global(qnt_h), i, 1);
        let v = f.load(I8, sa);
        let v64 = f.cast(CastKind::SExt, I64, v);
        let bin = f.bin(BinOp::And, I64, v64, Operand::imm64(31));
        let ba = f.gep(Operand::Global(hist_h), bin, 8);
        let c0 = f.load(I64, ba);
        let c1 = f.bin(BinOp::Add, I64, c0, Operand::imm64(1));
        f.store(I64, c1, ba);
    });
    // checksum: Σ hist[i]*(i+3)
    let ck = hf.alloca(8);
    hf.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut hf, Operand::imm64(32), |f, i| {
        let ba = f.gep(Operand::Global(hist_h), i, 8);
        let c = f.load(I64, ba);
        let w = f.bin(BinOp::Add, I64, i, Operand::imm64(3));
        let p = f.bin(BinOp::Mul, I64, c, w);
        let c0 = f.load(I64, ck);
        let c1 = f.bin(BinOp::Add, I64, c0, p);
        f.store(I64, c1, ck);
    });
    let r = hf.load(I64, ck);
    hf.ret(Some(r));
    h_m.add_func(hf.finish());

    let mut main_m = Module::new("main.c");
    main_m.add_global("raw", GlobalInit::I8s(raw), false);
    main_m.add_global("img", GlobalInit::Zero((2 * W * H) as u32), true);
    main_m.add_global("filtered", GlobalInit::Zero((2 * W * H) as u32), true);
    main_m.add_global("quant", GlobalInit::Zero((W * H) as u32), true);
    main_m.add_global("hist", GlobalInit::Zero(8 * 32), true);
    let decode = main_m.add_func(Function::decl("decode", vec![], None));
    let filter_row = main_m.add_func(Function::decl("filter_row", vec![I64], None));
    let quantise = main_m.add_func(Function::decl("quantise", vec![], None));
    let histogram = main_m.add_func(Function::decl("histogram", vec![], Some(I64)));
    let mut e = FunctionBuilder::new("imgproc_main", vec![], Some(I64));
    e.call(decode, None, vec![]);
    // run the filter several times (multi-frame) to skew hotness
    counted_loop_mem(&mut e, Operand::imm64(6), |e, _| {
        counted_loop_mem(e, Operand::imm64(H), |e, y| {
            e.call(filter_row, None, vec![y]);
        });
    });
    e.call(quantise, None, vec![]);
    let r = e.call(histogram, Some(I64), vec![]).unwrap();
    e.ret(Some(r));
    main_m.add_func(e.finish());

    Benchmark {
        name: "spec_imgproc",
        suite: SuiteKind::Spec,
        modules: vec![dec_m, fil_m, q_m, h_m, main_m],
        entry: "imgproc_main",
        args: vec![],
    }
}

/// `spec_simul` — a particle simulation across four modules: `init.c`,
/// `force.c` (O(n²) pairwise forces, float-heavy — hot), `integrate.c`,
/// `energy.c`. Exercises the F64 side of the machine model.
pub fn spec_simul() -> Benchmark {
    const N: i64 = 40;
    const STEPS: i64 = 6;

    let mut init_m = Module::new("init.c");
    let pos_i = init_m.add_extern_global("pos");
    let vel_i = init_m.add_extern_global("vel");
    let mut inf = FunctionBuilder::new("init_particles", vec![], None);
    counted_loop_mem(&mut inf, Operand::imm64(N), |f, i| {
        let i32v = f.cast(CastKind::Trunc, I32, i);
        let fi = f.cast(CastKind::SiToFp, F64, i32v);
        let x = f.bin(BinOp::FMul, F64, fi, Operand::ImmF(0.37));
        let pa = f.gep(Operand::Global(pos_i), i, 8);
        f.store(F64, x, pa);
        let va = f.gep(Operand::Global(vel_i), i, 8);
        f.store(F64, Operand::ImmF(0.0), va);
    });
    inf.ret(None);
    init_m.add_func(inf.finish());

    // force.c: f[i] = Σ_j (pos[j]-pos[i]) / (1 + (pos[j]-pos[i])^2)  (hot)
    let mut force_m = Module::new("force.c");
    let pos_f = force_m.add_extern_global("pos");
    let frc_f = force_m.add_extern_global("frc");
    let mut ff = FunctionBuilder::new("compute_forces", vec![], None);
    counted_loop_mem(&mut ff, Operand::imm64(N), |f, i| {
        let acc = f.alloca(8);
        f.store(F64, Operand::ImmF(0.0), acc);
        let pia = f.gep(Operand::Global(pos_f), i, 8);
        let pi = f.load(F64, pia);
        counted_loop_mem(f, Operand::imm64(N), |f, j| {
            let pja = f.gep(Operand::Global(pos_f), j, 8);
            let pj = f.load(F64, pja);
            let d = f.bin(BinOp::FSub, F64, pj, pi);
            let d2 = f.bin(BinOp::FMul, F64, d, d);
            let denom = f.bin(BinOp::FAdd, F64, d2, Operand::ImmF(1.0));
            let fij = f.bin(BinOp::FDiv, F64, d, denom);
            let a0 = f.load(F64, acc);
            let a1 = f.bin(BinOp::FAdd, F64, a0, fij);
            f.store(F64, a1, acc);
        });
        let total = f.load(F64, acc);
        let fa = f.gep(Operand::Global(frc_f), i, 8);
        f.store(F64, total, fa);
    });
    ff.ret(None);
    force_m.add_func(ff.finish());

    // integrate.c: vel += f*dt; pos += vel*dt
    let mut int_m = Module::new("integrate.c");
    let pos_n = int_m.add_extern_global("pos");
    let vel_n = int_m.add_extern_global("vel");
    let frc_n = int_m.add_extern_global("frc");
    let mut itf = FunctionBuilder::new("integrate", vec![], None);
    counted_loop_mem(&mut itf, Operand::imm64(N), |f, i| {
        let fa = f.gep(Operand::Global(frc_n), i, 8);
        let fo = f.load(F64, fa);
        let va = f.gep(Operand::Global(vel_n), i, 8);
        let v0 = f.load(F64, va);
        let dv = f.bin(BinOp::FMul, F64, fo, Operand::ImmF(0.01));
        let v1 = f.bin(BinOp::FAdd, F64, v0, dv);
        f.store(F64, v1, va);
        let pa = f.gep(Operand::Global(pos_n), i, 8);
        let p0 = f.load(F64, pa);
        let dp = f.bin(BinOp::FMul, F64, v1, Operand::ImmF(0.01));
        let p1 = f.bin(BinOp::FAdd, F64, p0, dp);
        f.store(F64, p1, pa);
    });
    itf.ret(None);
    int_m.add_func(itf.finish());

    // energy.c: E = Σ vel², returned as a fixed-point i64 checksum.
    let mut en_m = Module::new("energy.c");
    let vel_e = en_m.add_extern_global("vel");
    let mut ef = FunctionBuilder::new("energy", vec![], Some(I64));
    let acc = ef.alloca(8);
    ef.store(F64, Operand::ImmF(0.0), acc);
    counted_loop_mem(&mut ef, Operand::imm64(N), |f, i| {
        let va = f.gep(Operand::Global(vel_e), i, 8);
        let v = f.load(F64, va);
        let v2 = f.bin(BinOp::FMul, F64, v, v);
        let a0 = f.load(F64, acc);
        let a1 = f.bin(BinOp::FAdd, F64, a0, v2);
        f.store(F64, a1, acc);
    });
    let e = ef.load(F64, acc);
    let scaled = ef.bin(BinOp::FMul, F64, e, Operand::ImmF(1e6));
    let fixed = ef.cast(CastKind::FpToSi, I64, scaled);
    ef.ret(Some(fixed));
    en_m.add_func(ef.finish());

    let mut main_m = Module::new("main.c");
    main_m.add_global("pos", GlobalInit::F64s(vec![0.0; N as usize]), true);
    main_m.add_global("vel", GlobalInit::F64s(vec![0.0; N as usize]), true);
    main_m.add_global("frc", GlobalInit::F64s(vec![0.0; N as usize]), true);
    let init = main_m.add_func(Function::decl("init_particles", vec![], None));
    let forces = main_m.add_func(Function::decl("compute_forces", vec![], None));
    let integrate = main_m.add_func(Function::decl("integrate", vec![], None));
    let energy = main_m.add_func(Function::decl("energy", vec![], Some(I64)));
    let mut e = FunctionBuilder::new("simul_main", vec![], Some(I64));
    e.call(init, None, vec![]);
    counted_loop_mem(&mut e, Operand::imm64(STEPS), |e, _| {
        e.call(forces, None, vec![]);
        e.call(integrate, None, vec![]);
    });
    let r = e.call(energy, Some(I64), vec![]).unwrap();
    e.ret(Some(r));
    main_m.add_func(e.finish());

    Benchmark {
        name: "spec_simul",
        suite: SuiteKind::Spec,
        modules: vec![init_m, force_m, int_m, en_m, main_m],
        entry: "simul_main",
        args: vec![],
    }
}
