//! # citroen-suite
//!
//! Benchmark programs standing in for cBench and SPEC CPU 2017 (paper §5.4.3,
//! Table 5.4): hand-written compute kernels in the CITROEN IR, larger
//! multi-module "SPEC-like" programs, a seeded random program generator, and
//! a perf-style hot-module profiler.

#![warn(missing_docs)]

pub mod generator;
pub mod kernels;
pub mod profile;
pub mod speclike;

use citroen_ir::interp::Value;
use citroen_ir::module::Module;
use citroen_ir::FuncId;

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// cBench-like: small kernels, one or two modules, large headroom.
    CBench,
    /// SPEC-like: multi-module, larger, small headroom over -O3.
    Spec,
}

/// A benchmark program: one or more IR modules plus a workload.
pub struct Benchmark {
    /// Benchmark name (e.g. `telecom_gsm`).
    pub name: &'static str,
    /// Suite classification.
    pub suite: SuiteKind,
    /// Source modules; these are the paper's per-file optimisation units.
    pub modules: Vec<Module>,
    /// Name of the entry function (defined in one of the modules).
    pub entry: &'static str,
    /// Workload arguments for the entry function.
    pub args: Vec<Value>,
}

impl Benchmark {
    /// Link the (possibly separately optimised) modules into one executable
    /// module. Pass `None` to link the unoptimised sources.
    pub fn link_with(&self, optimised: Option<&[Module]>) -> Module {
        let mods = optimised.unwrap_or(&self.modules);
        citroen_ir::link(self.name, mods)
            .unwrap_or_else(|e| panic!("benchmark {} failed to link: {e}", self.name))
    }

    /// Link the unoptimised sources.
    pub fn link(&self) -> Module {
        self.link_with(None)
    }

    /// The entry function id within a linked module.
    pub fn entry_in(&self, linked: &Module) -> FuncId {
        linked
            .func_by_name(self.entry)
            .unwrap_or_else(|| panic!("entry '{}' missing in {}", self.entry, self.name))
    }
}

/// The cBench-like suite.
pub fn cbench() -> Vec<Benchmark> {
    vec![
        kernels::telecom_gsm(),
        kernels::telecom_crc32(),
        kernels::telecom_adpcm(),
        kernels::automotive_bitcount(),
        kernels::automotive_susan(),
        kernels::automotive_shellsort(),
        kernels::security_sha(),
        kernels::network_dijkstra(),
        kernels::office_stringsearch(),
        kernels::consumer_jpeg_dct(),
    ]
}

/// The SPEC-like multi-module suite.
pub fn spec() -> Vec<Benchmark> {
    vec![speclike::spec_compress(), speclike::spec_imgproc(), speclike::spec_simul()]
}

/// Every benchmark.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = cbench();
    v.extend(spec());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::interp::run_counting;

    #[test]
    fn all_benchmarks_link_verify_and_run() {
        for b in all_benchmarks() {
            let linked = b.link();
            citroen_ir::verify::assert_valid(&linked);
            let entry = b.entry_in(&linked);
            let (out, sink) = run_counting(&linked, entry, &b.args)
                .unwrap_or_else(|t| panic!("{} trapped: {t}", b.name));
            assert!(out.ret.is_some(), "{} must return a checksum", b.name);
            assert!(
                sink.total > 5_000,
                "{} too small to be a benchmark: {} dynamic ops",
                b.name,
                sink.total
            );
            assert!(
                sink.total < 5_000_000,
                "{} too big for a tuning evaluation unit: {} dynamic ops",
                b.name,
                sink.total
            );
        }
    }

    #[test]
    fn suites_have_paper_shape() {
        let cb = cbench();
        let sp = spec();
        assert!(cb.len() >= 10, "cBench-like suite too small");
        assert!(sp.len() >= 3, "SPEC-like suite too small");
        assert!(cb.iter().all(|b| b.suite == SuiteKind::CBench));
        assert!(sp.iter().all(|b| b.suite == SuiteKind::Spec));
        // SPEC-like programs are multi-module.
        assert!(sp.iter().all(|b| b.modules.len() >= 4));
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in all_benchmarks().into_iter().take(4) {
            let linked = b.link();
            let entry = b.entry_in(&linked);
            let (a, _) = run_counting(&linked, entry, &b.args).unwrap();
            let (c, _) = run_counting(&linked, entry, &b.args).unwrap();
            assert_eq!(a.ret, c.ret);
            assert_eq!(a.mem_digest, c.mem_digest);
        }
    }
}
