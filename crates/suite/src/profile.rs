//! Perf-style hot-module profiling (paper §5.3.1): run the `-O3` binary once,
//! attribute self-cycles to functions, aggregate per source module, and pick
//! the "hot" modules whose accumulated time covers ≥90% of the program.

use crate::Benchmark;
use citroen_ir::interp::{self, EventSink, OpClass};
use citroen_ir::module::Module;
use citroen_ir::FuncId;
use citroen_sim::{CostSink, Platform};
use std::collections::HashMap;

/// Sink that attributes cycles to the function currently executing
/// (self time, like `perf` with leaf attribution).
pub struct ProfilingSink<'m> {
    inner: CostSink<'m>,
    stack: Vec<u32>,
    /// Self-cycles per function id.
    pub self_cycles: Vec<f64>,
}

impl<'m> ProfilingSink<'m> {
    /// New sink for a module with `nfuncs` functions.
    pub fn new(platform: &'m Platform, nfuncs: usize) -> ProfilingSink<'m> {
        ProfilingSink {
            inner: CostSink::new(&platform.model),
            stack: Vec::new(),
            self_cycles: vec![0.0; nfuncs],
        }
    }

    fn attribute(&mut self, delta: f64) {
        if let Some(&f) = self.stack.last() {
            self.self_cycles[f as usize] += delta;
        }
    }
}

impl EventSink for ProfilingSink<'_> {
    fn op(&mut self, class: OpClass, lanes: u8) {
        let before = self.inner.cycles;
        self.inner.op(class, lanes);
        let d = self.inner.cycles - before;
        self.attribute(d);
    }
    fn mem(&mut self, addr: u64, bytes: u32, store: bool) {
        let before = self.inner.cycles;
        self.inner.mem(addr, bytes, store);
        let d = self.inner.cycles - before;
        self.attribute(d);
    }
    fn branch(&mut self, site: u32, taken: bool) {
        let before = self.inner.cycles;
        self.inner.branch(site, taken);
        let d = self.inner.cycles - before;
        self.attribute(d);
    }
    fn enter_function(&mut self, f: FuncId) {
        self.stack.push(f.0);
    }
    fn exit_function(&mut self) {
        self.stack.pop();
    }
}

/// Per-module profile of a benchmark.
#[derive(Debug, Clone)]
pub struct ModuleProfile {
    /// Fraction of total cycles attributed to each source module.
    pub fraction: Vec<f64>,
    /// Indices of modules covering ≥ `coverage` of runtime, hottest first.
    pub hot: Vec<usize>,
}

/// Profile `bench` on `platform` (using the given compiled modules, typically
/// the `-O3` binaries, or the sources when `None`) and return per-module
/// runtime fractions plus the hot set covering `coverage` of the runtime.
pub fn profile_modules(
    bench: &Benchmark,
    compiled: Option<&[Module]>,
    platform: &Platform,
    coverage: f64,
) -> ModuleProfile {
    let linked = bench.link_with(compiled);
    let entry = bench.entry_in(&linked);
    let mut sink = ProfilingSink::new(platform, linked.funcs.len());
    interp::run(&linked, entry, &bench.args, &mut sink, platform.limits)
        .unwrap_or_else(|t| panic!("{} trapped while profiling: {t}", bench.name));

    // Map linked function names back to source modules.
    let mut func_module: HashMap<&str, usize> = HashMap::new();
    for (mi, m) in bench.modules.iter().enumerate() {
        for f in &m.funcs {
            if !f.is_decl() {
                func_module.insert(f.name.as_str(), mi);
            }
        }
    }
    let mut per_module = vec![0.0; bench.modules.len()];
    for (fi, cyc) in sink.self_cycles.iter().enumerate() {
        let name = linked.funcs[fi].name.as_str();
        if let Some(&mi) = func_module.get(name) {
            per_module[mi] += cyc;
        }
    }
    let total: f64 = per_module.iter().sum::<f64>().max(1e-12);
    let fraction: Vec<f64> = per_module.iter().map(|c| c / total).collect();
    let mut order: Vec<usize> = (0..fraction.len()).collect();
    order.sort_by(|a, b| fraction[*b].partial_cmp(&fraction[*a]).unwrap());
    let mut hot = Vec::new();
    let mut covered = 0.0;
    for mi in order {
        if covered >= coverage {
            break;
        }
        hot.push(mi);
        covered += fraction[mi];
    }
    ModuleProfile { fraction, hot }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_programs_have_skewed_hotness() {
        let p = Platform::tx2();
        for b in crate::spec() {
            let prof = profile_modules(&b, None, &p, 0.9);
            let max = prof.fraction.iter().cloned().fold(0.0, f64::max);
            assert!(
                max > 0.35,
                "{}: expected a dominant module, fractions {:?}",
                b.name,
                prof.fraction
            );
            assert!(
                prof.hot.len() < b.modules.len(),
                "{}: hot set should exclude cold modules ({:?})",
                b.name,
                prof.fraction
            );
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let p = Platform::amd();
        let b = crate::speclike::spec_compress();
        let prof = profile_modules(&b, None, &p, 0.9);
        let sum: f64 = prof.fraction.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(!prof.hot.is_empty());
    }
}
