//! Seeded random program generator: produces valid, trap-free, terminating
//! modules in front-end shape. Used for fuzz-differential testing of the
//! pass pipeline and as extra workloads for scaling experiments.

use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Operand};
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::{ScalarTy, I16, I32, I64};
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of helper functions (0–3) callable from the entry.
    pub helpers: usize,
    /// Loop trip counts are drawn from this range.
    pub trip_range: (i64, i64),
    /// Maximum loop nest depth.
    pub max_depth: u32,
    /// Number of statements per block body.
    pub stmts: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { helpers: 2, trip_range: (8, 48), max_depth: 2, stmts: 6 }
    }
}

/// Generate a random module. Every address is masked in-bounds, every loop is
/// counted, and every value feeds the returned checksum, so generated
/// programs terminate, never trap, and are sensitive to miscompilation.
pub fn generate(seed: u64, cfg: &GenConfig) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new(format!("gen_{seed}.c"));
    const ELEMS: i64 = 256;
    let data: Vec<i64> = (0..ELEMS).map(|_| rng.gen_range(-1000..1000)).collect();
    let a = m.add_global("a", GlobalInit::I64s(data), false);
    let data16: Vec<i16> = (0..ELEMS).map(|_| rng.gen_range(-500..500)).collect();
    let b = m.add_global("b", GlobalInit::I16s(data16), false);
    let out = m.add_global("out", GlobalInit::Zero(8 * ELEMS as u32), true);

    // Helper functions: pure arithmetic on a couple of params.
    let mut helper_ids = Vec::new();
    for hi in 0..cfg.helpers {
        let mut f = FunctionBuilder::new(format!("helper{hi}"), vec![I64, I64], Some(I64));
        let mut cur = f.param(0);
        for _ in 0..rng.gen_range(1..=4) {
            let op = random_int_op(&mut rng);
            let rhs = if rng.gen_bool(0.5) {
                f.param(1)
            } else {
                Operand::imm64(rng.gen_range(1..64))
            };
            let rhs = safe_rhs(&mut f, op, rhs);
            cur = f.bin(op, I64, cur, rhs);
        }
        f.ret(Some(cur));
        helper_ids.push(m.add_func(f.finish()));
    }

    let mut f = FunctionBuilder::new("gen_main", vec![], Some(I64));
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), ck);
    emit_loop_nest(&mut f, &mut rng, cfg, cfg.max_depth, a, b, out, ck, &helper_ids);
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());
    m
}

fn random_int_op(rng: &mut StdRng) -> BinOp {
    use BinOp::*;
    const OPS: [BinOp; 10] = [Add, Sub, Mul, And, Or, Xor, Shl, AShr, SMin, SMax];
    OPS[rng.gen_range(0..OPS.len())]
}

/// Shifts need bounded amounts; everything else passes through.
fn safe_rhs(f: &mut FunctionBuilder, op: BinOp, rhs: Operand) -> Operand {
    match op {
        BinOp::Shl | BinOp::AShr | BinOp::LShr => {
            f.bin(BinOp::And, I64, rhs, Operand::imm64(31))
        }
        _ => rhs,
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_loop_nest(
    f: &mut FunctionBuilder,
    rng: &mut StdRng,
    cfg: &GenConfig,
    depth: u32,
    a: citroen_ir::GlobalId,
    b: citroen_ir::GlobalId,
    out: citroen_ir::GlobalId,
    ck: Operand,
    helpers: &[citroen_ir::FuncId],
) {
    let trip = rng.gen_range(cfg.trip_range.0..=cfg.trip_range.1);
    // Decide the body plan up front (the closure gets a fresh rng stream).
    let mut plan: Vec<u8> = (0..cfg.stmts).map(|_| rng.gen_range(0..5)).collect();
    if depth > 1 && rng.gen_bool(0.6) {
        plan.push(5); // nested loop
    }
    let seed2: u64 = rng.gen();
    counted_loop_mem(f, Operand::imm64(trip), |f, iv| {
        let mut rng = StdRng::seed_from_u64(seed2);
        let mut exprs: Vec<Operand> = vec![iv];
        for kind in &plan {
            match kind {
                0 => {
                    // load from a[masked]
                    let src = *pick(&mut rng, &exprs);
                    let masked = f.bin(BinOp::And, I64, src, Operand::imm64(255));
                    let addr = f.gep(Operand::Global(a), masked, 8);
                    let v = f.load(I64, addr);
                    exprs.push(v);
                }
                1 => {
                    // load i16 from b[masked] and widen
                    let src = *pick(&mut rng, &exprs);
                    let masked = f.bin(BinOp::And, I64, src, Operand::imm64(255));
                    let addr = f.gep(Operand::Global(b), masked, 2);
                    let v = f.load(I16, addr);
                    let w = f.cast(CastKind::SExt, I32, v);
                    let w2 = f.cast(CastKind::SExt, I64, w);
                    exprs.push(w2);
                }
                2 => {
                    // arithmetic
                    let op = random_int_op(&mut rng);
                    let x = *pick(&mut rng, &exprs);
                    let y = *pick(&mut rng, &exprs);
                    let y = safe_rhs(f, op, y);
                    let v = f.bin(op, I64, x, y);
                    exprs.push(v);
                }
                3 => {
                    // branchy accumulate into ck
                    let x = *pick(&mut rng, &exprs);
                    let c = f.cmp(CmpOp::Sgt, x, Operand::imm64(0));
                    let t = f.block();
                    let j = f.block();
                    f.cond_br(c, t, j);
                    f.switch_to(t);
                    let c0 = f.load(I64, ck);
                    let c1 = f.bin(BinOp::Add, I64, c0, x);
                    f.store(I64, c1, ck);
                    f.br(j);
                    f.switch_to(j);
                }
                4 => {
                    // store to out[masked] and/or helper call
                    let x = *pick(&mut rng, &exprs);
                    if !helpers.is_empty() && rng.gen_bool(0.5) {
                        let h = helpers[rng.gen_range(0..helpers.len())];
                        let y = *pick(&mut rng, &exprs);
                        let v = f.call(h, Some(I64), vec![x, y]).unwrap();
                        exprs.push(v);
                    } else {
                        let masked = f.bin(BinOp::And, I64, iv, Operand::imm64(255));
                        let addr = f.gep(Operand::Global(out), masked, 8);
                        f.store(I64, x, addr);
                    }
                }
                _ => {
                    // nested loop: sums a few loads
                    emit_inner_sum(f, &mut rng, a, ck);
                }
            }
        }
        // fold something into the checksum every iteration
        let x = *exprs.last().unwrap();
        let c0 = f.load(I64, ck);
        let mixed = f.bin(BinOp::Xor, I64, c0, x);
        f.store(I64, mixed, ck);
    });
}

fn emit_inner_sum(
    f: &mut FunctionBuilder,
    rng: &mut StdRng,
    a: citroen_ir::GlobalId,
    ck: Operand,
) {
    let trip = rng.gen_range(4..24);
    counted_loop_mem(f, Operand::imm64(trip), |f, j| {
        let masked = f.bin(BinOp::And, I64, j, Operand::imm64(255));
        let addr = f.gep(Operand::Global(a), masked, 8);
        let v = f.load(I64, addr);
        let c0 = f.load(I64, ck);
        let c1 = f.bin(BinOp::Add, I64, c0, v);
        f.store(I64, c1, ck);
    });
}

fn pick<'a>(rng: &mut StdRng, xs: &'a [Operand]) -> &'a Operand {
    &xs[rng.gen_range(0..xs.len())]
}

/// Scalar type helper re-export for generator users.
pub fn scalar_i64() -> ScalarTy {
    ScalarTy::I64
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::interp::run_counting;
    use citroen_ir::FuncId;

    #[test]
    fn generated_programs_verify_and_run() {
        for seed in 0..20 {
            let m = generate(seed, &GenConfig::default());
            citroen_ir::verify::assert_valid(&m);
            let entry = m.func_by_name("gen_main").map(|_| ()).unwrap();
            let _ = entry;
            let id = m.func_by_name("gen_main").unwrap();
            let (out, sink) =
                run_counting(&m, id, &[]).unwrap_or_else(|t| panic!("seed {seed} trapped: {t}"));
            assert!(out.ret.is_some());
            assert!(sink.total > 50, "seed {seed} generated a trivial program");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, &GenConfig::default());
        let b = generate(42, &GenConfig::default());
        assert_eq!(citroen_ir::print::fingerprint(&a), citroen_ir::print::fingerprint(&b));
        let c = generate(43, &GenConfig::default());
        assert_ne!(citroen_ir::print::fingerprint(&a), citroen_ir::print::fingerprint(&c));
    }

    #[test]
    fn generated_programs_have_loops_and_branches() {
        let m = generate(7, &GenConfig::default());
        let f = &m.funcs[m.func_by_name("gen_main").unwrap().idx()];
        assert!(f.blocks.len() > 4);
        let _ = FuncId(0);
    }
}
