//! cBench-like single-module kernels (paper Table 5.4). Each kernel is built
//! in front-end (`-O0`) shape: locals in allocas, while-form loops, no φs —
//! so the optimisation headroom the tuner explores is real.

use crate::{Benchmark, SuiteKind};
use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, CmpOp, Operand};
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::{I16, I32, I64, I8};

/// Deterministic data generator (64-bit LCG).
pub fn lcg(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 16
        })
        .collect()
}

fn lcg_i16(seed: u64, n: usize, modulo: i64) -> Vec<i16> {
    lcg(seed, n).into_iter().map(|v| ((v as i64 % modulo) - modulo / 2) as i16).collect()
}

fn lcg_i32(seed: u64, n: usize, modulo: i64) -> Vec<i32> {
    lcg(seed, n).into_iter().map(|v| ((v as i64 % modulo) - modulo / 2) as i32).collect()
}

fn lcg_i8(seed: u64, n: usize) -> Vec<i8> {
    lcg(seed, n).into_iter().map(|v| (v % 96 + 32) as i8).collect()
}

/// `telecom_gsm` — the paper's motivating benchmark: a GSM long-term-predictor
/// style cross-correlation. Hot loop: i16 dot products accumulated in i64 via
/// sign extension — the exact Fig. 5.1 shape whose vectorisation depends on
/// the `mem2reg`/`instcombine`/`slp-vectorizer` ordering.
pub fn telecom_gsm() -> Benchmark {
    let mut m = Module::new("long_term.c");
    let wt = m.add_global("wt", GlobalInit::I16s(lcg_i16(11, 64, 4000)), false);
    let dp = m.add_global("dp", GlobalInit::I16s(lcg_i16(13, 160, 4000)), false);
    let out = m.add_global("scaled", GlobalInit::Zero(2 * 64), true);

    // ltp_corr(lag_base) -> i64: Σ_{i<40} wt[i] * dp[i + lag]
    let mut f = FunctionBuilder::new("ltp_corr", vec![I64], Some(I64));
    let lag = f.param(0);
    let acc = f.alloca(8);
    f.store(I64, Operand::imm64(0), acc);
    let dbase = f.gep(Operand::Global(dp), lag, 2);
    counted_loop_mem(&mut f, Operand::imm64(40), |f, i| {
        let wa = f.gep(Operand::Global(wt), i, 2);
        let da = f.gep(dbase, i, 2);
        let w = f.load(I16, wa);
        let d = f.load(I16, da);
        let we = f.cast(CastKind::SExt, I32, w);
        let de = f.cast(CastKind::SExt, I32, d);
        let p = f.bin(BinOp::Mul, I32, we, de);
        let p64 = f.cast(CastKind::SExt, I64, p);
        let a0 = f.load(I64, acc);
        let a1 = f.bin(BinOp::Add, I64, a0, p64);
        f.store(I64, a1, acc);
    });
    let r = f.load(I64, acc);
    f.ret(Some(r));
    let ltp_corr = m.add_func(f.finish());

    // entry: find the lag with the best correlation, then scale samples.
    let mut e = FunctionBuilder::new("gsm_main", vec![], Some(I64));
    let best = e.alloca(8);
    let best_lag = e.alloca(8);
    e.store(I64, Operand::imm64(i64::MIN + 1), best);
    e.store(I64, Operand::imm64(0), best_lag);
    counted_loop_mem(&mut e, Operand::imm64(32), |e, lag| {
        let corr = e.call(ltp_corr, Some(I64), vec![lag]).unwrap();
        let cur = e.load(I64, best);
        let better = e.cmp(CmpOp::Sgt, corr, cur);
        let upd = e.block();
        let cont = e.block();
        e.cond_br(better, upd, cont);
        e.switch_to(upd);
        e.store(I64, corr, best);
        e.store(I64, lag, best_lag);
        e.br(cont);
        e.switch_to(cont);
    });
    // scaling phase: scaled[i] = clamp(wt[i] * 3 / 2)
    counted_loop_mem(&mut e, Operand::imm64(64), |e, i| {
        let wa = e.gep(Operand::Global(wt), i, 2);
        let w = e.load(I16, wa);
        let w32 = e.cast(CastKind::SExt, I32, w);
        let scaled = e.bin(BinOp::Mul, I32, w32, Operand::imm32(3));
        let half = e.bin(BinOp::AShr, I32, scaled, Operand::imm32(1));
        let lo = e.bin(BinOp::SMax, I32, half, Operand::imm32(-32768));
        let hi = e.bin(BinOp::SMin, I32, lo, Operand::imm32(32767));
        let w16 = e.cast(CastKind::Trunc, I16, hi);
        let oa = e.gep(Operand::Global(out), i, 2);
        e.store(I16, w16, oa);
    });
    let b = e.load(I64, best);
    let l = e.load(I64, best_lag);
    let lsh = e.bin(BinOp::Shl, I64, l, Operand::imm64(32));
    let ck = e.bin(BinOp::Xor, I64, b, lsh);
    e.ret(Some(ck));
    m.add_func(e.finish());

    Benchmark {
        name: "telecom_gsm",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "gsm_main",
        args: vec![],
    }
}

/// `telecom_crc32` — bitwise CRC over a 512-byte message: constant 8-trip
/// inner loop (full-unroll fodder) with data-dependent xors.
pub fn telecom_crc32() -> Benchmark {
    let mut m = Module::new("crc_32.c");
    let msg = m.add_global("msg", GlobalInit::I8s(lcg_i8(17, 512)), false);

    let mut f = FunctionBuilder::new("crc32", vec![], Some(I64));
    let crc = f.alloca(8);
    f.store(I64, Operand::imm64(0xFFFF_FFFF), crc);
    counted_loop_mem(&mut f, Operand::imm64(512), |f, i| {
        let ba = f.gep(Operand::Global(msg), i, 1);
        let byte = f.load(I8, ba);
        let b64 = f.cast(CastKind::ZExt, I64, byte);
        let c0 = f.load(I64, crc);
        let mixed = f.bin(BinOp::Xor, I64, c0, b64);
        f.store(I64, mixed, crc);
        counted_loop_mem(f, Operand::imm64(8), |f, _| {
            let c = f.load(I64, crc);
            let lsb = f.bin(BinOp::And, I64, c, Operand::imm64(1));
            let shifted = f.bin(BinOp::LShr, I64, c, Operand::imm64(1));
            let mask = f.bin(BinOp::Sub, I64, Operand::imm64(0), lsb);
            let poly = f.bin(BinOp::And, I64, mask, Operand::imm64(0xEDB8_8320));
            let nc = f.bin(BinOp::Xor, I64, shifted, poly);
            f.store(I64, nc, crc);
        });
    });
    let r = f.load(I64, crc);
    let fin = f.bin(BinOp::Xor, I64, r, Operand::imm64(0xFFFF_FFFF));
    f.ret(Some(fin));
    m.add_func(f.finish());

    Benchmark {
        name: "telecom_crc32",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "crc32",
        args: vec![],
    }
}

/// `telecom_adpcm` — ADPCM-style encoder: serial dependence through the
/// predictor state, heavy branching (select-conversion headroom).
pub fn telecom_adpcm() -> Benchmark {
    let mut m = Module::new("adpcm.c");
    let pcm = m.add_global("pcm", GlobalInit::I16s(lcg_i16(23, 800, 8000)), false);
    let code_out = m.add_global("codes", GlobalInit::Zero(800), true);
    let steps = m.add_global(
        "steps",
        GlobalInit::I32s(vec![7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31]),
        false,
    );

    let mut f = FunctionBuilder::new("adpcm_encode", vec![], Some(I64));
    let pred = f.alloca(8);
    let index = f.alloca(8);
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), pred);
    f.store(I64, Operand::imm64(0), index);
    f.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut f, Operand::imm64(800), |f, i| {
        let sa = f.gep(Operand::Global(pcm), i, 2);
        let s = f.load(I16, sa);
        let s64 = f.cast(CastKind::SExt, I64, s);
        let p = f.load(I64, pred);
        let diff = f.bin(BinOp::Sub, I64, s64, p);
        // sign and magnitude via branches (front-end shape).
        let neg = f.cmp(CmpOp::Slt, diff, Operand::imm64(0));
        let nblk = f.block();
        let pblk = f.block();
        let join = f.block();
        let magslot = f.alloca(8);
        let signslot = f.alloca(8);
        f.cond_br(neg, nblk, pblk);
        f.switch_to(nblk);
        let nd = f.bin(BinOp::Sub, I64, Operand::imm64(0), diff);
        f.store(I64, nd, magslot);
        f.store(I64, Operand::imm64(8), signslot);
        f.br(join);
        f.switch_to(pblk);
        f.store(I64, diff, magslot);
        f.store(I64, Operand::imm64(0), signslot);
        f.br(join);
        f.switch_to(join);
        let mag = f.load(I64, magslot);
        let idx = f.load(I64, index);
        let sa2 = f.gep(Operand::Global(steps), idx, 4);
        let step = f.load(I32, sa2);
        let step64 = f.cast(CastKind::SExt, I64, step);
        let q = f.bin(BinOp::SDiv, I64, mag, step64);
        let q3 = f.bin(BinOp::SMin, I64, q, Operand::imm64(7));
        let sign = f.load(I64, signslot);
        let code = f.bin(BinOp::Or, I64, q3, sign);
        let ca = f.gep(Operand::Global(code_out), i, 1);
        let code8 = f.cast(CastKind::Trunc, I8, code);
        f.store(I8, code8, ca);
        // predictor update: pred += (2q+1)*step/2 with sign
        let q2 = f.bin(BinOp::Shl, I64, q3, Operand::imm64(1));
        let q21 = f.bin(BinOp::Add, I64, q2, Operand::imm64(1));
        let dq = f.bin(BinOp::Mul, I64, q21, step64);
        let dq2 = f.bin(BinOp::AShr, I64, dq, Operand::imm64(1));
        let dir = f.cmp(CmpOp::Eq, sign, Operand::imm64(8));
        let ndq = f.bin(BinOp::Sub, I64, Operand::imm64(0), dq2);
        let delta = f.select(I64, dir, ndq, dq2);
        let np = f.bin(BinOp::Add, I64, p, delta);
        f.store(I64, np, pred);
        // index update: up if q3 >= 4 else down, clamped 0..15
        let up = f.cmp(CmpOp::Sge, q3, Operand::imm64(4));
        let inc = f.select(I64, up, Operand::imm64(2), Operand::imm64(-1));
        let ni = f.bin(BinOp::Add, I64, idx, inc);
        let ni1 = f.bin(BinOp::SMax, I64, ni, Operand::imm64(0));
        let ni2 = f.bin(BinOp::SMin, I64, ni1, Operand::imm64(15));
        f.store(I64, ni2, index);
        let c0 = f.load(I64, ck);
        let c1 = f.bin(BinOp::Add, I64, c0, code);
        f.store(I64, c1, ck);
    });
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "telecom_adpcm",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "adpcm_encode",
        args: vec![],
    }
}

/// `automotive_bitcount` — three population-count methods over a word stream:
/// Kernighan's data-dependent loop, byte-table lookups, and SWAR arithmetic.
pub fn automotive_bitcount() -> Benchmark {
    let mut m = Module::new("bitcnt.c");
    let data: Vec<i64> = lcg(31, 256).into_iter().map(|v| v as i64).collect();
    let words = m.add_global("words", GlobalInit::I64s(data), false);
    let table: Vec<i8> = (0..256).map(|i: i32| i.count_ones() as i8).collect();
    let btab = m.add_global("btab", GlobalInit::I8s(table), false);

    // kernighan(x) -> i64
    let mut k = FunctionBuilder::new("kernighan", vec![I64], Some(I64));
    let x = k.alloca(8);
    let n = k.alloca(8);
    k.store(I64, k.param(0), x);
    k.store(I64, Operand::imm64(0), n);
    let check = k.block();
    let body = k.block();
    let done = k.block();
    k.br(check);
    k.switch_to(check);
    let xv = k.load(I64, x);
    let nz = k.cmp(CmpOp::Ne, xv, Operand::imm64(0));
    k.cond_br(nz, body, done);
    k.switch_to(body);
    let x1 = k.bin(BinOp::Sub, I64, xv, Operand::imm64(1));
    let x2 = k.bin(BinOp::And, I64, xv, x1);
    k.store(I64, x2, x);
    let n0 = k.load(I64, n);
    let n1 = k.bin(BinOp::Add, I64, n0, Operand::imm64(1));
    k.store(I64, n1, n);
    k.br(check);
    k.switch_to(done);
    let r = k.load(I64, n);
    k.ret(Some(r));
    let kernighan = m.add_func(k.finish());

    // bytetab(x): Σ table[(x >> 8k) & 0xff]
    let mut t = FunctionBuilder::new("bytetab", vec![I64], Some(I64));
    let acc = t.alloca(8);
    t.store(I64, Operand::imm64(0), acc);
    let xval = t.param(0);
    counted_loop_mem(&mut t, Operand::imm64(8), |t, k8| {
        let sh = t.bin(BinOp::Shl, I64, k8, Operand::imm64(3));
        let piece = t.bin(BinOp::LShr, I64, xval, sh);
        let byte = t.bin(BinOp::And, I64, piece, Operand::imm64(0xff));
        let ta = t.gep(Operand::Global(btab), byte, 1);
        let c = t.load(I8, ta);
        let c64 = t.cast(CastKind::ZExt, I64, c);
        let a0 = t.load(I64, acc);
        let a1 = t.bin(BinOp::Add, I64, a0, c64);
        t.store(I64, a1, acc);
    });
    let r = t.load(I64, acc);
    t.ret(Some(r));
    let bytetab = m.add_func(t.finish());

    // swar(x): parallel bit count (pure arithmetic — readnone fodder)
    let mut s = FunctionBuilder::new("swar", vec![I64], Some(I64));
    let x0 = s.param(0);
    let s1 = s.bin(BinOp::LShr, I64, x0, Operand::imm64(1));
    let m1 = s.bin(BinOp::And, I64, s1, Operand::imm64(0x5555555555555555));
    let a = s.bin(BinOp::Sub, I64, x0, m1);
    let a_lo = s.bin(BinOp::And, I64, a, Operand::imm64(0x3333333333333333));
    let a_hi0 = s.bin(BinOp::LShr, I64, a, Operand::imm64(2));
    let a_hi = s.bin(BinOp::And, I64, a_hi0, Operand::imm64(0x3333333333333333));
    let b = s.bin(BinOp::Add, I64, a_lo, a_hi);
    let c0 = s.bin(BinOp::LShr, I64, b, Operand::imm64(4));
    let c1 = s.bin(BinOp::Add, I64, b, c0);
    let c = s.bin(BinOp::And, I64, c1, Operand::imm64(0x0f0f0f0f0f0f0f0f));
    let p = s.bin(BinOp::Mul, I64, c, Operand::imm64(0x0101010101010101));
    let r = s.bin(BinOp::LShr, I64, p, Operand::imm64(56));
    s.ret(Some(r));
    let swar = m.add_func(s.finish());

    let mut e = FunctionBuilder::new("bitcount_main", vec![], Some(I64));
    let total = e.alloca(8);
    e.store(I64, Operand::imm64(0), total);
    counted_loop_mem(&mut e, Operand::imm64(256), |e, i| {
        let wa = e.gep(Operand::Global(words), i, 8);
        let w = e.load(I64, wa);
        let c1 = e.call(kernighan, Some(I64), vec![w]).unwrap();
        let c2 = e.call(bytetab, Some(I64), vec![w]).unwrap();
        let c3 = e.call(swar, Some(I64), vec![w]).unwrap();
        let t0 = e.load(I64, total);
        let t1 = e.bin(BinOp::Add, I64, t0, c1);
        let t2 = e.bin(BinOp::Add, I64, t1, c2);
        let t3 = e.bin(BinOp::Add, I64, t2, c3);
        e.store(I64, t3, total);
    });
    let r = e.load(I64, total);
    e.ret(Some(r));
    m.add_func(e.finish());

    Benchmark {
        name: "automotive_bitcount",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "bitcount_main",
        args: vec![],
    }
}

/// `automotive_susan` — 3×3 smoothing stencil over a 32×32 i16 image.
pub fn automotive_susan() -> Benchmark {
    let mut m = Module::new("susan.c");
    let img = m.add_global("img", GlobalInit::I16s(lcg_i16(41, 32 * 32, 256)), false);
    let out = m.add_global("smooth", GlobalInit::Zero(2 * 32 * 32), true);
    let kern = m.add_global("kern", GlobalInit::I32s(vec![1, 2, 1, 2, 4, 2, 1, 2, 1]), false);

    let mut f = FunctionBuilder::new("susan_smooth", vec![], Some(I64));
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut f, Operand::imm64(30), |f, y| {
        counted_loop_mem(f, Operand::imm64(30), |f, x| {
            let acc = f.alloca(8);
            f.store(I64, Operand::imm64(0), acc);
            counted_loop_mem(f, Operand::imm64(3), |f, ky| {
                counted_loop_mem(f, Operand::imm64(3), |f, kx| {
                    let yy = f.bin(BinOp::Add, I64, y, ky);
                    let row = f.bin(BinOp::Mul, I64, yy, Operand::imm64(32));
                    let xx = f.bin(BinOp::Add, I64, x, kx);
                    let idx = f.bin(BinOp::Add, I64, row, xx);
                    let pa = f.gep(Operand::Global(img), idx, 2);
                    let pix = f.load(I16, pa);
                    let p32 = f.cast(CastKind::SExt, I32, pix);
                    let krow = f.bin(BinOp::Mul, I64, ky, Operand::imm64(3));
                    let kidx = f.bin(BinOp::Add, I64, krow, kx);
                    let ka = f.gep(Operand::Global(kern), kidx, 4);
                    let kv = f.load(I32, ka);
                    let prod = f.bin(BinOp::Mul, I32, p32, kv);
                    let p64 = f.cast(CastKind::SExt, I64, prod);
                    let a0 = f.load(I64, acc);
                    let a1 = f.bin(BinOp::Add, I64, a0, p64);
                    f.store(I64, a1, acc);
                });
            });
            let total = f.load(I64, acc);
            let avg = f.bin(BinOp::AShr, I64, total, Operand::imm64(4));
            let a16 = f.cast(CastKind::Trunc, I16, avg);
            let orow = f.bin(BinOp::Mul, I64, y, Operand::imm64(32));
            let oidx = f.bin(BinOp::Add, I64, orow, x);
            let oa = f.gep(Operand::Global(out), oidx, 2);
            f.store(I16, a16, oa);
            let c0 = f.load(I64, ck);
            let c1 = f.bin(BinOp::Add, I64, c0, avg);
            f.store(I64, c1, ck);
        });
    });
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "automotive_susan",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "susan_smooth",
        args: vec![],
    }
}

/// `automotive_shellsort` — shellsort of 256 i32 keys: data-dependent inner
/// while loops, lots of branching and memory traffic.
pub fn automotive_shellsort() -> Benchmark {
    let mut m = Module::new("qsort_like.c");
    let arr = m.add_global("arr", GlobalInit::I32s(lcg_i32(53, 256, 100000)), true);

    let mut f = FunctionBuilder::new("shellsort", vec![], Some(I64));
    let gaps = [64i64, 16, 4, 1];
    for gap in gaps {
        counted_loop_mem(&mut f, Operand::imm64(256 - gap), |f, k| {
            // i = k + gap; tmp = arr[i]; j = i; while j>=gap && arr[j-gap] > tmp: move
            let i = f.bin(BinOp::Add, I64, k, Operand::imm64(gap));
            let ta = f.gep(Operand::Global(arr), i, 4);
            let tmp = f.load(I32, ta);
            let j = f.alloca(8);
            f.store(I64, i, j);
            let check = f.block();
            let body = f.block();
            let place = f.block();
            f.br(check);
            f.switch_to(check);
            let jv = f.load(I64, j);
            let ge = f.cmp(CmpOp::Sge, jv, Operand::imm64(gap));
            let deeper = f.block();
            f.cond_br(ge, deeper, place);
            f.switch_to(deeper);
            let jg = f.bin(BinOp::Sub, I64, jv, Operand::imm64(gap));
            let pa = f.gep(Operand::Global(arr), jg, 4);
            let prev = f.load(I32, pa);
            let bigger = f.cmp(CmpOp::Sgt, prev, tmp);
            f.cond_br(bigger, body, place);
            f.switch_to(body);
            let dst = f.gep(Operand::Global(arr), jv, 4);
            f.store(I32, prev, dst);
            f.store(I64, jg, j);
            f.br(check);
            f.switch_to(place);
            let jf = f.load(I64, j);
            let fa = f.gep(Operand::Global(arr), jf, 4);
            f.store(I32, tmp, fa);
        });
    }
    // checksum: Σ arr[i] * (i+1)
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut f, Operand::imm64(256), |f, i| {
        let aa = f.gep(Operand::Global(arr), i, 4);
        let v = f.load(I32, aa);
        let v64 = f.cast(CastKind::SExt, I64, v);
        let w = f.bin(BinOp::Add, I64, i, Operand::imm64(1));
        let p = f.bin(BinOp::Mul, I64, v64, w);
        let c0 = f.load(I64, ck);
        let c1 = f.bin(BinOp::Add, I64, c0, p);
        f.store(I64, c1, ck);
    });
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "automotive_shellsort",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "shellsort",
        args: vec![],
    }
}

/// `security_sha` — SHA-1-style compression rounds: 32-bit rotations, xors
/// and additions over an expanding message schedule.
pub fn security_sha() -> Benchmark {
    let mut m = Module::new("sha_driver.c");
    let blocks = m.add_global("blocks", GlobalInit::I32s(lcg_i32(61, 16 * 8, 1 << 30)), false);
    let w = m.add_global("w", GlobalInit::Zero(4 * 80), true);

    // rotl(x, n) over i32 semantics, pure helper.
    let mut rot = FunctionBuilder::new("rotl32", vec![I32, I64], Some(I32));
    let x = rot.param(0);
    let n = rot.param(1);
    let n32 = rot.cast(CastKind::Trunc, I32, n);
    let left = rot.bin(BinOp::Shl, I32, x, n32);
    let inv = rot.bin(BinOp::Sub, I64, Operand::imm64(32), n);
    let inv32 = rot.cast(CastKind::Trunc, I32, inv);
    let right = rot.bin(BinOp::LShr, I32, x, inv32);
    let r = rot.bin(BinOp::Or, I32, left, right);
    rot.ret(Some(r));
    let rotl32 = m.add_func(rot.finish());

    let mut f = FunctionBuilder::new("sha_main", vec![], Some(I64));
    let h = f.alloca(8);
    f.store(I64, Operand::imm64(0x6745_2301), h);
    counted_loop_mem(&mut f, Operand::imm64(8), |f, blk| {
        // schedule: w[0..16] from input, w[16..80] expanded
        let boff = f.bin(BinOp::Mul, I64, blk, Operand::imm64(16));
        counted_loop_mem(f, Operand::imm64(16), |f, i| {
            let src = f.bin(BinOp::Add, I64, boff, i);
            let sa = f.gep(Operand::Global(blocks), src, 4);
            let v = f.load(I32, sa);
            let da = f.gep(Operand::Global(w), i, 4);
            f.store(I32, v, da);
        });
        counted_loop_mem(f, Operand::imm64(64), |f, k| {
            let i = f.bin(BinOp::Add, I64, k, Operand::imm64(16));
            let i3 = f.bin(BinOp::Sub, I64, i, Operand::imm64(3));
            let i8_ = f.bin(BinOp::Sub, I64, i, Operand::imm64(8));
            let i14 = f.bin(BinOp::Sub, I64, i, Operand::imm64(14));
            let i16_ = f.bin(BinOp::Sub, I64, i, Operand::imm64(16));
            let a3 = f.gep(Operand::Global(w), i3, 4);
            let a8 = f.gep(Operand::Global(w), i8_, 4);
            let a14 = f.gep(Operand::Global(w), i14, 4);
            let a16 = f.gep(Operand::Global(w), i16_, 4);
            let v3 = f.load(I32, a3);
            let v8 = f.load(I32, a8);
            let v14 = f.load(I32, a14);
            let v16 = f.load(I32, a16);
            let x1 = f.bin(BinOp::Xor, I32, v3, v8);
            let x2 = f.bin(BinOp::Xor, I32, x1, v14);
            let x3 = f.bin(BinOp::Xor, I32, x2, v16);
            let rotated = f.call(rotl32, Some(I32), vec![x3, Operand::imm64(1)]).unwrap();
            let da = f.gep(Operand::Global(w), i, 4);
            f.store(I32, rotated, da);
        });
        // compression-ish: h = rotl(h,5) + w[i] + K
        counted_loop_mem(f, Operand::imm64(80), |f, i| {
            let h0 = f.load(I64, h);
            let h32 = f.cast(CastKind::Trunc, I32, h0);
            let hr = f.call(rotl32, Some(I32), vec![h32, Operand::imm64(5)]).unwrap();
            let wa = f.gep(Operand::Global(w), i, 4);
            let wi = f.load(I32, wa);
            let s1 = f.bin(BinOp::Add, I32, hr, wi);
            let s2 = f.bin(BinOp::Add, I32, s1, Operand::imm32(0x5A82_7999u32 as i32));
            let s64 = f.cast(CastKind::SExt, I64, s2);
            f.store(I64, s64, h);
        });
    });
    let r = f.load(I64, h);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "security_sha",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "sha_main",
        args: vec![],
    }
}

/// `network_dijkstra` — O(V²) single-source shortest paths over a 48-node
/// dense adjacency matrix: branchy min-search, memory-bound relaxation.
pub fn network_dijkstra() -> Benchmark {
    const V: i64 = 48;
    let mut m = Module::new("dijkstra.c");
    let adj: Vec<i32> = lcg(71, (V * V) as usize)
        .into_iter()
        .map(|v| (v % 97 + 1) as i32)
        .collect();
    let g = m.add_global("adj", GlobalInit::I32s(adj), false);
    let dist = m.add_global("dist", GlobalInit::Zero(8 * V as u32), true);
    let done = m.add_global("done", GlobalInit::Zero(V as u32), true);

    let mut f = FunctionBuilder::new("dijkstra", vec![], Some(I64));
    const INF: i64 = 1 << 40;
    counted_loop_mem(&mut f, Operand::imm64(V), |f, i| {
        let da = f.gep(Operand::Global(dist), i, 8);
        f.store(I64, Operand::imm64(INF), da);
        let na = f.gep(Operand::Global(done), i, 1);
        f.store(I8, Operand::ImmI(0, citroen_ir::ScalarTy::I8), na);
    });
    f.store(I64, Operand::imm64(0), Operand::Global(dist));
    counted_loop_mem(&mut f, Operand::imm64(V), |f, _| {
        // find unvisited min
        let best = f.alloca(8);
        let besti = f.alloca(8);
        f.store(I64, Operand::imm64(INF + 1), best);
        f.store(I64, Operand::imm64(-1), besti);
        counted_loop_mem(f, Operand::imm64(V), |f, j| {
            let na = f.gep(Operand::Global(done), j, 1);
            let seen = f.load(I8, na);
            let s64 = f.cast(CastKind::ZExt, I64, seen);
            let fresh = f.cmp(CmpOp::Eq, s64, Operand::imm64(0));
            let chk = f.block();
            let cont = f.block();
            f.cond_br(fresh, chk, cont);
            f.switch_to(chk);
            let da = f.gep(Operand::Global(dist), j, 8);
            let d = f.load(I64, da);
            let b = f.load(I64, best);
            let better = f.cmp(CmpOp::Slt, d, b);
            let upd = f.block();
            f.cond_br(better, upd, cont);
            f.switch_to(upd);
            f.store(I64, d, best);
            f.store(I64, j, besti);
            f.br(cont);
            f.switch_to(cont);
        });
        let u = f.load(I64, besti);
        let ua = f.gep(Operand::Global(done), u, 1);
        f.store(I8, Operand::ImmI(1, citroen_ir::ScalarTy::I8), ua);
        let du_a = f.gep(Operand::Global(dist), u, 8);
        let du = f.load(I64, du_a);
        // relax neighbours
        let urow = f.bin(BinOp::Mul, I64, u, Operand::imm64(V));
        counted_loop_mem(f, Operand::imm64(V), |f, v| {
            let eidx = f.bin(BinOp::Add, I64, urow, v);
            let ea = f.gep(Operand::Global(g), eidx, 4);
            let wv = f.load(I32, ea);
            let w64 = f.cast(CastKind::SExt, I64, wv);
            let cand = f.bin(BinOp::Add, I64, du, w64);
            let dva = f.gep(Operand::Global(dist), v, 8);
            let dv = f.load(I64, dva);
            let better = f.cmp(CmpOp::Slt, cand, dv);
            let upd = f.block();
            let cont = f.block();
            f.cond_br(better, upd, cont);
            f.switch_to(upd);
            f.store(I64, cand, dva);
            f.br(cont);
            f.switch_to(cont);
        });
    });
    // checksum = Σ dist
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut f, Operand::imm64(V), |f, i| {
        let da = f.gep(Operand::Global(dist), i, 8);
        let d = f.load(I64, da);
        let c0 = f.load(I64, ck);
        let c1 = f.bin(BinOp::Add, I64, c0, d);
        f.store(I64, c1, ck);
    });
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "network_dijkstra",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "dijkstra",
        args: vec![],
    }
}

/// `office_stringsearch` — naive multi-pattern substring search over 2 KiB of
/// text: byte loads and early-exit inner loops.
pub fn office_stringsearch() -> Benchmark {
    let mut m = Module::new("search_large.c");
    let text = m.add_global("text", GlobalInit::I8s(lcg_i8(83, 2048)), false);
    // Plant one of the patterns a few times so matches actually occur.
    let mut text_bytes = lcg_i8(83, 2048);
    for pos in [100usize, 700, 1500] {
        for (k, ch) in [72i8, 101, 108, 108, 111].iter().enumerate() {
            text_bytes[pos + k] = *ch;
        }
    }
    m.globals[text.idx()].init = GlobalInit::I8s(text_bytes);
    let pat = m.add_global("pat", GlobalInit::I8s(vec![72, 101, 108, 108, 111]), false); // "Hello"

    let mut f = FunctionBuilder::new("strsearch", vec![], Some(I64));
    let found = f.alloca(8);
    f.store(I64, Operand::imm64(0), found);
    counted_loop_mem(&mut f, Operand::imm64(2048 - 5), |f, pos| {
        // inner compare with early exit
        let k = f.alloca(8);
        let ok = f.alloca(8);
        f.store(I64, Operand::imm64(0), k);
        f.store(I64, Operand::imm64(1), ok);
        let check = f.block();
        let body = f.block();
        let after = f.block();
        f.br(check);
        f.switch_to(check);
        let kv = f.load(I64, k);
        let more = f.cmp(CmpOp::Slt, kv, Operand::imm64(5));
        f.cond_br(more, body, after);
        f.switch_to(body);
        let ti = f.bin(BinOp::Add, I64, pos, kv);
        let ta = f.gep(Operand::Global(text), ti, 1);
        let tc = f.load(I8, ta);
        let pa = f.gep(Operand::Global(pat), kv, 1);
        let pc = f.load(I8, pa);
        let eq = f.cmp(CmpOp::Eq, tc, pc);
        let cont = f.block();
        let fail = f.block();
        f.cond_br(eq, cont, fail);
        f.switch_to(fail);
        f.store(I64, Operand::imm64(0), ok);
        f.br(after);
        f.switch_to(cont);
        let k1 = f.bin(BinOp::Add, I64, kv, Operand::imm64(1));
        f.store(I64, k1, k);
        f.br(check);
        f.switch_to(after);
        let okv = f.load(I64, ok);
        let f0 = f.load(I64, found);
        let f1 = f.bin(BinOp::Add, I64, f0, okv);
        f.store(I64, f1, found);
    });
    let r = f.load(I64, found);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "office_stringsearch",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "strsearch",
        args: vec![],
    }
}

/// `consumer_jpeg_dct` — 8×8 forward DCT-style transform on 4 image blocks:
/// constant-trip triple loops of i16×i16 MACs (unroll + SLP heaven).
pub fn consumer_jpeg_dct() -> Benchmark {
    let mut m = Module::new("jcdctmgr.c");
    let img = m.add_global("img", GlobalInit::I16s(lcg_i16(97, 64 * 4, 256)), false);
    let coef: Vec<i16> = (0..64).map(|i| (((i * 37) % 61) as i16) - 30).collect();
    let ctab = m.add_global("ctab", GlobalInit::I16s(coef), false);
    let out = m.add_global("dct", GlobalInit::Zero(4 * 64 * 4), true);

    // dct_row(block_off, u) -> i64: Σ_x img[b+u*8+x]*ctab[u*8+x] (i16 dot)
    let mut rf = FunctionBuilder::new("dct_row", vec![I64, I64], Some(I64));
    let boff = rf.param(0);
    let u = rf.param(1);
    let acc = rf.alloca(8);
    rf.store(I64, Operand::imm64(0), acc);
    let urow = rf.bin(BinOp::Shl, I64, u, Operand::imm64(3));
    let ibase0 = rf.bin(BinOp::Add, I64, boff, urow);
    let ibase = rf.gep(Operand::Global(img), ibase0, 2);
    let cbase = rf.gep(Operand::Global(ctab), urow, 2);
    counted_loop_mem(&mut rf, Operand::imm64(8), |rf, x| {
        let ia = rf.gep(ibase, x, 2);
        let ca = rf.gep(cbase, x, 2);
        let p = rf.load(I16, ia);
        let c = rf.load(I16, ca);
        let pe = rf.cast(CastKind::SExt, I32, p);
        let ce = rf.cast(CastKind::SExt, I32, c);
        let prod = rf.bin(BinOp::Mul, I32, pe, ce);
        let p64 = rf.cast(CastKind::SExt, I64, prod);
        let a0 = rf.load(I64, acc);
        let a1 = rf.bin(BinOp::Add, I64, a0, p64);
        rf.store(I64, a1, acc);
    });
    let r = rf.load(I64, acc);
    rf.ret(Some(r));
    let dct_row = m.add_func(rf.finish());

    let mut f = FunctionBuilder::new("jpeg_dct", vec![], Some(I64));
    let ck = f.alloca(8);
    f.store(I64, Operand::imm64(0), ck);
    counted_loop_mem(&mut f, Operand::imm64(4), |f, blk| {
        let boff = f.bin(BinOp::Shl, I64, blk, Operand::imm64(6));
        counted_loop_mem(f, Operand::imm64(8), |f, u| {
            let s = f.call(dct_row, Some(I64), vec![boff, u]).unwrap();
            let scaled = f.bin(BinOp::AShr, I64, s, Operand::imm64(3));
            let orow = f.bin(BinOp::Add, I64, boff, u);
            let oa = f.gep(Operand::Global(out), orow, 4);
            let s32 = f.cast(CastKind::Trunc, I32, scaled);
            f.store(I32, s32, oa);
            let c0 = f.load(I64, ck);
            let c1 = f.bin(BinOp::Xor, I64, c0, scaled);
            f.store(I64, c1, ck);
        });
    });
    let r = f.load(I64, ck);
    f.ret(Some(r));
    m.add_func(f.finish());

    Benchmark {
        name: "consumer_jpeg_dct",
        suite: SuiteKind::CBench,
        modules: vec![m],
        entry: "jpeg_dct",
        args: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::interp::run_counting;

    #[test]
    fn gsm_checksum_stable() {
        let b = telecom_gsm();
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        // Golden value: any change to the kernel or interpreter semantics
        // that alters behaviour shows up here.
        let v = match out.ret.unwrap() {
            citroen_ir::interp::Value::I(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(v, 0);
    }

    #[test]
    fn crc_differs_on_data() {
        // Sanity: CRC of the fixed message is a specific nonzero value and the
        // computation is bit-sensitive (mutating the message changes it).
        let b = telecom_crc32();
        let linked = b.link();
        let (o1, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        let mut b2 = telecom_crc32();
        if let GlobalInit::I8s(v) = &mut b2.modules[0].globals[0].init {
            v[0] ^= 1;
        }
        let linked2 = b2.link();
        let (o2, _) = run_counting(&linked2, b2.entry_in(&linked2), &[]).unwrap();
        assert_ne!(o1.ret, o2.ret);
    }

    #[test]
    fn shellsort_sorts() {
        // After running, the array global must be sorted; re-derive by running
        // and checking the checksum equals the sorted-array checksum.
        let b = automotive_shellsort();
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        let mut data = lcg_i32(53, 256, 100000);
        data.sort_unstable();
        let expect: i64 =
            data.iter().enumerate().map(|(i, v)| (*v as i64) * (i as i64 + 1)).sum();
        assert_eq!(out.ret, Some(citroen_ir::interp::Value::I(expect)));
    }

    #[test]
    fn dijkstra_matches_reference() {
        const V: usize = 48;
        let adj: Vec<i64> =
            lcg(71, V * V).into_iter().map(|v| (v % 97 + 1) as i64).collect();
        // Reference Dijkstra in Rust.
        const INF: i64 = 1 << 40;
        let mut dist = vec![INF; V];
        let mut done = vec![false; V];
        dist[0] = 0;
        for _ in 0..V {
            let mut best = INF + 1;
            let mut u = usize::MAX;
            for j in 0..V {
                if !done[j] && dist[j] < best {
                    best = dist[j];
                    u = j;
                }
            }
            done[u] = true;
            for v in 0..V {
                let cand = dist[u] + adj[u * V + v];
                if cand < dist[v] {
                    dist[v] = cand;
                }
            }
        }
        let expect: i64 = dist.iter().sum();

        let b = network_dijkstra();
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        assert_eq!(out.ret, Some(citroen_ir::interp::Value::I(expect)));
    }

    #[test]
    fn stringsearch_finds_planted_patterns() {
        let b = office_stringsearch();
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        if let Some(citroen_ir::interp::Value::I(v)) = out.ret {
            assert!(v >= 3, "must find the 3 planted 'Hello's, got {v}");
        } else {
            panic!();
        }
    }

    #[test]
    fn bitcount_methods_agree() {
        // total = 3 × Σ popcount(words): all three methods must agree.
        let words: Vec<u64> = lcg(31, 256);
        let expect: i64 = words.iter().map(|w| 3 * w.count_ones() as i64).sum();
        let b = automotive_bitcount();
        let linked = b.link();
        let (out, _) = run_counting(&linked, b.entry_in(&linked), &[]).unwrap();
        assert_eq!(out.ret, Some(citroen_ir::interp::Value::I(expect)));
    }
}
