//! Deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), state-initialised from a
//! `u64` seed through SplitMix64 — the standard seeding recipe recommended by
//! the xoshiro authors. The public surface deliberately mirrors the subset of
//! the `rand` crate the workspace uses, so migrating a call site is a
//! one-line `use` change: [`StdRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], plus [`Rng::shuffle`] /
//! [`Rng::choose`] helpers for the tuner baselines.
//!
//! **Stream stability is part of the contract.** Every experiment in the
//! reproduction is an aggregate over seeded repetitions; the known-answer
//! tests at the bottom of this file pin the first outputs for seed 42 so that
//! a refactor that perturbs the stream is caught immediately rather than
//! discovered as an unexplained shift in every figure.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Core generator
// ---------------------------------------------------------------------------

/// A generator that can produce uniformly distributed `u64`s. Everything else
/// ([`Rng`]) is derived from this single method.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: advances `state` and returns the next output. Used only
/// to expand a 64-bit seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — 256 bits of state, period 2^256 − 1, passes BigCrush.
/// Named `StdRng` to keep parity with the `rand` API the codebase was
/// written against (the stream differs from `rand`'s ChaCha12 `StdRng`;
/// seeds remain deterministic, which is what the experiments rely on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Re-export under a `rngs` module for drop-in parity with
/// `rand::rngs::StdRng` import paths.
pub mod rngs {
    pub use super::StdRng;
}

// ---------------------------------------------------------------------------
// Sampling traits
// ---------------------------------------------------------------------------

/// Types samplable uniformly over their full domain by [`Rng::gen`]
/// (integers: full bit range; floats: `[0, 1)`; bool: fair coin).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` without modulo bias (Lemire's multiply-shift
/// with rejection). `n` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening multiply maps next_u64() into [0, n); reject the small biased
    // zone so every residue is exactly equally likely.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

// ---------------------------------------------------------------------------
// The user-facing trait
// ---------------------------------------------------------------------------

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value uniform over `T`'s standard domain (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[uniform_below(self, slice.len() as u64) as usize])
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the first 8 outputs for seed 42 are pinned. If this
    /// test fails, the generator stream changed and EVERY seeded experiment
    /// in the repository silently re-rolled — do not "fix" the constants
    /// without understanding why the stream moved.
    #[test]
    fn known_answer_seed_42() {
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            KNOWN_ANSWER_SEED_42,
            "xoshiro256++ stream for seed 42 changed"
        );
    }

    /// Filled in from the reference implementation; see `known_answer_seed_42`.
    const KNOWN_ANSWER_SEED_42: [u64; 8] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
        0xCB23_1C38_7484_6A73,
        0x968D_9F00_4E50_DE7D,
        0x2017_18FF_221A_3556,
        0x9AE9_4E07_0ED8_CB46,
    ];

    #[test]
    fn splitmix_seeding_differs_per_seed() {
        let a: Vec<u64> =
            (0..4).scan(StdRng::seed_from_u64(1), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..4).scan(StdRng::seed_from_u64(2), |r, _| Some(r.next_u64())).collect();
        assert_ne!(a, b);
        // Same seed → same stream, from a fresh generator.
        let c: Vec<u64> =
            (0..4).scan(StdRng::seed_from_u64(1), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
            let w = rng.gen_range(1i64..=24);
            assert!((1..=24).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        // Every value of a small range must appear (unbiasedness smoke test).
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values should occur: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 rate off: {hits}");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // Deterministic for a fixed seed.
        let mut w: Vec<u32> = (0..50).collect();
        StdRng::seed_from_u64(9).shuffle(&mut w);
        assert_eq!(v, w);
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
    }

    #[test]
    fn works_through_mut_references() {
        // `&mut StdRng` must satisfy `impl Rng` bounds (reborrow pattern used
        // across the workspace: helpers take `&mut impl Rng`).
        fn helper(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = helper(&mut rng);
        let b = helper(&mut rng);
        assert_ne!(a, b);
    }
}
