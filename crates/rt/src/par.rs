//! Scoped-thread parallel map — the in-tree replacement for the
//! `rayon::into_par_iter().map().collect()` pattern in the batch-evaluation
//! hot paths (`bench` ch4/ch5 run dozens of independent seeded tuning
//! repetitions per table row; each is seconds of work, so coarse-grained
//! work claiming is all the scheduling this workload needs).
//!
//! Work distribution: items are split into chunks (a few per worker), workers
//! claim whole chunks through a shared atomic cursor (workers that finish
//! early steal the remaining tail), results land in per-chunk slots, and
//! order is preserved — `par_map(xs, f)` returns exactly `xs.map(f)` in input
//! order regardless of interleaving. Thread
//! count comes from `std::thread::available_parallelism`, overridable with
//! the `CITROEN_THREADS` environment variable (set it to `1` to debug).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Telemetry hooks
// ---------------------------------------------------------------------------

/// Observer hooks a higher layer (the `citroen-telemetry` crate) installs so
/// worker threads can attribute their work to the span that called `par_map`.
/// `rt` sits below every other crate and cannot depend on the telemetry
/// crate, so propagation happens through plain function pointers: `capture`
/// runs on the calling thread before workers spawn, its token is handed to
/// `worker_start` on each worker thread, and `worker_end` closes the
/// worker's attribution scope. The two timing arguments let the observer
/// split a worker's wall time into queue wait (spawn → first claim) and work.
#[derive(Clone, Copy)]
pub struct TaskHooks {
    /// Called on the `par_map` caller's thread; returns an opaque scope token
    /// (e.g. the current span id; 0 = none).
    pub capture: fn() -> u64,
    /// Called on each worker thread before it claims work:
    /// `(token, queue_wait_ns)`.
    pub worker_start: fn(u64, u64),
    /// Called on each worker thread after its last chunk: `(work_ns)`.
    pub worker_end: fn(u64),
}

static TASK_HOOKS: OnceLock<TaskHooks> = OnceLock::new();

/// Install the process-wide worker hooks. The first caller wins; returns
/// whether this call installed its hooks.
pub fn set_task_hooks(hooks: TaskHooks) -> bool {
    TASK_HOOKS.set(hooks).is_ok()
}

/// Number of worker threads to use for `n_items` of work.
pub fn thread_count(n_items: usize) -> usize {
    let hw = std::env::var("CITROEN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

// ---------------------------------------------------------------------------
// Chunked work queue (shared by `par_map` and `WorkerPool::map`)
// ---------------------------------------------------------------------------

/// Chunked work queue: the input is pre-split into ~4 chunks per worker —
/// small enough that an unlucky slow chunk still load-balances, large
/// enough to amortise the claim — and workers grab whole chunks through a
/// single shared atomic cursor. Each chunk's Mutex is locked exactly twice
/// (claim, deposit) by one worker, so there is no lock contention and no
/// per-item locking; flattening the chunk results in queue order restores
/// the input order.
struct ChunkQueue<T, R> {
    chunks: Vec<Mutex<Option<Vec<T>>>>,
    outputs: Vec<Mutex<Option<Vec<R>>>>,
    next: AtomicUsize,
}

impl<T: Send, R: Send> ChunkQueue<T, R> {
    fn new(mut items: Vec<T>, workers: usize) -> ChunkQueue<T, R> {
        let chunk_size = items.len().div_ceil(workers * 4).max(1);
        let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::new();
        while !items.is_empty() {
            let rest = items.split_off(chunk_size.min(items.len()));
            chunks.push(Mutex::new(Some(items)));
            items = rest;
        }
        let outputs = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        ChunkQueue { chunks, outputs, next: AtomicUsize::new(0) }
    }

    /// One worker's claim loop: grab chunks until the queue is drained,
    /// wrapping the whole stint in the observer hooks (if installed).
    fn drain(&self, f: &(impl Fn(T) -> R + Sync), token: u64, spawned_at: Instant) {
        let hooks = TASK_HOOKS.get();
        if let Some(h) = hooks {
            (h.worker_start)(token, spawned_at.elapsed().as_nanos() as u64);
        }
        let work_start = Instant::now();
        loop {
            let ci = self.next.fetch_add(1, Ordering::Relaxed);
            if ci >= self.chunks.len() {
                break;
            }
            let batch = self.chunks[ci].lock().unwrap().take().expect("chunk claimed once");
            let out: Vec<R> = batch.into_iter().map(f).collect();
            *self.outputs[ci].lock().unwrap() = Some(out);
        }
        if let Some(h) = hooks {
            (h.worker_end)(work_start.elapsed().as_nanos() as u64);
        }
    }

    fn collect(self) -> Vec<R> {
        self.outputs
            .into_iter()
            .flat_map(|m| m.into_inner().unwrap().expect("every chunk completed"))
            .collect()
    }
}

/// Apply `f` to every item on a pool of scoped threads; results are returned
/// in input order. Falls back to a plain sequential map for 0–1 items or a
/// single available core.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue = ChunkQueue::new(items, workers);
    let token = TASK_HOOKS.get().map(|h| (h.capture)()).unwrap_or(0);
    let spawned_at = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (queue, f) = (&queue, &f);
            scope.spawn(move || queue.drain(f, token, spawned_at));
        }
    });
    queue.collect()
}

// ---------------------------------------------------------------------------
// Reusable worker pool
// ---------------------------------------------------------------------------

/// A lifetime-erased shared closure every pool worker invokes exactly once
/// per submitted job. The submitting thread blocks until all workers have
/// returned, so the borrowed closure outlives every use (see
/// [`WorkerPool::map`] for the safety argument).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));
// SAFETY: the pointee is `Sync` (required at construction in `map`) and only
// ever called through a shared reference, so shipping the pointer to worker
// threads is sound.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per submitted job so a worker never runs the same job
    /// twice and never misses one.
    seq: u64,
    /// Workers still executing the current job.
    running: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signalled when a new job is published (or on shutdown).
    go: Condvar,
    /// Signalled when the last worker finishes the current job.
    done: Condvar,
}

/// A reusable handle to a fixed set of persistent worker threads with the
/// same order-preserving chunked map semantics as [`par_map`].
///
/// [`par_map`] spawns and joins scoped threads per call — fine for the
/// seconds-long batch jobs in `bench`, but inside the tuning loop a small
/// batch (q = 2–8 candidates, each a few ms) is dispatched every iteration
/// and the per-call spawn/join would dominate. The pool parks its workers on
/// a condvar between jobs, so dispatch cost is one mutex round-trip.
///
/// `map` is **not reentrant**: calling `pool.map` from inside a closure
/// running on the same pool deadlocks (the submit blocks on workers that are
/// themselves blocked on the submit). Use a separate pool (or `par_map`) for
/// nested parallelism.
///
/// `map` **is** safe to call from multiple threads on a shared pool (e.g.
/// `Arc<WorkerPool>` across daemon sessions): the pool has a single
/// published-job slot, so concurrent submitters serialise on an internal
/// mutex at whole-batch granularity — one session's batch fully drains
/// before the next is published. Workers stay saturated; the waiting
/// submitter is parked, not spinning.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    /// Serialises concurrent `map` callers over the single job slot. Held
    /// from publish to drain; see the struct docs for the sharing contract.
    submit: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (clamped to ≥1; a 1-worker pool
    /// spawns no threads and maps sequentially).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                job: None,
                seq: 0,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = if workers > 1 {
            (0..workers)
                .map(|_| {
                    let inner = Arc::clone(&inner);
                    std::thread::spawn(move || Self::worker_loop(&inner))
                })
                .collect()
        } else {
            Vec::new()
        };
        WorkerPool { inner, submit: Mutex::new(()), handles }
    }

    /// A pool sized by [`thread_count`] for `n_items`-wide batches.
    pub fn for_items(n_items: usize) -> WorkerPool {
        WorkerPool::new(thread_count(n_items))
    }

    /// Number of worker threads (1 = sequential fallback).
    pub fn workers(&self) -> usize {
        self.handles.len().max(1)
    }

    fn worker_loop(inner: &PoolInner) {
        let mut last_seq = 0u64;
        loop {
            let job = {
                let mut st = inner.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.seq != last_seq {
                        if let Some(j) = st.job {
                            last_seq = st.seq;
                            break j;
                        }
                    }
                    st = inner.go.wait(st).unwrap();
                }
            };
            // A panicking closure must not kill the worker (the pool would
            // deadlock waiting on it forever); catch and report instead.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*job.0)()
            }));
            let mut st = inner.state.lock().unwrap();
            st.running -= 1;
            if result.is_err() {
                st.panicked = true;
            }
            if st.running == 0 {
                inner.done.notify_all();
            }
        }
    }

    /// Apply `f` to every item on the pool's workers; results in input order
    /// (exactly [`par_map`]'s semantics). Panics if any worker closure
    /// panicked. Safe to call repeatedly; each call fully drains before
    /// returning, so `f` may borrow from the caller's stack.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers();
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }

        let queue = ChunkQueue::new(items, workers);
        let token = TASK_HOOKS.get().map(|h| (h.capture)()).unwrap_or(0);
        let submitted_at = Instant::now();
        let work = || queue.drain(&f, token, submitted_at);
        let job_ref: &(dyn Fn() + Sync) = &work;
        // SAFETY: we publish a raw pointer to a stack-borrowed closure, but
        // this very call blocks below until `running == 0`, i.e. until every
        // worker has returned from its single invocation — the pointee
        // strictly outlives all dereferences. The erased-lifetime pointer is
        // cleared before returning.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync)>(job_ref)
        });

        // Serialise concurrent submitters: a poisoned lock (a previous
        // submitter's closure panicked while holding it) is still structurally
        // sound — the job slot below was cleared before the unwind reached
        // here — so recover the guard rather than cascading the panic.
        let _submit = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        let panicked = {
            let mut st = self.inner.state.lock().unwrap();
            st.job = Some(job);
            st.seq += 1;
            st.running = self.handles.len();
            drop(st);
            self.inner.go.notify_all();

            let mut st = self.inner.state.lock().unwrap();
            while st.running > 0 {
                st = self.inner.done.wait(st).unwrap();
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if panicked {
            panic!("WorkerPool: a worker closure panicked");
        }
        queue.collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.go.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// rayon-flavoured adapter
// ---------------------------------------------------------------------------

/// Entry point mirroring `rayon::prelude::IntoParallelIterator`, so the
/// `(0..reps).into_par_iter().map(f).collect()` call sites migrate with a
/// one-line `use` change.
pub trait IntoParIter: Sized {
    /// The item type produced.
    type Item: Send;
    /// Wrap `self` for parallel mapping.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParIter for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// A materialised batch of work awaiting a `.map(..)`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Eagerly apply `f` in parallel; `.collect()` the result.
    pub fn map<R, F>(self, f: F) -> ParMapped<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMapped { results: par_map(self.items, f) }
    }
}

/// Results of a parallel map, ready to collect.
pub struct ParMapped<R> {
    results: Vec<R>,
}

impl<R> ParMapped<R> {
    /// Gather results (input order) into any `FromIterator` collection.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.results.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(xs.clone(), |x| x * x);
        assert_eq!(ys, xs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn adapter_matches_sequential() {
        let got: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = par_map(Vec::new(), |x: i32| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7], |x| x * 2), vec![14]);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2
            || std::env::var("CITROEN_THREADS").ok().as_deref() == Some("1")
        {
            return; // single-core host: nothing to observe
        }
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        par_map((0..16).collect::<Vec<_>>(), |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(Duration::from_millis(20));
        });
        let distinct = seen.lock().unwrap().len();
        assert!(distinct >= 2, "expected ≥2 worker threads, saw {distinct}");
    }

    #[test]
    fn thread_count_respects_env_and_items() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    fn pool_matches_sequential_across_repeated_maps() {
        let pool = WorkerPool::new(4);
        for round in 0..10u64 {
            let xs: Vec<u64> = (0..97).collect();
            let got = pool.map(xs.clone(), |x| x * x + round);
            let want: Vec<u64> = xs.iter().map(|x| x * x + round).collect();
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn pool_closure_may_borrow_caller_stack() {
        let pool = WorkerPool::new(3);
        let offsets: Vec<u64> = (0..8).collect();
        let got = pool.map((0..32u64).collect(), |x| x + offsets[(x % 8) as usize]);
        let want: Vec<u64> = (0..32u64).map(|x| x + offsets[(x % 8) as usize]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_single_worker_falls_back_sequentially() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |x| x * 10), vec![10, 20, 30]);
        assert_eq!(pool.map(Vec::<i32>::new(), |x| x), Vec::<i32>::new());
    }

    #[test]
    fn pool_is_safe_under_concurrent_submitters() {
        // Several session threads share one pool (the daemon's layout): each
        // submits its own batches concurrently and must get back exactly its
        // own results in order — the submit mutex serialises batches over
        // the single published-job slot.
        let pool = std::sync::Arc::new(WorkerPool::new(4));
        let handles: Vec<_> = (0..6u64)
            .map(|session| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for round in 0..20u64 {
                        let xs: Vec<u64> = (0..33).collect();
                        let got = pool.map(xs.clone(), |x| x * session + round);
                        let want: Vec<u64> =
                            xs.iter().map(|x| x * session + round).collect();
                        assert_eq!(got, want, "session {session} round {round}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pool_propagates_worker_panics_and_stays_usable_for_drop() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map((0..8u32).collect(), |x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic in a worker closure must propagate");
        // The pool stays usable after a propagated panic (the submit lock
        // recovers from poisoning), and Drop still joins all workers.
        assert_eq!(pool.map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
        drop(pool);
    }
}
