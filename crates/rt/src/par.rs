//! Scoped-thread parallel map — the in-tree replacement for the
//! `rayon::into_par_iter().map().collect()` pattern in the batch-evaluation
//! hot paths (`bench` ch4/ch5 run dozens of independent seeded tuning
//! repetitions per table row; each is seconds of work, so coarse-grained
//! work claiming is all the scheduling this workload needs).
//!
//! Work distribution: items are split into chunks (a few per worker), workers
//! claim whole chunks through a shared atomic cursor (workers that finish
//! early steal the remaining tail), results land in per-chunk slots, and
//! order is preserved — `par_map(xs, f)` returns exactly `xs.map(f)` in input
//! order regardless of interleaving. Thread
//! count comes from `std::thread::available_parallelism`, overridable with
//! the `CITROEN_THREADS` environment variable (set it to `1` to debug).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Telemetry hooks
// ---------------------------------------------------------------------------

/// Observer hooks a higher layer (the `citroen-telemetry` crate) installs so
/// worker threads can attribute their work to the span that called `par_map`.
/// `rt` sits below every other crate and cannot depend on the telemetry
/// crate, so propagation happens through plain function pointers: `capture`
/// runs on the calling thread before workers spawn, its token is handed to
/// `worker_start` on each worker thread, and `worker_end` closes the
/// worker's attribution scope. The two timing arguments let the observer
/// split a worker's wall time into queue wait (spawn → first claim) and work.
#[derive(Clone, Copy)]
pub struct TaskHooks {
    /// Called on the `par_map` caller's thread; returns an opaque scope token
    /// (e.g. the current span id; 0 = none).
    pub capture: fn() -> u64,
    /// Called on each worker thread before it claims work:
    /// `(token, queue_wait_ns)`.
    pub worker_start: fn(u64, u64),
    /// Called on each worker thread after its last chunk: `(work_ns)`.
    pub worker_end: fn(u64),
}

static TASK_HOOKS: OnceLock<TaskHooks> = OnceLock::new();

/// Install the process-wide worker hooks. The first caller wins; returns
/// whether this call installed its hooks.
pub fn set_task_hooks(hooks: TaskHooks) -> bool {
    TASK_HOOKS.set(hooks).is_ok()
}

/// Number of worker threads to use for `n_items` of work.
pub fn thread_count(n_items: usize) -> usize {
    let hw = std::env::var("CITROEN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// Apply `f` to every item on a pool of scoped threads; results are returned
/// in input order. Falls back to a plain sequential map for 0–1 items or a
/// single available core.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunked work queue: the input is pre-split into ~4 chunks per worker —
    // small enough that an unlucky slow chunk still load-balances, large
    // enough to amortise the claim — and workers grab whole chunks through a
    // single shared atomic cursor. Each chunk's Mutex is locked exactly twice
    // (claim, deposit) by one worker, so there is no lock contention and no
    // per-item locking; flattening the chunk results in queue order restores
    // the input order.
    let chunk_size = n.div_ceil(workers * 4).max(1);
    let mut items = items;
    let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::new();
    while !items.is_empty() {
        let rest = items.split_off(chunk_size.min(items.len()));
        chunks.push(Mutex::new(Some(items)));
        items = rest;
    }
    let n_chunks = chunks.len();
    let outputs: Vec<Mutex<Option<Vec<R>>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let hooks = TASK_HOOKS.get();
    let scope_token = hooks.map(|h| (h.capture)()).unwrap_or(0);
    let spawned_at = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (chunks, outputs, next, f) = (&chunks, &outputs, &next, &f);
            scope.spawn(move || {
                if let Some(h) = hooks {
                    (h.worker_start)(scope_token, spawned_at.elapsed().as_nanos() as u64);
                }
                let work_start = Instant::now();
                loop {
                    let ci = next.fetch_add(1, Ordering::Relaxed);
                    if ci >= n_chunks {
                        break;
                    }
                    let batch = chunks[ci].lock().unwrap().take().expect("chunk claimed once");
                    let out: Vec<R> = batch.into_iter().map(f).collect();
                    *outputs[ci].lock().unwrap() = Some(out);
                }
                if let Some(h) = hooks {
                    (h.worker_end)(work_start.elapsed().as_nanos() as u64);
                }
            });
        }
    });

    outputs
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap().expect("every chunk completed"))
        .collect()
}

// ---------------------------------------------------------------------------
// rayon-flavoured adapter
// ---------------------------------------------------------------------------

/// Entry point mirroring `rayon::prelude::IntoParallelIterator`, so the
/// `(0..reps).into_par_iter().map(f).collect()` call sites migrate with a
/// one-line `use` change.
pub trait IntoParIter: Sized {
    /// The item type produced.
    type Item: Send;
    /// Wrap `self` for parallel mapping.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParIter for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// A materialised batch of work awaiting a `.map(..)`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Eagerly apply `f` in parallel; `.collect()` the result.
    pub fn map<R, F>(self, f: F) -> ParMapped<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMapped { results: par_map(self.items, f) }
    }
}

/// Results of a parallel map, ready to collect.
pub struct ParMapped<R> {
    results: Vec<R>,
}

impl<R> ParMapped<R> {
    /// Gather results (input order) into any `FromIterator` collection.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.results.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(xs.clone(), |x| x * x);
        assert_eq!(ys, xs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn adapter_matches_sequential() {
        let got: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = par_map(Vec::new(), |x: i32| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7], |x| x * 2), vec![14]);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2
            || std::env::var("CITROEN_THREADS").ok().as_deref() == Some("1")
        {
            return; // single-core host: nothing to observe
        }
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        par_map((0..16).collect::<Vec<_>>(), |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(Duration::from_millis(20));
        });
        let distinct = seen.lock().unwrap().len();
        assert!(distinct >= 2, "expected ≥2 worker threads, saw {distinct}");
    }

    #[test]
    fn thread_count_respects_env_and_items() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
    }
}
