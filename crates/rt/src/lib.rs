//! `citroen-rt` — the in-tree runtime layer that keeps the workspace
//! hermetic (zero external dependencies, builds offline from a cold cache).
//!
//! CITROEN's experimental claims rest on *reproducible, seeded* optimisation
//! trajectories: every table and figure is an aggregate over repetitions that
//! must be re-runnable bit-for-bit on any machine (PAPER.md §Evaluation).
//! Owning the three pieces of infrastructure the workspace previously pulled
//! from crates.io makes that guarantee structural rather than aspirational:
//!
//! - [`rng`] — a SplitMix64-seeded xoshiro256++ generator behind the exact
//!   API surface the codebase uses (`StdRng::seed_from_u64`, `gen`,
//!   `gen_range`, `gen_bool`, `shuffle`, `choose`). The output stream for a
//!   given seed is pinned by known-answer tests, so a refactor can never
//!   silently reshuffle every experiment.
//! - [`par`] — a scoped-thread parallel map (atomic-index work claiming,
//!   thread count from `std::thread::available_parallelism`) that replaces
//!   `rayon` in the batch-evaluation hot paths.
//! - [`json`] — a minimal, escape-correct JSON object emitter/parser for the
//!   flat `pass.stat → u64` objects of LLVM's `-stats-json` format.

pub mod json;
pub mod par;
pub mod rng;
