//! Minimal JSON for the one serialisation format the workspace actually
//! uses: flat `{ "pass.stat": count }` objects in LLVM `-stats-json` style
//! (string keys, unsigned-integer values). The emitter matches
//! `serde_json::to_string_pretty`'s layout (2-space indent, `": "` between
//! key and value) so downstream tooling and golden strings are unchanged;
//! the parser accepts any JSON object whose values are unsigned integers,
//! with full string-escape handling (including `\uXXXX` surrogate pairs).

use std::collections::BTreeMap;
use std::fmt;

/// Parse error: position (byte offset) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escape `s` as JSON string *contents* (no surrounding quotes) into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialise a flat string→u64 map as a pretty-printed JSON object,
/// byte-compatible with `serde_json::to_string_pretty` on a `BTreeMap`
/// (keys in sorted order, 2-space indent).
pub fn emit_object_pretty(map: &BTreeMap<String, u64>) -> String {
    if map.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        out.push_str(if i == 0 { "\n  \"" } else { ",\n  \"" });
        escape_into(k, &mut out);
        out.push_str("\": ");
        out.push_str(&v.to_string());
    }
    out.push_str("\n}");
    out
}

/// Parse a JSON object with string keys and unsigned-integer values.
/// Duplicate keys keep the last occurrence (matching `serde_json`).
pub fn parse_object(input: &str) -> Result<BTreeMap<String, u64>, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.parse_u64()?;
            map.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(p.err_at(
                        p.pos.saturating_sub(1),
                        format!("expected ',' or '}}', found {}", show(other)),
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err_at(p.pos, "trailing characters after object".into()));
    }
    Ok(map)
}

fn show(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("{:?}", b as char),
        None => "end of input".to_string(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err_at(&self, pos: usize, msg: String) -> JsonError {
        JsonError { pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(self.err_at(
                self.pos.saturating_sub(1),
                format!("expected {:?}, found {}", want as char, show(other)),
            )),
        }
    }

    fn parse_u64(&mut self) -> Result<u64, JsonError> {
        let start = self.pos;
        let mut val: u64 = 0;
        let mut any = false;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            any = true;
            val = val
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or_else(|| self.err_at(start, "integer overflows u64".into()))?;
            self.pos += 1;
        }
        if !any {
            return Err(self.err_at(
                start,
                format!("expected unsigned integer, found {}", show(self.peek())),
            ));
        }
        Ok(val)
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let start = self.pos;
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.next() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                other => {
                    return Err(self.err_at(
                        start,
                        format!("invalid \\u escape, found {}", show(other)),
                    ))
                }
            };
            v = v << 4 | d as u16;
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.next() {
                None => return Err(self.err_at(start, "unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: must be followed by \uDC00–DFFF.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err(self
                                    .err_at(start, "unpaired high surrogate".into()));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self
                                    .err_at(start, "invalid low surrogate".into()));
                            }
                            0x10000 + ((hi as u32 - 0xD800) << 10 | (lo as u32 - 0xDC00))
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err_at(start, "unpaired low surrogate".into()));
                        } else {
                            hi as u32
                        };
                        out.push(char::from_u32(cp).ok_or_else(|| {
                            self.err_at(start, "escape is not a valid scalar".into())
                        })?);
                    }
                    other => {
                        return Err(self.err_at(
                            start,
                            format!("invalid escape {}", show(other)),
                        ))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(self
                        .err_at(start, "unescaped control character in string".into()))
                }
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let s = &self.bytes[start..];
                    let ch = std::str::from_utf8(&s[..utf8_len(b).min(s.len())])
                        .map_err(|_| self.err_at(start, "invalid UTF-8".into()))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err_at(start, "invalid UTF-8".into()))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Value trees
// ---------------------------------------------------------------------------

/// A JSON value tree: objects, arrays, strings, and unsigned integers — the
/// superset needed by nested documents like the pass-interaction graph. The
/// flat `{string: u64}` functions above remain the stats-format fast path
/// (their emitted bytes are pinned by golden strings downstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Look up a key in an object (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-print with the same layout conventions as
    /// [`emit_object_pretty`]: 2-space indent, `": "` after keys, one
    /// element per line, `{}`/`[]` for empty containers.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out
    }

    fn emit(&self, out: &mut String, depth: usize) {
        let indent = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Emit on a single line with no whitespace (`{"k":1,"a":[2,3]}`) — the
    /// JSONL record format used by the streaming telemetry sink, where one
    /// value must occupy exactly one line.
    pub fn emit_compact(&self) -> String {
        let mut out = String::new();
        self.emit_compact_into(&mut out);
        out
    }

    fn emit_compact_into(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_compact_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.emit_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse an arbitrary value tree (with the same grammar restrictions as
    /// the flat parser: numbers are unsigned integers).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err_at(p.pos, "trailing characters after value".into()));
        }
        Ok(v)
    }
}

impl<'a> Parser<'a> {
    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => Ok(Value::U64(self.parse_u64()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Arr(items)),
                        other => {
                            return Err(self.err_at(
                                self.pos.saturating_sub(1),
                                format!("expected ',' or ']', found {}", show(other)),
                            ))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Obj(pairs)),
                        other => {
                            return Err(self.err_at(
                                self.pos.saturating_sub(1),
                                format!("expected ',' or '}}', found {}", show(other)),
                            ))
                        }
                    }
                }
            }
            other => Err(self.err_at(
                self.pos,
                format!("expected a JSON value, found {}", show(other)),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn pretty_format_matches_serde_json_layout() {
        let m = map(&[("mem2reg.NumPromoted", 21), ("slp.NumVectorInstructions", 14)]);
        let j = emit_object_pretty(&m);
        assert_eq!(
            j,
            "{\n  \"mem2reg.NumPromoted\": 21,\n  \"slp.NumVectorInstructions\": 14\n}"
        );
        assert_eq!(emit_object_pretty(&BTreeMap::new()), "{}");
    }

    #[test]
    fn roundtrip_plain() {
        let m = map(&[("a.b", 0), ("c.d", u64::MAX), ("e.f", 12345)]);
        assert_eq!(parse_object(&emit_object_pretty(&m)).unwrap(), m);
    }

    #[test]
    fn roundtrip_escapes() {
        // Keys exercising every escape class: quote, backslash, control
        // chars, non-ASCII, and an astral-plane char (surrogate pair in \u).
        let m = map(&[
            ("quote\"key", 1),
            ("back\\slash", 2),
            ("tab\there\nand newline", 3),
            ("bell\u{07}ctrl", 4),
            ("unicode-é-Δ-中", 5),
            ("astral-\u{1F600}", 6),
        ]);
        let j = emit_object_pretty(&m);
        assert_eq!(parse_object(&j).unwrap(), m);
    }

    #[test]
    fn parses_foreign_spacing_and_u_escapes() {
        let j = "  {\"a\\u0041.x\"  :\t7 ,\r\n \"p.q\":0}  ";
        let m = parse_object(j).unwrap();
        assert_eq!(m, map(&[("aA.x", 7), ("p.q", 0)]));
        // Surrogate-pair escape decodes to the astral char.
        let m2 = parse_object("{\"\\ud83d\\ude00\": 1}").unwrap();
        assert_eq!(m2, map(&[("\u{1F600}", 1)]));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{}}",
            "{\"a\": }",
            "{\"a\": -1}",
            "{\"a\": 1.5}",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "{\"a\": 99999999999999999999999}",
            "{\"unterminated: 1}",
            "{\"bad\\q\": 1}",
            "{\"\\ud800\": 1}",
            "not json",
        ] {
            assert!(parse_object(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let m = parse_object("{\"k\": 1, \"k\": 2}").unwrap();
        assert_eq!(m, map(&[("k", 2)]));
    }

    fn sample_tree() -> Value {
        Value::Obj(vec![
            ("passes".into(), Value::Arr(vec![Value::str("mem2reg"), Value::str("gvn")])),
            (
                "edges".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("from".into(), Value::str("mem2reg")),
                    ("to".into(), Value::str("gvn")),
                    ("count".into(), Value::U64(3)),
                ])]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
            ("escape\"key".into(), Value::str("tab\there")),
        ])
    }

    #[test]
    fn value_roundtrip() {
        let v = sample_tree();
        let text = v.emit_pretty();
        assert_eq!(Value::parse(&text).unwrap(), v);
        // Compact foreign spacing parses too.
        let compact = "{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{}}";
        let back = Value::parse(compact).unwrap();
        assert_eq!(back.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            back.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(),
            Some("c")
        );
    }

    #[test]
    fn value_pretty_layout_matches_flat_emitter() {
        // A Value tree that is a flat object must serialise byte-identically
        // to the dedicated stats emitter.
        let flat = map(&[("a.b", 1), ("c.d", 2)]);
        let v = Value::Obj(
            flat.iter().map(|(k, x)| (k.clone(), Value::U64(*x))).collect(),
        );
        assert_eq!(v.emit_pretty(), emit_object_pretty(&flat));
        assert_eq!(Value::Obj(vec![]).emit_pretty(), "{}");
        assert_eq!(Value::Arr(vec![]).emit_pretty(), "[]");
    }

    #[test]
    fn value_compact_is_one_line_and_roundtrips() {
        let v = sample_tree();
        let compact = v.emit_compact();
        assert!(!compact.contains('\n'), "compact emit must be a single line");
        assert!(!compact.contains(": "), "compact emit has no space after ':'");
        assert_eq!(Value::parse(&compact).unwrap(), v);
        assert_eq!(Value::Obj(vec![]).emit_compact(), "{}");
        assert_eq!(Value::Arr(vec![]).emit_compact(), "[]");
        assert_eq!(
            Value::Obj(vec![("a".into(), Value::Arr(vec![Value::U64(1), Value::U64(2)]))])
                .emit_compact(),
            "{\"a\":[1,2]}"
        );
    }

    #[test]
    fn compact_escapes_keep_control_characters_on_one_line() {
        // Strings with newlines, quotes, control chars, and non-ASCII must
        // stay on a single line after escaping (the JSONL invariant) and
        // round-trip exactly.
        for s in [
            "span\nwith\nnewlines",
            "quote\"inside",
            "back\\slash",
            "bell\u{07}and\u{01}ctl",
            "unicode-é-Δ-中-\u{1F600}",
            "\r\t\u{08}\u{0C}",
        ] {
            let v = Value::Obj(vec![(s.to_string(), Value::str(s))]);
            let line = v.emit_compact();
            assert!(!line.contains('\n') && !line.contains('\r'), "{line:?}");
            assert_eq!(Value::parse(&line).unwrap(), v, "{s:?}");
        }
    }

    #[test]
    fn value_rejects_malformed() {
        for bad in ["", "[1,]", "[1 2]", "{\"a\"}", "{\"a\":}", "[", "{\"a\":1}x", "-3"] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad}");
        }
        // Accessors are variant-safe.
        assert_eq!(Value::U64(1).get("k"), None);
        assert_eq!(Value::str("s").as_u64(), None);
        assert_eq!(Value::U64(1).as_arr(), None);
    }
}
