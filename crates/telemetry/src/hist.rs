//! Fixed-bucket histograms: power-of-two buckets over the full `u64` range,
//! so recording is allocation-free and two histograms always merge exactly.
//!
//! Bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)` (the
//! last bucket, 64, additionally holds `u64::MAX`). That is coarse but
//! plenty for the quantities tracked here (simulated cycles, fit
//! iterations), and it needs no per-histogram configuration.

/// Number of buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// A fixed power-of-two-bucket histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; NUM_BUCKETS] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index `v` falls into.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `(lo, hi)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < NUM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `q·count`,
    /// clamped to the observed `max`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Every boundary value lands in its own bucket; its predecessor in
        // the previous one.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for bit in 1..64 {
            let lo = 1u64 << bit;
            assert_eq!(Histogram::bucket_index(lo), bit + 1, "2^{bit}");
            assert_eq!(Histogram::bucket_index(lo - 1), bit, "2^{bit}-1");
            let (blo, bhi) = Histogram::bucket_bounds(bit + 1);
            assert_eq!(blo, lo);
            if bit < 63 {
                assert_eq!(bhi, (lo << 1) - 1);
            } else {
                assert_eq!(bhi, u64::MAX);
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn record_and_summarise() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[7], 1); // 100 ∈ [64,128)
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512,1024)
        // Quantiles: median falls in the [2,4) bucket, upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_nan());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 10] {
            a.record(v);
        }
        for v in [0, 1000] {
            b.record(v);
        }
        let mut whole = Histogram::new();
        for v in [1, 10, 0, 1000] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = Histogram::new();
        for v in [3, 7, 2048] {
            h.record(v);
        }
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
        // Empty ∪ empty stays empty (min stays at the sentinel).
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert!(e.is_empty());
        assert_eq!(e.min, u64::MAX);
    }

    #[test]
    fn merge_extreme_buckets_and_saturating_sum() {
        // 0, 1, and u64::MAX land in the first, second, and last buckets;
        // merging must preserve exact bucket counts, propagate min/max, and
        // saturate the sum rather than wrap.
        let mut a = Histogram::new();
        a.record(0);
        a.record(u64::MAX);
        let mut b = Histogram::new();
        b.record(1);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!((a.min, a.max), (0, u64::MAX));
        assert_eq!(a.sum, u64::MAX); // saturated: MAX + MAX + 1
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[1], 1);
        assert_eq!(a.buckets[NUM_BUCKETS - 1], 2);
        assert_eq!(a.buckets[2..NUM_BUCKETS - 1].iter().sum::<u64>(), 0);
    }

    #[test]
    fn merge_equals_recording_interleaved_and_quantiles_agree() {
        // Merging two disjoint captures is indistinguishable from having
        // recorded every observation into one histogram, in any order —
        // so post-merge quantiles match the single-histogram ones.
        let xs = [5u64, 9, 120, 120, 4096];
        let ys = [0u64, 2, 63, 64, 1 << 40];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &xs {
            a.record(v);
            whole.record(v);
        }
        for &v in &ys {
            b.record(v);
            whole.record(v);
        }
        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab, whole);
        assert_eq!(merged_ba, whole); // merge is commutative
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(merged_ab.quantile(q), whole.quantile(q), "q={q}");
        }
        assert_eq!(merged_ab.quantile(1.0), 1 << 40);
    }
}
