//! # citroen-telemetry
//!
//! Hierarchical tracing and metrics for the whole tuning stack. CITROEN's
//! value proposition is that cheap compilation statistics steer expensive
//! runtime measurements; this crate makes the *reproduction's own* cost
//! structure observable: where a tuning run spends its budget (compiles vs
//! GP fits vs acquisition maximisation vs simulator runs), how often the
//! caches hit, and how the `rt::par` workers split queue wait from work.
//!
//! Three primitives:
//!
//! - **Spans** ([`span`], [`SpanGuard`]) — RAII-timed, monotonic-clock,
//!   hierarchical regions. Nesting is tracked per thread; `rt::par` workers
//!   attribute their work to the span that called `par_map` through the
//!   function-pointer hooks in [`citroen_rt::par::set_task_hooks`] (installed
//!   automatically by [`install`]).
//! - **Counters** ([`counter`]) — monotonically-increasing named `u64`s
//!   (compiles, cache hits, oracle prunes, acquisition evaluations, …).
//! - **Histograms** ([`value`], [`Histogram`]) — fixed power-of-two-bucket
//!   distributions (GP fit iterations, simulated cycles, …).
//! - **Events** ([`event`], [`EventRecord`]) — named point-in-time records
//!   with integer fields, attributed to the emitting span. The tuning
//!   loop's `progress` events are the primary producer: every traced run
//!   yields a machine-readable convergence curve (`citroen-trace curve`).
//!
//! Everything funnels into one process-global [`TelemetrySink`]. The default
//! state has **no sink installed**: every entry point is a single relaxed
//! atomic load and an early return, so the paper-faithful tuning path is not
//! perturbed (see `crates/core/tests/telemetry_identity.rs` and the
//! `micro --telemetry-gate` overhead bound). With the built-in [`MemorySink`]
//! installed ([`enable`]), completed records are pushed under a short-lived
//! global mutex — spans in this codebase are coarse (per pass, per GP fit,
//! per iteration), so lock traffic is negligible next to the timed work.
//!
//! Traces export as JSON through `rt::json::Value` ([`Trace::emit_pretty`] /
//! [`Trace::parse`]); the `citroen-trace` binary renders breakdowns and
//! diffs of exported traces. For runs too long to hold in memory, the
//! [`StreamSink`] ([`enable_stream`]) writes each record as one JSONL line
//! through a dedicated writer thread; [`Trace::parse_jsonl`] replays the
//! file into the same in-memory form.

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod stream;
pub mod trace;

pub use hist::Histogram;
pub use stream::StreamSink;
pub use trace::{EventRecord, NameAgg, SpanRecord, Trace};

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// Receiver of telemetry records. Exactly one sink is installed at a time
/// (process-global); with none installed every recording entry point is a
/// near-free early return.
pub trait TelemetrySink: Send {
    /// A span finished.
    fn record_span(&mut self, rec: SpanRecord);
    /// Add `delta` to counter `name`.
    fn add_counter(&mut self, name: &str, delta: u64);
    /// Record one observation of `value` into histogram `name`.
    fn record_value(&mut self, name: &str, value: u64);
    /// A structured event was emitted. Default: ignore (sinks predating
    /// events keep working).
    fn record_event(&mut self, rec: EventRecord) {
        let _ = rec;
    }
    /// Give up the accumulated trace, if this sink holds one in memory.
    /// Default: `None` (streaming/custom sinks).
    fn take_trace(&mut self) -> Option<Trace> {
        None
    }
}

/// The built-in sink: accumulates everything into a [`Trace`] in memory.
#[derive(Default)]
pub struct MemorySink {
    trace: Trace,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl TelemetrySink for MemorySink {
    fn record_span(&mut self, rec: SpanRecord) {
        self.trace.spans.push(rec);
    }
    fn add_counter(&mut self, name: &str, delta: u64) {
        *self.trace.counters.entry(name.to_string()).or_insert(0) += delta;
    }
    fn record_value(&mut self, name: &str, value: u64) {
        self.trace.hists.entry(name.to_string()).or_default().record(value);
    }
    fn record_event(&mut self, rec: EventRecord) {
        self.trace.events.push(rec);
    }
    fn take_trace(&mut self) -> Option<Trace> {
        Some(std::mem::take(&mut self.trace))
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn TelemetrySink>>> = Mutex::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// The monotonic epoch all span timestamps are relative to (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// The synthetic `par.worker` span a worker thread runs under.
    static WORKER: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
    /// Small dense id for this thread (std's ThreadId has no stable integer).
    static THREAD: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Whether a sink is installed. A single relaxed load — this is the whole
/// cost of the disabled path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The small dense telemetry id of the calling thread — the same value
/// stamped into this thread's [`SpanRecord`]s and [`EventRecord`]s. Sink
/// methods run synchronously on the recording thread, so a multiplexing
/// sink (e.g. the serve daemon's per-session router) can call this inside
/// `add_counter`/`record_value` — which carry no thread field of their own —
/// to attribute the record to a session.
pub fn current_thread_id() -> u64 {
    THREAD.with(|t| *t)
}

/// Install `sink` as the process-global receiver (replacing any previous
/// one) and enable recording. Also installs the `rt::par` worker hooks on
/// first use so parallel work is attributed to its parent span.
pub fn install(sink: Box<dyn TelemetrySink>) {
    install_par_hooks();
    epoch();
    *SINK.lock().unwrap() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// [`install`] the built-in in-memory sink.
pub fn enable() {
    install(Box::new(MemorySink::new()));
}

/// [`install`] a [`StreamSink`] writing JSONL records to `path`. Finish the
/// file with `drop(disable())`.
pub fn enable_stream(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    install(Box::new(StreamSink::create(path)?));
    Ok(())
}

/// [`enable_stream`] with a byte cap per file: the stream rotates through
/// `FILE` → `FILE.1` → `FILE.2`, keeping the most recent records and
/// bounding disk usage at about three caps for arbitrarily long runs.
pub fn enable_stream_capped(
    path: impl AsRef<std::path::Path>,
    cap: u64,
) -> std::io::Result<()> {
    install(Box::new(StreamSink::create_with_cap(path, Some(cap))?));
    Ok(())
}

/// Stop recording and remove the sink (returned so callers can drain it).
pub fn disable() -> Option<Box<dyn TelemetrySink>> {
    ENABLED.store(false, Ordering::SeqCst);
    SINK.lock().unwrap().take()
}

/// Drain the accumulated trace out of the installed sink (the sink stays
/// installed and keeps recording into a fresh trace). `None` when disabled
/// or when the sink does not hold an in-memory trace.
pub fn take_trace() -> Option<Trace> {
    SINK.lock().unwrap().as_mut().and_then(|s| s.take_trace())
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    start: Instant,
}

/// RAII guard: the span runs from creation to drop. Inert (zero work on
/// drop) when telemetry was disabled at creation.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// A guard that records nothing (for callers that pre-check
    /// [`is_enabled`] to avoid building a dynamic name).
    pub fn noop() -> SpanGuard {
        SpanGuard(None)
    }

    /// This span's id (0 for inert guards) — usable as an explicit parent.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map(|a| a.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            close_span(a);
        }
    }
}

/// Open a span named `name` under the innermost open span of this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(open_span(Cow::Borrowed(name), current_span())))
}

/// Open a span with a lazily-built dynamic name (the closure only runs when
/// telemetry is enabled, so the disabled path never allocates).
#[inline]
pub fn span_dyn(name: impl FnOnce() -> String) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(open_span(Cow::Owned(name()), current_span())))
}

/// Id of the innermost open span on this thread (0 = none).
pub fn current_span() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

fn open_span(name: Cow<'static, str>, parent: u64) -> ActiveSpan {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    ActiveSpan { id, parent, name, start: Instant::now() }
}

fn close_span(a: ActiveSpan) {
    let dur_ns = a.start.elapsed().as_nanos() as u64;
    STACK.with(|s| {
        let mut st = s.borrow_mut();
        // Guards normally drop in LIFO order; tolerate out-of-order drops.
        if st.last() == Some(&a.id) {
            st.pop();
        } else {
            st.retain(|&x| x != a.id);
        }
    });
    let rec = SpanRecord {
        id: a.id,
        parent: a.parent,
        name: a.name.into_owned(),
        thread: THREAD.with(|t| *t),
        start_ns: a.start.saturating_duration_since(epoch()).as_nanos() as u64,
        dur_ns,
    };
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.record_span(rec);
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Emit a structured event: a named point-in-time record with integer
/// fields, attributed to the innermost open span on this thread. No-op when
/// disabled — but field *values* are evaluated by the caller, so wrap the
/// call in [`is_enabled`] when building them is not free.
pub fn event(name: &str, fields: &[(&str, u64)]) {
    if !is_enabled() {
        return;
    }
    let rec = EventRecord {
        name: name.to_string(),
        span: current_span(),
        thread: THREAD.with(|t| *t),
        at_ns: Instant::now().saturating_duration_since(epoch()).as_nanos() as u64,
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    };
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.record_event(rec);
    }
}

// ---------------------------------------------------------------------------
// Counters and histograms
// ---------------------------------------------------------------------------

/// Add `delta` to counter `name` (no-op when disabled or `delta == 0`).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.add_counter(name, delta);
    }
}

/// Record one observation into histogram `name` (no-op when disabled).
#[inline]
pub fn value(name: &str, v: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.record_value(name, v);
    }
}

// ---------------------------------------------------------------------------
// rt::par worker attribution
// ---------------------------------------------------------------------------

fn install_par_hooks() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        citroen_rt::par::set_task_hooks(citroen_rt::par::TaskHooks {
            capture: hook_capture,
            worker_start: hook_worker_start,
            worker_end: hook_worker_end,
        });
    });
}

fn hook_capture() -> u64 {
    if is_enabled() {
        current_span()
    } else {
        0
    }
}

fn hook_worker_start(parent: u64, queue_wait_ns: u64) {
    if !is_enabled() {
        return;
    }
    counter("par.queue_wait_ns", queue_wait_ns);
    counter("par.workers", 1);
    let a = open_span(Cow::Borrowed("par.worker"), parent);
    WORKER.with(|w| *w.borrow_mut() = Some(a));
}

fn hook_worker_end(work_ns: u64) {
    let worker = WORKER.with(|w| w.borrow_mut().take());
    if let Some(a) = worker {
        counter("par.work_ns", work_ns);
        close_span(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests live in tests/telemetry.rs behind a serialising
    // lock; here only the stateless pieces.

    #[test]
    fn noop_guard_is_inert() {
        let g = SpanGuard::noop();
        assert_eq!(g.id(), 0);
        drop(g); // must not touch the stack
        assert_eq!(current_span(), 0);
    }
}
