//! The exported trace model: completed spans, counters and histograms, with
//! JSON (de)serialisation through `rt::json::Value` and the aggregation
//! queries the `citroen-trace` CLI is built on (per-name self/total time,
//! parent/child coverage).

use crate::hist::Histogram;
use citroen_rt::json::{JsonError, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Span name (aggregation key).
    pub name: String,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A drained telemetry capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

/// Per-span-name aggregate (the breakdown table's row).
#[derive(Debug, Clone, PartialEq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Summed duration minus summed direct-children duration.
    pub self_ns: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Sum of direct-children durations, per parent span id.
    pub fn child_time(&self) -> HashMap<u64, u64> {
        let mut m: HashMap<u64, u64> = HashMap::new();
        for s in &self.spans {
            if s.parent != 0 {
                *m.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        m
    }

    /// Aggregate spans by name: count, total time, and self time (total
    /// minus direct children). Sorted by self time, largest first.
    pub fn aggregate(&self) -> Vec<NameAgg> {
        let child = self.child_time();
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert_with(|| NameAgg {
                name: s.name.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            e.count += 1;
            e.total_ns += s.dur_ns;
            e.self_ns += s.dur_ns.saturating_sub(child.get(&s.id).copied().unwrap_or(0));
        }
        let mut rows: Vec<NameAgg> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// Fraction of the summed duration of spans named `parent_name` covered
    /// by their direct children whose names are in `child_names`. `None`
    /// when no such parent span exists.
    pub fn coverage(&self, parent_name: &str, child_names: &[&str]) -> Option<f64> {
        let parents: HashMap<u64, ()> = self
            .spans
            .iter()
            .filter(|s| s.name == parent_name)
            .map(|s| (s.id, ()))
            .collect();
        let parent_total: u64 =
            self.spans.iter().filter(|s| s.name == parent_name).map(|s| s.dur_ns).sum();
        if parents.is_empty() || parent_total == 0 {
            return None;
        }
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| parents.contains_key(&s.parent) && child_names.contains(&s.name.as_str()))
            .map(|s| s.dur_ns)
            .sum();
        Some(covered as f64 / parent_total as f64)
    }

    /// Spans sorted by duration, longest first.
    pub fn hottest(&self, n: usize) -> Vec<&SpanRecord> {
        let mut v: Vec<&SpanRecord> = self.spans.iter().collect();
        v.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.id.cmp(&b.id)));
        v.truncate(n);
        v
    }

    // -- JSON ---------------------------------------------------------------

    /// Build the JSON value tree for this trace.
    pub fn to_json(&self) -> Value {
        let spans = Value::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        ("id".into(), Value::U64(s.id)),
                        ("parent".into(), Value::U64(s.parent)),
                        ("name".into(), Value::str(s.name.clone())),
                        ("thread".into(), Value::U64(s.thread)),
                        ("start_ns".into(), Value::U64(s.start_ns)),
                        ("dur_ns".into(), Value::U64(s.dur_ns)),
                    ])
                })
                .collect(),
        );
        let counters = Value::Obj(
            self.counters.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect(),
        );
        let hists = Value::Obj(
            self.hists
                .iter()
                .map(|(k, h)| {
                    // Buckets are sparse in practice: emit `[index, count]`
                    // pairs for the non-empty ones.
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| **c > 0)
                            .map(|(i, c)| {
                                Value::Arr(vec![Value::U64(i as u64), Value::U64(*c)])
                            })
                            .collect(),
                    );
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".into(), Value::U64(h.count)),
                            ("sum".into(), Value::U64(h.sum)),
                            ("min".into(), Value::U64(if h.count == 0 { 0 } else { h.min })),
                            ("max".into(), Value::U64(h.max)),
                            ("buckets".into(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("version".into(), Value::U64(1)),
            ("spans".into(), spans),
            ("counters".into(), counters),
            ("histograms".into(), hists),
        ])
    }

    /// Serialise as pretty-printed JSON.
    pub fn emit_pretty(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Rebuild a trace from its JSON value tree.
    pub fn from_json(v: &Value) -> Result<Trace, String> {
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("trace missing 'version'")?;
        if version != 1 {
            return Err(format!("unsupported trace version {version}"));
        }
        let mut t = Trace::new();
        for s in v.get("spans").and_then(Value::as_arr).ok_or("trace missing 'spans'")? {
            let field = |k: &str| -> Result<u64, String> {
                s.get(k).and_then(Value::as_u64).ok_or(format!("span missing '{k}'"))
            };
            t.spans.push(SpanRecord {
                id: field("id")?,
                parent: field("parent")?,
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("span missing 'name'")?
                    .to_string(),
                thread: field("thread")?,
                start_ns: field("start_ns")?,
                dur_ns: field("dur_ns")?,
            });
        }
        if let Some(Value::Obj(pairs)) = v.get("counters") {
            for (k, c) in pairs {
                t.counters.insert(
                    k.clone(),
                    c.as_u64().ok_or(format!("counter '{k}' is not an integer"))?,
                );
            }
        }
        if let Some(Value::Obj(pairs)) = v.get("histograms") {
            for (k, hv) in pairs {
                let field = |f: &str| -> Result<u64, String> {
                    hv.get(f).and_then(Value::as_u64).ok_or(format!("histogram '{k}' missing '{f}'"))
                };
                let mut h = Histogram::new();
                h.count = field("count")?;
                h.sum = field("sum")?;
                h.max = field("max")?;
                h.min = if h.count == 0 { u64::MAX } else { field("min")? };
                for pair in hv
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or(format!("histogram '{k}' missing 'buckets'"))?
                {
                    let p = pair.as_arr().filter(|p| p.len() == 2);
                    let (i, c) = match p.map(|p| (p[0].as_u64(), p[1].as_u64())) {
                        Some((Some(i), Some(c))) => (i, c),
                        _ => return Err(format!("histogram '{k}': malformed bucket entry")),
                    };
                    *h.buckets
                        .get_mut(i as usize)
                        .ok_or(format!("histogram '{k}': bucket index {i} out of range"))? = c;
                }
                t.hists.insert(k.clone(), h);
            }
        }
        Ok(t)
    }

    /// Parse a trace from its pretty-printed JSON text.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let v = Value::parse(text).map_err(|e: JsonError| e.to_string())?;
        Trace::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord { id, parent, name: name.into(), thread: 1, start_ns: start, dur_ns: dur }
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        // root(100) -> a(60) -> b(20); a also has sibling b(10) under root.
        t.spans.push(span(2, 1, "a", 10, 60));
        t.spans.push(span(3, 2, "b", 20, 20));
        t.spans.push(span(4, 1, "b", 80, 10));
        t.spans.push(span(1, 0, "root", 0, 100));
        t.counters.insert("compiles".into(), 42);
        let mut h = Histogram::new();
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        t.hists.insert("cycles".into(), h);
        t
    }

    #[test]
    fn aggregate_self_and_total() {
        let t = sample();
        let rows = t.aggregate();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let root = get("root");
        assert_eq!((root.count, root.total_ns, root.self_ns), (1, 100, 30)); // 100 - 60 - 10
        let a = get("a");
        assert_eq!((a.count, a.total_ns, a.self_ns), (1, 60, 40)); // 60 - 20
        let b = get("b");
        assert_eq!((b.count, b.total_ns, b.self_ns), (2, 30, 30));
        // Sorted by self time descending.
        assert_eq!(rows[0].name, "a");
    }

    #[test]
    fn coverage_of_named_children() {
        let t = sample();
        // Children of "root" named a or b: 60 + 10 of 100.
        assert!((t.coverage("root", &["a", "b"]).unwrap() - 0.7).abs() < 1e-12);
        assert!((t.coverage("root", &["a"]).unwrap() - 0.6).abs() < 1e-12);
        // b under a is not a direct child of root.
        assert_eq!(t.coverage("missing", &["a"]), None);
    }

    #[test]
    fn hottest_orders_by_duration() {
        let t = sample();
        let hot = t.hottest(2);
        assert_eq!(hot[0].name, "root");
        assert_eq!(hot[1].name, "a");
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let text = t.emit_pretty();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        // Empty trace round-trips too.
        let empty = Trace::new();
        assert_eq!(Trace::parse(&empty.emit_pretty()).unwrap(), empty);
    }

    #[test]
    fn json_rejects_malformed() {
        assert!(Trace::parse("not json").is_err());
        assert!(Trace::parse("{}").is_err()); // no version
        assert!(Trace::parse("{\"version\": 2, \"spans\": []}").is_err());
        assert!(Trace::parse("{\"version\": 1}").is_err()); // no spans
        let bad_span = "{\"version\": 1, \"spans\": [{\"id\": 1}]}";
        assert!(Trace::parse(bad_span).is_err());
        let bad_bucket = "{\"version\": 1, \"spans\": [], \"histograms\": \
                          {\"h\": {\"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1, \
                          \"buckets\": [[99, 1], [1, 1]]}}}";
        assert!(Trace::parse(bad_bucket).is_err());
    }
}
