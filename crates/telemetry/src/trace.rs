//! The exported trace model: completed spans, events, counters and
//! histograms, with JSON (de)serialisation through `rt::json::Value` — both
//! the pretty whole-trace document and the streaming JSONL record format the
//! [`crate::StreamSink`] writes — and the aggregation queries the
//! `citroen-trace` CLI is built on (per-name self/total time, parent/child
//! coverage, flame stacks).

use crate::hist::Histogram;
use citroen_rt::json::{JsonError, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Span name (aggregation key).
    pub name: String,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One structured event: a named point-in-time record with integer fields,
/// attributed to the span it was emitted under. The tuning loop's
/// `progress` events (iteration index, budget spent, best-so-far) are the
/// primary producer — every traced run yields a machine-readable
/// convergence curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name (e.g. `progress`, `run.meta`).
    pub name: String,
    /// Id of the span the event was emitted under (0 = none).
    pub span: u64,
    /// Dense id of the emitting thread.
    pub thread: u64,
    /// Emission time, nanoseconds since the telemetry epoch.
    pub at_ns: u64,
    /// Named integer payload, in emission order.
    pub fields: Vec<(String, u64)>,
}

impl EventRecord {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// A drained telemetry capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Events, in emission order.
    pub events: Vec<EventRecord>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

/// Per-span-name aggregate (the breakdown table's row).
#[derive(Debug, Clone, PartialEq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Summed duration minus summed direct-children duration.
    pub self_ns: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Sum of direct-children durations, per parent span id.
    ///
    /// Robust against streaming artifacts: record order carries no meaning
    /// (a streamed trace writes children before their parents finish), a
    /// child whose parent record is absent (still open when the stream was
    /// cut) contributes nothing, and each child's contribution is clamped to
    /// its parent's own duration so clock skew cannot produce a child that
    /// "outlasts" its parent.
    pub fn child_time(&self) -> HashMap<u64, u64> {
        let dur_by_id: HashMap<u64, u64> =
            self.spans.iter().map(|s| (s.id, s.dur_ns)).collect();
        let mut m: HashMap<u64, u64> = HashMap::new();
        for s in &self.spans {
            if s.parent == 0 {
                continue;
            }
            if let Some(&parent_dur) = dur_by_id.get(&s.parent) {
                *m.entry(s.parent).or_insert(0) += s.dur_ns.min(parent_dur);
            }
        }
        m
    }

    /// Aggregate spans by name: count, total time, and self time (total
    /// minus direct children). Sorted by self time, largest first.
    pub fn aggregate(&self) -> Vec<NameAgg> {
        let child = self.child_time();
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert_with(|| NameAgg {
                name: s.name.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            e.count += 1;
            e.total_ns += s.dur_ns;
            e.self_ns += s.dur_ns.saturating_sub(child.get(&s.id).copied().unwrap_or(0));
        }
        let mut rows: Vec<NameAgg> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// Fraction of the summed duration of spans named `parent_name` covered
    /// by their direct children whose names are in `child_names`. `None`
    /// when no such parent span exists.
    ///
    /// Tolerates out-of-order and partial streamed traces: record order is
    /// irrelevant, children of an unfinished (absent) parent are excluded —
    /// as is that parent's own time — and per-child contributions are
    /// clamped to the parent's duration with the final fraction capped at
    /// 1.0, so skewed clocks cannot report more than full coverage.
    pub fn coverage(&self, parent_name: &str, child_names: &[&str]) -> Option<f64> {
        let parents: HashMap<u64, u64> = self
            .spans
            .iter()
            .filter(|s| s.name == parent_name)
            .map(|s| (s.id, s.dur_ns))
            .collect();
        let parent_total: u64 = parents.values().sum();
        if parents.is_empty() || parent_total == 0 {
            return None;
        }
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| child_names.contains(&s.name.as_str()))
            .filter_map(|s| parents.get(&s.parent).map(|&pd| s.dur_ns.min(pd)))
            .sum();
        Some((covered as f64 / parent_total as f64).min(1.0))
    }

    /// Spans sorted by duration, longest first.
    pub fn hottest(&self, n: usize) -> Vec<&SpanRecord> {
        let mut v: Vec<&SpanRecord> = self.spans.iter().collect();
        v.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.id.cmp(&b.id)));
        v.truncate(n);
        v
    }

    /// Collapsed flame stacks: for every span, the semicolon-joined name
    /// chain from its outermost recorded ancestor down to itself, mapped to
    /// its summed *self* time in nanoseconds — the input format standard
    /// flamegraph tools consume (`a;b;c 1234`). Spans whose parent record is
    /// absent (partial traces) root their own stack.
    pub fn flame_stacks(&self) -> BTreeMap<String, u64> {
        let by_id: HashMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        let child = self.child_time();
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let mut chain: Vec<&str> = vec![&s.name];
            let mut cur = s.parent;
            // Defensive bound: a parent cycle in a corrupt trace must not hang.
            for _ in 0..1024 {
                match by_id.get(&cur) {
                    Some(p) if cur != 0 => {
                        chain.push(&p.name);
                        cur = p.parent;
                    }
                    _ => break,
                }
            }
            chain.reverse();
            let self_ns = s.dur_ns.saturating_sub(child.get(&s.id).copied().unwrap_or(0));
            *stacks.entry(chain.join(";")).or_insert(0) += self_ns;
        }
        stacks
    }

    // -- JSON ---------------------------------------------------------------

    /// Build the JSON value tree for this trace.
    pub fn to_json(&self) -> Value {
        let spans = Value::Arr(self.spans.iter().map(span_to_json).collect());
        let events = Value::Arr(self.events.iter().map(event_to_json).collect());
        let counters = Value::Obj(
            self.counters.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect(),
        );
        let hists = Value::Obj(
            self.hists.iter().map(|(k, h)| (k.clone(), hist_to_json(h))).collect(),
        );
        Value::Obj(vec![
            ("version".into(), Value::U64(1)),
            ("spans".into(), spans),
            ("events".into(), events),
            ("counters".into(), counters),
            ("histograms".into(), hists),
        ])
    }

    /// Serialise as pretty-printed JSON.
    pub fn emit_pretty(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Serialise as streaming JSONL: a `meta` header line followed by one
    /// line per span, event, counter total, and histogram — exactly the
    /// record vocabulary [`Trace::parse_jsonl`] accepts, so
    /// `parse_jsonl(to_jsonl(t)) == t`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut line = |v: Value| {
            out.push_str(&v.emit_compact());
            out.push('\n');
        };
        line(meta_record());
        for s in &self.spans {
            line(tagged("span", span_to_json(s)));
        }
        for e in &self.events {
            line(tagged("event", event_to_json(e)));
        }
        for (k, v) in &self.counters {
            line(Value::Obj(vec![
                ("t".into(), Value::str("counter")),
                ("name".into(), Value::str(k.clone())),
                ("delta".into(), Value::U64(*v)),
            ]));
        }
        for (k, h) in &self.hists {
            let mut obj = vec![
                ("t".into(), Value::str("hist")),
                ("name".into(), Value::str(k.clone())),
            ];
            if let Value::Obj(pairs) = hist_to_json(h) {
                obj.extend(pairs);
            }
            line(Value::Obj(obj));
        }
        out
    }

    /// Rebuild a trace from its JSON value tree.
    pub fn from_json(v: &Value) -> Result<Trace, String> {
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("trace missing 'version'")?;
        if version != 1 {
            return Err(format!("unsupported trace version {version}"));
        }
        let mut t = Trace::new();
        for s in v.get("spans").and_then(Value::as_arr).ok_or("trace missing 'spans'")? {
            t.spans.push(span_from_json(s)?);
        }
        if let Some(events) = v.get("events").and_then(Value::as_arr) {
            for e in events {
                t.events.push(event_from_json(e)?);
            }
        }
        if let Some(Value::Obj(pairs)) = v.get("counters") {
            for (k, c) in pairs {
                t.counters.insert(
                    k.clone(),
                    c.as_u64().ok_or(format!("counter '{k}' is not an integer"))?,
                );
            }
        }
        if let Some(Value::Obj(pairs)) = v.get("histograms") {
            for (k, hv) in pairs {
                t.hists.insert(k.clone(), hist_from_json(k, hv)?);
            }
        }
        Ok(t)
    }

    /// Parse a trace from its pretty-printed JSON text.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let v = Value::parse(text).map_err(|e: JsonError| e.to_string())?;
        Trace::from_json(&v)
    }

    /// Parse a streamed JSONL trace: one record object per line, tagged by
    /// its `"t"` field (`meta`/`span`/`event`/`counter`/`value`/`hist`).
    /// Counter deltas sum, `value` observations accumulate into histograms,
    /// and full `hist` records merge — replaying a stream reconstructs
    /// exactly what an in-memory sink would have aggregated. Strict: any
    /// malformed line is an error (use [`Trace::parse_jsonl_lossy`] for
    /// live/truncated files).
    pub fn parse_jsonl(text: &str) -> Result<Trace, String> {
        let mut t = Trace::new();
        for (i, lineno, line) in nonempty_lines(text) {
            apply_record_line(&mut t, line)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            let _ = i;
        }
        Ok(t)
    }

    /// Like [`Trace::parse_jsonl`] but skipping unparseable lines (a live
    /// stream's last line may be mid-write; a crashed run's file may end in
    /// a torn record). Returns the trace and the number of skipped lines.
    pub fn parse_jsonl_lossy(text: &str) -> (Trace, usize) {
        let mut t = Trace::new();
        let mut skipped = 0usize;
        for (_, _, line) in nonempty_lines(text) {
            if apply_record_line(&mut t, line).is_err() {
                skipped += 1;
            }
        }
        (t, skipped)
    }

    /// Parse either trace format: streamed JSONL (first line is a tagged
    /// record, `{"t":...}`) or the pretty whole-trace document. This is what
    /// lets `show`/`check`/`diff` consume both.
    pub fn parse_any(text: &str) -> Result<Trace, String> {
        let head = text.trim_start();
        if head.starts_with("{\"t\"") {
            Trace::parse_jsonl(text)
        } else {
            Trace::parse(text)
        }
    }
}

// ---------------------------------------------------------------------------
// Per-record (de)serialisation, shared by the document and JSONL formats
// ---------------------------------------------------------------------------

/// The JSONL stream header record.
pub(crate) fn meta_record() -> Value {
    Value::Obj(vec![("t".into(), Value::str("meta")), ("version".into(), Value::U64(1))])
}

/// Prefix an object with the JSONL `"t"` tag.
pub(crate) fn tagged(tag: &str, v: Value) -> Value {
    let mut obj = vec![("t".into(), Value::str(tag))];
    if let Value::Obj(pairs) = v {
        obj.extend(pairs);
    }
    Value::Obj(obj)
}

pub(crate) fn span_to_json(s: &SpanRecord) -> Value {
    Value::Obj(vec![
        ("id".into(), Value::U64(s.id)),
        ("parent".into(), Value::U64(s.parent)),
        ("name".into(), Value::str(s.name.clone())),
        ("thread".into(), Value::U64(s.thread)),
        ("start_ns".into(), Value::U64(s.start_ns)),
        ("dur_ns".into(), Value::U64(s.dur_ns)),
    ])
}

fn span_from_json(s: &Value) -> Result<SpanRecord, String> {
    let field = |k: &str| -> Result<u64, String> {
        s.get(k).and_then(Value::as_u64).ok_or(format!("span missing '{k}'"))
    };
    Ok(SpanRecord {
        id: field("id")?,
        parent: field("parent")?,
        name: s
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span missing 'name'")?
            .to_string(),
        thread: field("thread")?,
        start_ns: field("start_ns")?,
        dur_ns: field("dur_ns")?,
    })
}

pub(crate) fn event_to_json(e: &EventRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(e.name.clone())),
        ("span".into(), Value::U64(e.span)),
        ("thread".into(), Value::U64(e.thread)),
        ("at_ns".into(), Value::U64(e.at_ns)),
        (
            "fields".into(),
            Value::Obj(e.fields.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect()),
        ),
    ])
}

fn event_from_json(e: &Value) -> Result<EventRecord, String> {
    let field = |k: &str| -> Result<u64, String> {
        e.get(k).and_then(Value::as_u64).ok_or(format!("event missing '{k}'"))
    };
    let fields = match e.get("fields") {
        Some(Value::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|v| (k.clone(), v))
                    .ok_or(format!("event field '{k}' is not an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("event missing 'fields'".into()),
    };
    Ok(EventRecord {
        name: e
            .get("name")
            .and_then(Value::as_str)
            .ok_or("event missing 'name'")?
            .to_string(),
        span: field("span")?,
        thread: field("thread")?,
        at_ns: field("at_ns")?,
        fields,
    })
}

fn hist_to_json(h: &Histogram) -> Value {
    // Buckets are sparse in practice: emit `[index, count]` pairs for the
    // non-empty ones.
    let buckets = Value::Arr(
        h.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| Value::Arr(vec![Value::U64(i as u64), Value::U64(*c)]))
            .collect(),
    );
    Value::Obj(vec![
        ("count".into(), Value::U64(h.count)),
        ("sum".into(), Value::U64(h.sum)),
        ("min".into(), Value::U64(if h.count == 0 { 0 } else { h.min })),
        ("max".into(), Value::U64(h.max)),
        ("buckets".into(), buckets),
    ])
}

fn hist_from_json(k: &str, hv: &Value) -> Result<Histogram, String> {
    let field = |f: &str| -> Result<u64, String> {
        hv.get(f).and_then(Value::as_u64).ok_or(format!("histogram '{k}' missing '{f}'"))
    };
    let mut h = Histogram::new();
    h.count = field("count")?;
    h.sum = field("sum")?;
    h.max = field("max")?;
    h.min = if h.count == 0 { u64::MAX } else { field("min")? };
    for pair in hv
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or(format!("histogram '{k}' missing 'buckets'"))?
    {
        let p = pair.as_arr().filter(|p| p.len() == 2);
        let (i, c) = match p.map(|p| (p[0].as_u64(), p[1].as_u64())) {
            Some((Some(i), Some(c))) => (i, c),
            _ => return Err(format!("histogram '{k}': malformed bucket entry")),
        };
        *h.buckets
            .get_mut(i as usize)
            .ok_or(format!("histogram '{k}': bucket index {i} out of range"))? = c;
    }
    Ok(h)
}

/// Iterate `(index, 1-based line number, line)` over non-empty lines.
fn nonempty_lines(text: &str) -> impl Iterator<Item = (usize, usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i, i + 1, l.trim()))
        .filter(|(_, _, l)| !l.is_empty())
}

/// Apply one JSONL record line to an accumulating trace.
fn apply_record_line(t: &mut Trace, line: &str) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| e.to_string())?;
    let tag = v.get("t").and_then(Value::as_str).ok_or("record missing 't' tag")?;
    match tag {
        "meta" => {
            let version = v.get("version").and_then(Value::as_u64).unwrap_or(0);
            if version != 1 {
                return Err(format!("unsupported stream version {version}"));
            }
        }
        "span" => t.spans.push(span_from_json(&v)?),
        "event" => t.events.push(event_from_json(&v)?),
        "counter" => {
            let name = v.get("name").and_then(Value::as_str).ok_or("counter missing 'name'")?;
            let delta =
                v.get("delta").and_then(Value::as_u64).ok_or("counter missing 'delta'")?;
            *t.counters.entry(name.to_string()).or_insert(0) += delta;
        }
        "value" => {
            let name = v.get("name").and_then(Value::as_str).ok_or("value missing 'name'")?;
            let val = v.get("value").and_then(Value::as_u64).ok_or("value missing 'value'")?;
            t.hists.entry(name.to_string()).or_default().record(val);
        }
        "hist" => {
            let name = v.get("name").and_then(Value::as_str).ok_or("hist missing 'name'")?;
            let h = hist_from_json(name, &v)?;
            t.hists.entry(name.to_string()).or_default().merge(&h);
        }
        other => return Err(format!("unknown record tag '{other}'")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord { id, parent, name: name.into(), thread: 1, start_ns: start, dur_ns: dur }
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        // root(100) -> a(60) -> b(20); a also has sibling b(10) under root.
        t.spans.push(span(2, 1, "a", 10, 60));
        t.spans.push(span(3, 2, "b", 20, 20));
        t.spans.push(span(4, 1, "b", 80, 10));
        t.spans.push(span(1, 0, "root", 0, 100));
        t.counters.insert("compiles".into(), 42);
        let mut h = Histogram::new();
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        t.hists.insert("cycles".into(), h);
        t.events.push(EventRecord {
            name: "progress".into(),
            span: 1,
            thread: 1,
            at_ns: 50,
            fields: vec![("iter".into(), 1), ("best_ns".into(), 900)],
        });
        t
    }

    #[test]
    fn aggregate_self_and_total() {
        let t = sample();
        let rows = t.aggregate();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let root = get("root");
        assert_eq!((root.count, root.total_ns, root.self_ns), (1, 100, 30)); // 100 - 60 - 10
        let a = get("a");
        assert_eq!((a.count, a.total_ns, a.self_ns), (1, 60, 40)); // 60 - 20
        let b = get("b");
        assert_eq!((b.count, b.total_ns, b.self_ns), (2, 30, 30));
        // Sorted by self time descending.
        assert_eq!(rows[0].name, "a");
    }

    #[test]
    fn coverage_of_named_children() {
        let t = sample();
        // Children of "root" named a or b: 60 + 10 of 100.
        assert!((t.coverage("root", &["a", "b"]).unwrap() - 0.7).abs() < 1e-12);
        assert!((t.coverage("root", &["a"]).unwrap() - 0.6).abs() < 1e-12);
        // b under a is not a direct child of root.
        assert_eq!(t.coverage("missing", &["a"]), None);
    }

    #[test]
    fn out_of_order_and_partial_traces_are_tolerated() {
        // A streamed trace commits children before their parents finish and
        // may be cut at any point. Hand-build an interleaved capture:
        // children first, parents later, one child of a parent that never
        // completed (id 9), and one child whose clock-skewed duration
        // exceeds its parent's.
        let mut t = Trace::new();
        t.spans.push(span(3, 2, "compile", 10, 30)); // child before parent
        t.spans.push(span(4, 2, "measure", 40, 50));
        t.spans.push(span(6, 9, "compile", 200, 10)); // parent 9 never recorded
        t.spans.push(span(5, 2, "skewed", 90, 500)); // dur exceeds parent's
        t.spans.push(span(2, 1, "iteration", 0, 100)); // parent arrives last
        t.spans.push(span(1, 0, "run", 0, 120));

        // child_time: orphan contributes nothing; skewed child clamps to 100.
        let ct = t.child_time();
        assert_eq!(ct.get(&2).copied(), Some(30 + 50 + 100));
        assert!(!ct.contains_key(&9));
        // Self time saturates at zero rather than wrapping.
        let agg = t.aggregate();
        let iter_row = agg.iter().find(|r| r.name == "iteration").unwrap();
        assert_eq!(iter_row.self_ns, 0);
        // Coverage counts only completed parents, clamps, and caps at 1.0.
        let cov = t.coverage("iteration", &["compile", "measure", "skewed"]).unwrap();
        assert!((cov - 1.0).abs() < 1e-12, "{cov}");
        // The orphan's time is excluded from compile+measure coverage.
        assert!((t.coverage("iteration", &["compile", "measure"]).unwrap() - 0.8).abs() < 1e-12);

        // All of the above must be order-independent: any permutation of the
        // record order yields identical aggregates.
        let mut rotated = t.clone();
        rotated.spans.rotate_left(3);
        assert_eq!(rotated.aggregate(), agg);
        assert_eq!(
            rotated.coverage("iteration", &["compile", "measure"]),
            t.coverage("iteration", &["compile", "measure"])
        );
        assert_eq!(rotated.flame_stacks(), t.flame_stacks());
    }

    #[test]
    fn flame_stacks_collapse_by_ancestry() {
        let t = sample();
        let stacks = t.flame_stacks();
        assert_eq!(stacks.get("root").copied(), Some(30));
        assert_eq!(stacks.get("root;a").copied(), Some(40));
        assert_eq!(stacks.get("root;a;b").copied(), Some(20));
        assert_eq!(stacks.get("root;b").copied(), Some(10));
        // Total self time is conserved across the collapse.
        assert_eq!(stacks.values().sum::<u64>(), 100);
    }

    #[test]
    fn hottest_orders_by_duration() {
        let t = sample();
        let hot = t.hottest(2);
        assert_eq!(hot[0].name, "root");
        assert_eq!(hot[1].name, "a");
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let text = t.emit_pretty();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        // Empty trace round-trips too.
        let empty = Trace::new();
        assert_eq!(Trace::parse(&empty.emit_pretty()).unwrap(), empty);
    }

    #[test]
    fn jsonl_roundtrip_and_format_sniffing() {
        let t = sample();
        let text = t.to_jsonl();
        assert!(text.starts_with("{\"t\":\"meta\""));
        let back = Trace::parse_jsonl(&text).unwrap();
        assert_eq!(back, t);
        // parse_any dispatches on the leading record tag.
        assert_eq!(Trace::parse_any(&text).unwrap(), t);
        assert_eq!(Trace::parse_any(&t.emit_pretty()).unwrap(), t);
        // Counter deltas accumulate across lines.
        let split = "{\"t\":\"counter\",\"name\":\"c\",\"delta\":2}\n\
                     {\"t\":\"counter\",\"name\":\"c\",\"delta\":3}\n";
        assert_eq!(Trace::parse_jsonl(split).unwrap().counters["c"], 5);
        // `value` observations build the same histogram record() would.
        let vals = "{\"t\":\"value\",\"name\":\"h\",\"value\":1}\n\
                    {\"t\":\"value\",\"name\":\"h\",\"value\":1000}\n";
        let vt = Trace::parse_jsonl(vals).unwrap();
        let mut want = Histogram::new();
        want.record(1);
        want.record(1000);
        assert_eq!(vt.hists["h"], want);
    }

    #[test]
    fn jsonl_lossy_skips_torn_lines() {
        let t = sample();
        let mut text = t.to_jsonl();
        // Simulate a crash mid-write: truncate the final line.
        text.truncate(text.len() - 10);
        assert!(Trace::parse_jsonl(&text).is_err());
        let (back, skipped) = Trace::parse_jsonl_lossy(&text);
        assert_eq!(skipped, 1);
        assert_eq!(back.spans, t.spans);
        assert_eq!(back.events, t.events);
    }

    #[test]
    fn jsonl_rejects_malformed() {
        assert!(Trace::parse_jsonl("{\"no\":\"tag\"}").is_err());
        assert!(Trace::parse_jsonl("{\"t\":\"mystery\"}").is_err());
        assert!(Trace::parse_jsonl("{\"t\":\"meta\",\"version\":2}").is_err());
        assert!(Trace::parse_jsonl("{\"t\":\"span\",\"id\":1}").is_err());
        assert!(Trace::parse_jsonl("{\"t\":\"counter\",\"name\":\"c\"}").is_err());
        let bad_event = "{\"t\":\"event\",\"name\":\"e\",\"span\":0,\"thread\":1,\"at_ns\":0}";
        assert!(Trace::parse_jsonl(bad_event).is_err());
    }

    #[test]
    fn json_rejects_malformed() {
        assert!(Trace::parse("not json").is_err());
        assert!(Trace::parse("{}").is_err()); // no version
        assert!(Trace::parse("{\"version\": 2, \"spans\": []}").is_err());
        assert!(Trace::parse("{\"version\": 1}").is_err()); // no spans
        let bad_span = "{\"version\": 1, \"spans\": [{\"id\": 1}]}";
        assert!(Trace::parse(bad_span).is_err());
        let bad_bucket = "{\"version\": 1, \"spans\": [], \"histograms\": \
                          {\"h\": {\"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1, \
                          \"buckets\": [[99, 1], [1, 1]]}}}";
        assert!(Trace::parse(bad_bucket).is_err());
    }
}
