//! Windowed time-series metrics: the aggregation layer behind the serve
//! daemon's `metrics` verb and the `citroen-trace top` dashboard.
//!
//! The span/counter/histogram primitives in the crate root answer "what did
//! this one run cost"; this module answers the operator's question — "what
//! is the *service* doing right now". It keeps, per metric, a cumulative
//! total plus a fixed-size ring of per-window deltas (counters) or
//! per-window [`Histogram`] snapshots (distributions), so recent rates and
//! quantiles are computable without ever rescanning history. Gauges are
//! plain last-write-wins values.
//!
//! Two deliberate design points:
//!
//! - **Explicit time.** Every mutating or querying method takes `now_ms`
//!   (milliseconds since an epoch the *caller* owns). Nothing in here reads
//!   a clock, so window rotation is deterministic and unit-testable.
//! - **No background thread.** Ring slots are rotated lazily on write/read:
//!   a slot whose stamped window number is stale is reset before use. An
//!   idle metric therefore costs nothing.
//!
//! [`Ewma`]/[`Sentinel`] implement the SLO watchdogs: an exponentially
//! weighted moving average per signal compared against a threshold, with a
//! recoverable `breached` flag (health reflects the *current* EWMA) and a
//! cumulative breach counter (CI can detect "was ever degraded").

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Ring geometry shared by every windowed metric in a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCfg {
    /// Width of one window in milliseconds.
    pub width_ms: u64,
    /// Number of windows retained (including the currently-filling one).
    pub ring: usize,
}

impl Default for WindowCfg {
    fn default() -> WindowCfg {
        WindowCfg { width_ms: 10_000, ring: 6 }
    }
}

impl WindowCfg {
    /// The window number `now_ms` falls into.
    pub fn window_of(&self, now_ms: u64) -> u64 {
        now_ms / self.width_ms.max(1)
    }
}

/// A counter with a cumulative total and a ring of per-window deltas.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    /// Cumulative total since the metric first appeared.
    pub total: u64,
    /// `slots[w % ring] = (window_no, delta_in_that_window)`.
    slots: Vec<(u64, u64)>,
}

impl WindowedCounter {
    fn new(ring: usize) -> WindowedCounter {
        WindowedCounter { total: 0, slots: vec![(u64::MAX, 0); ring.max(1)] }
    }

    fn add(&mut self, cfg: &WindowCfg, delta: u64, now_ms: u64) {
        self.total += delta;
        let w = cfg.window_of(now_ms);
        let idx = (w as usize) % self.slots.len();
        let slot = &mut self.slots[idx];
        if slot.0 != w {
            *slot = (w, 0);
        }
        slot.1 += delta;
    }

    /// Per-window deltas, oldest first, ending with the currently-filling
    /// window. Windows with no writes report 0.
    pub fn window_deltas(&self, cfg: &WindowCfg, now_ms: u64) -> Vec<u64> {
        let cur = cfg.window_of(now_ms);
        let ring = self.slots.len() as u64;
        (0..ring)
            .map(|back| {
                let w = cur.wrapping_sub(ring - 1 - back);
                if w > cur {
                    return 0; // before the epoch
                }
                let slot = self.slots[(w as usize) % self.slots.len()];
                if slot.0 == w {
                    slot.1
                } else {
                    0
                }
            })
            .collect()
    }

    /// Events per second over the retained ring (including the partial
    /// current window, over the elapsed part of the ring span).
    pub fn rate_per_sec(&self, cfg: &WindowCfg, now_ms: u64) -> f64 {
        let deltas = self.window_deltas(cfg, now_ms);
        let sum: u64 = deltas.iter().sum();
        let full = (deltas.len() as u64 - 1) * cfg.width_ms;
        let partial = (now_ms % cfg.width_ms.max(1)).max(1);
        let span_ms = (full + partial).min(now_ms.max(1));
        sum as f64 * 1000.0 / span_ms as f64
    }
}

/// A distribution with a cumulative histogram and a ring of per-window
/// histogram snapshots.
#[derive(Debug, Clone)]
pub struct WindowedHist {
    /// Cumulative histogram over the metric's whole lifetime.
    pub all: Histogram,
    slots: Vec<(u64, Histogram)>,
}

impl WindowedHist {
    fn new(ring: usize) -> WindowedHist {
        WindowedHist {
            all: Histogram::new(),
            slots: vec![(u64::MAX, Histogram::new()); ring.max(1)],
        }
    }

    fn record(&mut self, cfg: &WindowCfg, v: u64, now_ms: u64) {
        self.all.record(v);
        let w = cfg.window_of(now_ms);
        let idx = (w as usize) % self.slots.len();
        let slot = &mut self.slots[idx];
        if slot.0 != w {
            *slot = (w, Histogram::new());
        }
        slot.1.record(v);
    }

    /// Merge of the retained windows (the "recent" distribution quantiles
    /// are computed from).
    pub fn recent(&self, cfg: &WindowCfg, now_ms: u64) -> Histogram {
        let cur = cfg.window_of(now_ms);
        let ring = self.slots.len() as u64;
        let mut out = Histogram::new();
        for (w, h) in &self.slots {
            if *w <= cur && cur - *w < ring {
                out.merge(h);
            }
        }
        out
    }
}

/// A named collection of windowed counters, gauges, and windowed
/// histograms. One registry per scope (daemon-global, per tenant).
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    /// Ring geometry applied to every metric in this registry.
    pub cfg: WindowCfg,
    counters: BTreeMap<String, WindowedCounter>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, WindowedHist>,
}

impl MetricsRegistry {
    /// An empty registry with the given window geometry.
    pub fn new(cfg: WindowCfg) -> MetricsRegistry {
        MetricsRegistry {
            cfg,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Add `delta` to counter `name` at time `now_ms`.
    pub fn add(&mut self, name: &str, delta: u64, now_ms: u64) {
        let ring = self.cfg.ring;
        self.counters
            .entry(name.to_string())
            .or_insert_with(|| WindowedCounter::new(ring))
            .add(&self.cfg, delta, now_ms);
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record one observation into histogram `name` at time `now_ms`.
    pub fn observe(&mut self, name: &str, v: u64, now_ms: u64) {
        let ring = self.cfg.ring;
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| WindowedHist::new(ring))
            .record(&self.cfg, v, now_ms);
    }

    /// Cumulative total of counter `name` (0 if never written).
    pub fn total(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.total).unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Cumulative histogram for `name`.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name).map(|h| &h.all)
    }

    /// Merge of `name`'s retained windows.
    pub fn recent_hist(&self, name: &str, now_ms: u64) -> Option<Histogram> {
        self.hists.get(name).map(|h| h.recent(&self.cfg, now_ms))
    }

    /// Per-window deltas of counter `name`, oldest first.
    pub fn window_deltas(&self, name: &str, now_ms: u64) -> Vec<u64> {
        self.counters
            .get(name)
            .map(|c| c.window_deltas(&self.cfg, now_ms))
            .unwrap_or_else(|| vec![0; self.cfg.ring])
    }

    /// Recent rate of counter `name` in events/second.
    pub fn rate_per_sec(&self, name: &str, now_ms: u64) -> f64 {
        self.counters
            .get(name)
            .map(|c| c.rate_per_sec(&self.cfg, now_ms))
            .unwrap_or(0.0)
    }

    /// Iterate counters by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &WindowedCounter)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate gauges by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms by name.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &WindowedHist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

// ---------------------------------------------------------------------------
// SLO sentinels
// ---------------------------------------------------------------------------

/// Exponentially weighted moving average. `None` until the first sample.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    /// Smoothing factor in `(0, 1]`; larger reacts faster.
    pub alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh EWMA with smoothing factor `alpha`.
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha: alpha.clamp(1e-6, 1.0), value: None }
    }

    /// Fold in one sample and return the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before any sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Which side of the threshold counts as a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Breach when the EWMA rises above the threshold (latency-style).
    Above,
    /// Breach when the EWMA falls below the threshold (hit-ratio-style).
    Below,
}

/// An EWMA watchdog on one signal: tracks the moving average, compares it
/// against a fixed threshold, and keeps both a *current* breach flag (drives
/// the `health` verdict; recovers when the EWMA crosses back) and a
/// cumulative breach-transition counter.
#[derive(Debug, Clone)]
pub struct Sentinel {
    /// Signal name (e.g. `"run_wall_ms"`).
    pub name: String,
    /// Threshold the EWMA is compared against.
    pub threshold: f64,
    /// Breach direction.
    pub kind: SloKind,
    /// The moving average.
    pub ewma: Ewma,
    /// Whether the sentinel is currently in breach.
    pub breached: bool,
    /// Number of ok→breach transitions observed.
    pub breaches: u64,
}

impl Sentinel {
    /// A healthy sentinel named `name` watching for `kind` crossings of
    /// `threshold`, smoothing samples with factor `alpha`.
    pub fn new(name: &str, threshold: f64, kind: SloKind, alpha: f64) -> Sentinel {
        Sentinel {
            name: name.to_string(),
            threshold,
            kind,
            ewma: Ewma::new(alpha),
            breached: false,
            breaches: 0,
        }
    }

    /// Fold in one sample; returns `true` when this sample *transitioned*
    /// the sentinel from ok to breached (callers emit an event on exactly
    /// those edges).
    pub fn observe(&mut self, x: f64) -> bool {
        let v = self.ewma.observe(x);
        let now_breached = match self.kind {
            SloKind::Above => v > self.threshold,
            SloKind::Below => v < self.threshold,
        };
        let newly = now_breached && !self.breached;
        if newly {
            self.breaches += 1;
        }
        self.breached = now_breached;
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: WindowCfg = WindowCfg { width_ms: 1000, ring: 4 };

    #[test]
    fn counter_windows_rotate_and_report_oldest_first() {
        let mut r = MetricsRegistry::new(CFG);
        r.add("jobs", 2, 100); // window 0
        r.add("jobs", 3, 1100); // window 1
        r.add("jobs", 5, 3100); // window 3
        assert_eq!(r.total("jobs"), 10);
        assert_eq!(r.window_deltas("jobs", 3100), vec![2, 3, 0, 5]);
        // Advance into window 4: window 0 ages out of the ring.
        assert_eq!(r.window_deltas("jobs", 4100), vec![3, 0, 5, 0]);
        // A write into window 4 reuses window 0's slot after resetting it.
        r.add("jobs", 7, 4100);
        assert_eq!(r.window_deltas("jobs", 4100), vec![3, 0, 5, 7]);
        assert_eq!(r.total("jobs"), 17);
    }

    #[test]
    fn stale_slot_reset_on_long_gap() {
        let mut r = MetricsRegistry::new(CFG);
        r.add("x", 9, 500); // window 0
        // Jump forward 100 windows: everything in the ring is stale.
        assert_eq!(r.window_deltas("x", 100_500), vec![0, 0, 0, 0]);
        r.add("x", 1, 100_500);
        assert_eq!(r.window_deltas("x", 100_500), vec![0, 0, 0, 1]);
        assert_eq!(r.total("x"), 10); // total survives the gap
    }

    #[test]
    fn rate_accounts_for_partial_current_window() {
        let mut r = MetricsRegistry::new(CFG);
        // 10 events in the first half-second of the first window.
        for _ in 0..10 {
            r.add("e", 1, 250);
        }
        // Ring span elapsed so far is only 500 ms.
        let rate = r.rate_per_sec("e", 500);
        assert!((rate - 20.0).abs() < 1e-9, "rate={rate}");
        // Unknown counters report 0, not NaN.
        assert_eq!(r.rate_per_sec("nope", 500), 0.0);
    }

    #[test]
    fn hist_recent_merges_only_live_windows() {
        let mut r = MetricsRegistry::new(CFG);
        r.observe("lat", 100, 100); // window 0
        r.observe("lat", 200, 1100); // window 1
        r.observe("lat", 400, 4100); // window 4 — evicts window 0's slot
        let recent = r.recent_hist("lat", 4100).unwrap();
        assert_eq!(recent.count, 2); // windows 1 and 4 only
        assert_eq!(recent.min, 200);
        assert_eq!(recent.max, 400);
        // Cumulative histogram still has all three.
        assert_eq!(r.hist("lat").unwrap().count, 3);
        assert_eq!(r.hist("lat").unwrap().min, 100);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new(CFG);
        assert_eq!(r.gauge("g"), None);
        r.set_gauge("g", 5);
        r.set_gauge("g", 3);
        assert_eq!(r.gauge("g"), Some(3));
    }

    #[test]
    fn ewma_converges_toward_samples() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(100.0), 100.0); // first sample adopted exactly
        let v = e.observe(0.0);
        assert!((v - 50.0).abs() < 1e-12);
        let v = e.observe(0.0);
        assert!((v - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sentinel_breaches_recover_and_count_transitions() {
        let mut s = Sentinel::new("lat", 10.0, SloKind::Above, 1.0);
        assert!(!s.observe(5.0));
        assert!(!s.breached);
        assert!(s.observe(50.0)); // ok → breach edge
        assert!(s.breached);
        assert!(!s.observe(60.0)); // still breached: no new edge
        assert!(!s.observe(1.0)); // recovers
        assert!(!s.breached);
        assert!(s.observe(99.0)); // second edge
        assert_eq!(s.breaches, 2);
    }

    #[test]
    fn sentinel_below_kind_watches_floors() {
        let mut s = Sentinel::new("hit_ratio", 0.5, SloKind::Below, 1.0);
        assert!(!s.observe(0.9));
        assert!(s.observe(0.1));
        assert!(s.breached);
        assert!(!s.observe(0.8));
        assert!(!s.breached);
        // A zero threshold can never breach (ratio is never negative).
        let mut z = Sentinel::new("z", 0.0, SloKind::Below, 1.0);
        assert!(!z.observe(0.0));
        assert!(!z.breached);
    }
}
