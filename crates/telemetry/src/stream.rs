//! Streaming JSONL sink: every completed record is written as one JSON line
//! to a file, so long `experiments` runs can be traced without holding the
//! trace in memory, and a crashed run still leaves a readable (partial)
//! trace behind.
//!
//! Architecture: the recording side (called under the global telemetry
//! mutex, on whatever thread a span closes) does **no I/O and no
//! serialisation** — it pushes the record into a small batch buffer and,
//! every [`BATCH`] records (or after [`MAX_BATCH_DELAY`] of quiet), sends
//! the batch over a bounded [`std::sync::mpsc::sync_channel`]. Batching is
//! what keeps the recording side cheap: an un-batched send to an idle
//! channel wakes the blocked writer thread every time (a context switch per
//! record — measured at ~90% overhead on a real tuning run), while one
//! wakeup per 64 records is noise. A dedicated writer thread drains the
//! channel, serialises each batch into a reused string buffer (direct
//! pushes, no per-record allocation tree — the writer competes with the
//! traced program for cores), and writes through a [`BufWriter`]; it
//! flushes whenever the channel runs
//! empty, so `tail`ing the file during a run shows records within one
//! batch + drain-cycle of real time. The channel bound turns a
//! pathologically slow disk into backpressure on the traced program instead
//! of unbounded queue growth.
//!
//! Dropping the sink closes the channel, joins the writer, and flushes —
//! [`crate::disable`] returns the boxed sink, so `drop(disable())` is the
//! "finish the trace file" idiom. Write errors are deferred to drop (the
//! recording path has no way to surface them) and reported on stderr.

use crate::trace::meta_record;
use crate::{EventRecord, SpanRecord, TelemetrySink, Trace};
use citroen_rt::json::escape_into;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records per channel message: one writer wakeup amortises over this many.
const BATCH: usize = 64;
/// A partial batch is sent anyway once this much time has passed since the
/// last send, so a quiet run still reaches the file promptly (liveness for
/// `tail`); the check costs one `Instant` comparison per record.
const MAX_BATCH_DELAY: Duration = Duration::from_millis(50);
/// Queue bound between the recording side and the writer thread, in
/// batches (× [`BATCH`] records).
const CHANNEL_BOUND: usize = 64;

/// One queued telemetry record (the JSONL line vocabulary).
enum Record {
    Span(SpanRecord),
    Event(EventRecord),
    Counter(String, u64),
    Value(String, u64),
}

impl Record {
    /// Serialise as one JSONL line (newline included), byte-identical to
    /// the `Value`-tree emitter [`Trace::to_jsonl`] uses — but built by
    /// direct string pushes. The writer thread shares the host's cores with
    /// the traced program (on a single-core host it *is* stolen compute
    /// time), so skipping the per-record `Value` allocation tree measurably
    /// lowers the streaming overhead the `micro --stream-gate` pins.
    fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Record::Span(s) => {
                out.push_str("{\"t\":\"span\",\"id\":");
                let _ = write!(out, "{}", s.id);
                out.push_str(",\"parent\":");
                let _ = write!(out, "{}", s.parent);
                out.push_str(",\"name\":\"");
                escape_into(&s.name, out);
                out.push_str("\",\"thread\":");
                let _ = write!(out, "{}", s.thread);
                out.push_str(",\"start_ns\":");
                let _ = write!(out, "{}", s.start_ns);
                out.push_str(",\"dur_ns\":");
                let _ = write!(out, "{}", s.dur_ns);
                out.push('}');
            }
            Record::Event(e) => {
                out.push_str("{\"t\":\"event\",\"name\":\"");
                escape_into(&e.name, out);
                out.push_str("\",\"span\":");
                let _ = write!(out, "{}", e.span);
                out.push_str(",\"thread\":");
                let _ = write!(out, "{}", e.thread);
                out.push_str(",\"at_ns\":");
                let _ = write!(out, "{}", e.at_ns);
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in e.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    let _ = write!(out, "{}", v);
                }
                out.push_str("}}");
            }
            Record::Counter(name, delta) => {
                out.push_str("{\"t\":\"counter\",\"name\":\"");
                escape_into(name, out);
                out.push_str("\",\"delta\":");
                let _ = write!(out, "{}", delta);
                out.push('}');
            }
            Record::Value(name, value) => {
                out.push_str("{\"t\":\"value\",\"name\":\"");
                escape_into(name, out);
                out.push_str("\",\"value\":");
                let _ = write!(out, "{}", value);
                out.push('}');
            }
        }
        out.push('\n');
    }
}

/// The writer thread's output target: the live file plus size-cap rotation
/// bookkeeping. With a byte cap, the file is rotated shift-style before a
/// record that would push it past the cap: `FILE.1` becomes `FILE.2`
/// (overwriting it), the live file becomes `FILE.1`, and a fresh live file
/// opens with its own `meta` header — so every generation parses on its own
/// and total disk usage is bounded by ~3 × cap however long the run is.
struct RotatingFile {
    out: BufWriter<File>,
    path: PathBuf,
    /// Rotate before a record that would push the file past this many bytes.
    cap: Option<u64>,
    /// Bytes written to the current generation, `meta` header included.
    written: u64,
    /// Size of the header alone — a generation holding no records yet is
    /// never rotated (rotating it would loop without making room).
    header: u64,
}

impl RotatingFile {
    fn create(path: PathBuf, cap: Option<u64>) -> io::Result<RotatingFile> {
        let (out, header) = RotatingFile::open(&path)?;
        Ok(RotatingFile { out, path, cap, written: header, header })
    }

    /// Create/truncate `path` and write the `meta` header line, returning
    /// the writer and the header size.
    fn open(path: &Path) -> io::Result<(BufWriter<File>, u64)> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut header = meta_record().emit_compact();
        header.push('\n');
        out.write_all(header.as_bytes())?;
        out.flush()?;
        Ok((out, header.len() as u64))
    }

    /// The sibling path `FILE.n`.
    fn generation(&self, n: u32) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.out.flush()?;
        let (p1, p2) = (self.generation(1), self.generation(2));
        // `.1 -> .2` may fail only because no `.1` exists yet; the live
        // rename and reopen below are the ones that must succeed.
        let _ = std::fs::rename(&p1, &p2);
        std::fs::rename(&self.path, &p1)?;
        let (out, header) = RotatingFile::open(&self.path)?;
        self.out = out;
        self.written = header;
        Ok(())
    }

    /// Write `bytes` (one or more whole JSONL lines), rotating first when a
    /// cap is set and the write would overflow it. Records are never torn
    /// across generations; a single record larger than the cap still goes
    /// out in one piece.
    fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(cap) = self.cap {
            if self.written > self.header && self.written + bytes.len() as u64 > cap {
                self.rotate()?;
            }
        }
        self.written += bytes.len() as u64;
        self.out.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// A [`TelemetrySink`] that streams records to a JSONL file through a
/// dedicated writer thread. Install with [`crate::install`] (or the
/// [`crate::enable_stream`] shorthand); finish the file by dropping the sink
/// (`drop(citroen_telemetry::disable())`).
pub struct StreamSink {
    tx: Option<SyncSender<Vec<Record>>>,
    writer: Option<JoinHandle<io::Result<u64>>>,
    /// Pending records not yet sent (fewer than a batch, recent).
    buf: Vec<Record>,
    /// When the last batch was sent (drives the liveness flush).
    last_send: Instant,
    /// Records dropped because the writer died mid-run (write error).
    lost: u64,
}

impl StreamSink {
    /// Create (truncating) `path` and start the writer thread. The `meta`
    /// header line is written before this returns an `Ok`, so an empty run
    /// still yields a parseable trace.
    pub fn create(path: impl AsRef<Path>) -> io::Result<StreamSink> {
        StreamSink::create_with_cap(path, None)
    }

    /// [`create`](StreamSink::create) with an optional byte cap: once the
    /// live file would exceed `cap` bytes, it is rotated to `FILE.1`
    /// (pushing any previous `FILE.1` to `FILE.2`) and a fresh header-bearing
    /// file takes its place. Bounds the disk footprint of arbitrarily long
    /// runs at roughly three caps while keeping the most recent records.
    pub fn create_with_cap(path: impl AsRef<Path>, cap: Option<u64>) -> io::Result<StreamSink> {
        let out = RotatingFile::create(path.as_ref().to_path_buf(), cap)?;
        let (tx, rx) = mpsc::sync_channel(CHANNEL_BOUND);
        let writer = std::thread::Builder::new()
            .name("citroen-stream-sink".into())
            .spawn(move || writer_loop(rx, out))?;
        Ok(StreamSink {
            tx: Some(tx),
            writer: Some(writer),
            buf: Vec::with_capacity(BATCH),
            last_send: Instant::now(),
            lost: 0,
        })
    }

    fn send(&mut self, rec: Record) {
        self.buf.push(rec);
        if self.buf.len() >= BATCH || self.last_send.elapsed() >= MAX_BATCH_DELAY {
            self.send_batch();
        }
    }

    fn send_batch(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(BATCH));
        // A send can only fail if the writer thread died on a write error;
        // count the loss and let drop report the underlying cause.
        if let Some(tx) = &self.tx {
            if tx.send(batch).is_err() {
                self.lost += 1;
            }
        }
        self.last_send = Instant::now();
    }

    /// Close the channel, join the writer, and return the number of record
    /// lines it wrote (not counting the `meta` header). Called by drop; only
    /// needed directly by tests and tools that want the count or the error.
    pub fn finish(&mut self) -> io::Result<u64> {
        self.send_batch();
        drop(self.tx.take());
        let lines = match self.writer.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("stream-sink writer thread panicked"))??,
            None => 0,
        };
        if self.lost > 0 {
            return Err(io::Error::other(format!(
                "stream sink lost {} records after a write error",
                self.lost
            )));
        }
        Ok(lines)
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        if self.writer.is_some() || self.lost > 0 || !self.buf.is_empty() {
            if let Err(e) = self.finish() {
                eprintln!("citroen-telemetry: stream sink: {e}");
            }
        }
    }
}

impl TelemetrySink for StreamSink {
    fn record_span(&mut self, rec: SpanRecord) {
        self.send(Record::Span(rec));
    }
    fn add_counter(&mut self, name: &str, delta: u64) {
        self.send(Record::Counter(name.to_string(), delta));
    }
    fn record_value(&mut self, name: &str, value: u64) {
        self.send(Record::Value(name.to_string(), value));
    }
    fn record_event(&mut self, rec: EventRecord) {
        self.send(Record::Event(rec));
    }
    fn take_trace(&mut self) -> Option<Trace> {
        None // the trace lives in the file; replay with `Trace::parse_jsonl`
    }
}

/// The writer thread: block for the next batch, then opportunistically
/// drain whatever else is queued, flushing each time the channel runs dry.
/// Uncapped, each batch is serialised into one reused `String` and written
/// with a single `write_all`; with a byte cap the records go out one at a
/// time instead, so the rotation point is checked per record and each
/// generation honours the cap tightly (capped streams are a debugging
/// configuration — the extra write calls are an accepted cost there). Exits
/// when every sender is gone (sink dropped) or on the first write error
/// (which `finish` surfaces).
fn writer_loop(rx: Receiver<Vec<Record>>, mut out: RotatingFile) -> io::Result<u64> {
    let mut lines = 0u64;
    let mut buf = String::with_capacity(16 * 1024);
    let capped = out.cap.is_some();
    let mut write_batch = |out: &mut RotatingFile, batch: Vec<Record>| -> io::Result<()> {
        buf.clear();
        for rec in &batch {
            rec.write_jsonl(&mut buf);
            lines += 1;
            if capped {
                out.write(buf.as_bytes())?;
                buf.clear();
            }
        }
        out.write(buf.as_bytes())
    };
    while let Ok(batch) = rx.recv() {
        write_batch(&mut out, batch)?;
        loop {
            match rx.try_recv() {
                Ok(batch) => write_batch(&mut out, batch)?,
                Err(TryRecvError::Empty) => {
                    out.flush()?;
                    break;
                }
                Err(TryRecvError::Disconnected) => {
                    out.flush()?;
                    return Ok(lines);
                }
            }
        }
    }
    out.flush()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests use the sink directly (no global install), so they need no
    // serialising lock.

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("citroen-stream-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn streams_records_and_replays_to_equal_trace() {
        let path = tmp("roundtrip.jsonl");
        let mut sink = StreamSink::create(&path).unwrap();
        let span = SpanRecord {
            id: 7,
            parent: 0,
            name: "weird\nname \"q\" é".into(),
            thread: 1,
            start_ns: 5,
            dur_ns: 10,
        };
        sink.record_span(span.clone());
        sink.add_counter("c", 2);
        sink.add_counter("c", 3);
        sink.record_value("h", 17);
        sink.record_event(EventRecord {
            name: "progress".into(),
            span: 7,
            thread: 1,
            at_ns: 9,
            fields: vec![("iter".into(), 1)],
        });
        assert_eq!(sink.finish().unwrap(), 5);
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        let t = Trace::parse_jsonl(&text).unwrap();
        assert_eq!(t.spans, vec![span]);
        assert_eq!(t.counters["c"], 5);
        assert_eq!(t.hists["h"].count, 1);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].field("iter"), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_sink_leaves_parseable_header() {
        let path = tmp("empty.jsonl");
        drop(StreamSink::create(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let t = Trace::parse_jsonl(&text).unwrap();
        assert!(t.spans.is_empty() && t.counters.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_cap_rotates_and_every_generation_parses() {
        let path = tmp("rotate.jsonl");
        let mut sink = StreamSink::create_with_cap(&path, Some(256)).unwrap();
        for i in 0..200u64 {
            sink.record_value("spin", i);
        }
        assert_eq!(sink.finish().unwrap(), 200);
        drop(sink);

        // The live file and both rotated generations exist, each starts with
        // its own meta header (parses standalone), and each honours the cap.
        let mut survivors = 0u64;
        for p in [path.clone(), suffixed(&path, 1), suffixed(&path, 2)] {
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            assert!(text.len() as u64 <= 256, "{}: {} bytes over cap", p.display(), text.len());
            let t = Trace::parse_jsonl(&text).unwrap();
            survivors += t.hists.get("spin").map_or(0, |h| h.count);
            std::fs::remove_file(&p).ok();
        }
        // Rotation keeps only the newest generations: some records survive,
        // most of the 200 are gone.
        assert!(survivors > 0 && survivors < 200, "survivors: {survivors}");
    }

    fn suffixed(p: &std::path::Path, n: u32) -> std::path::PathBuf {
        let mut name = p.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        std::path::PathBuf::from(name)
    }

    #[test]
    fn create_fails_on_unwritable_path() {
        assert!(StreamSink::create("/nonexistent-dir-xyz/trace.jsonl").is_err());
    }

    /// The writer's direct serialisation must stay byte-identical to the
    /// `Value`-tree emitters [`Trace::to_jsonl`] uses — `parse_jsonl` sees
    /// both, and `check.sh` diffs streamed against replayed traces.
    #[test]
    fn direct_serialisation_matches_value_emitter() {
        use crate::trace::{event_to_json, span_to_json, tagged};
        let span = SpanRecord {
            id: 3,
            parent: 1,
            name: "nasty\n\"span\"\té \u{1}".into(),
            thread: 2,
            start_ns: 0,
            dur_ns: u64::MAX,
        };
        let event = EventRecord {
            name: "progress \"x\"".into(),
            span: 3,
            thread: 2,
            at_ns: 42,
            fields: vec![("iter".into(), 0), ("best_ns".into(), u64::MAX)],
        };
        let cases = [
            (Record::Span(span.clone()), tagged("span", span_to_json(&span))),
            (Record::Event(event.clone()), tagged("event", event_to_json(&event))),
        ];
        for (rec, value) in &cases {
            let mut direct = String::new();
            rec.write_jsonl(&mut direct);
            assert_eq!(direct, format!("{}\n", value.emit_compact()));
        }
        let mut counter = String::new();
        Record::Counter("c\nx".into(), 7).write_jsonl(&mut counter);
        assert_eq!(counter, "{\"t\":\"counter\",\"name\":\"c\\nx\",\"delta\":7}\n");
        let mut val = String::new();
        Record::Value("h".into(), 9).write_jsonl(&mut val);
        assert_eq!(val, "{\"t\":\"value\",\"name\":\"h\",\"value\":9}\n");
    }
}
