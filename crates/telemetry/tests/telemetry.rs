//! Integration tests for the global telemetry state: span nesting, `rt::par`
//! worker attribution, enable/disable cycles, and the disabled fast path.
//!
//! The sink and the span-id stack are process-global, so every test in this
//! binary serialises on one lock (separate test binaries are separate
//! processes and cannot interfere).

use citroen_rt::par::par_map;
use citroen_telemetry as telemetry;
use citroen_telemetry::Trace;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialised() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test must not wedge the rest of the binary.
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Run `f` with a fresh in-memory sink installed and return what it recorded.
fn capture(f: impl FnOnce()) -> Trace {
    telemetry::enable();
    f();
    let t = telemetry::take_trace().expect("memory sink holds a trace");
    telemetry::disable();
    t
}

#[test]
fn spans_nest_and_record_parents() {
    let _g = serialised();
    let t = capture(|| {
        let outer = telemetry::span("outer");
        {
            let _inner = telemetry::span("inner");
            let _leaf = telemetry::span_dyn(|| format!("leaf.{}", 7));
        }
        assert_eq!(telemetry::current_span(), outer.id());
        let _sibling = telemetry::span("sibling");
        drop(outer);
    });
    assert_eq!(t.spans.len(), 4);
    let by_name = |n: &str| t.spans.iter().find(|s| s.name == n).unwrap();
    let (outer, inner, leaf, sib) =
        (by_name("outer"), by_name("inner"), by_name("leaf.7"), by_name("sibling"));
    assert_eq!(outer.parent, 0);
    assert_eq!(inner.parent, outer.id);
    assert_eq!(leaf.parent, inner.id);
    assert_eq!(sib.parent, outer.id);
    // Completion order: records land as guards drop. `outer` is dropped
    // before `sibling` goes out of scope — the out-of-order drop is
    // tolerated, and `sibling` keeps the parent captured at open time.
    let order: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(order, ["leaf.7", "inner", "outer", "sibling"]);
    // Children start within the parent and end no later than it.
    for (c, p) in [(inner, outer), (leaf, inner)] {
        assert!(c.start_ns >= p.start_ns);
        assert!(c.start_ns + c.dur_ns <= p.start_ns + p.dur_ns);
    }
}

#[test]
fn par_workers_attribute_to_calling_span() {
    let _g = serialised();
    let t = capture(|| {
        let _batch = telemetry::span("batch");
        let out = par_map((0..64u64).collect(), |x| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            x * 2
        });
        assert_eq!(out[63], 126);
    });
    let batch = t.spans.iter().find(|s| s.name == "batch").unwrap();
    let workers: Vec<_> = t.spans.iter().filter(|s| s.name == "par.worker").collect();
    if citroen_rt::par::thread_count(64) <= 1 {
        return; // sequential fallback: no workers to attribute
    }
    assert!(!workers.is_empty());
    for w in &workers {
        assert_eq!(w.parent, batch.id, "worker span must hang off the caller's span");
        assert_ne!(w.thread, batch.thread, "worker spans run on worker threads");
    }
    assert_eq!(t.counters["par.workers"], workers.len() as u64);
    assert!(t.counters.contains_key("par.work_ns"));
    assert!(t.counters.contains_key("par.queue_wait_ns"));
}

#[test]
fn counters_and_histograms_accumulate_and_roundtrip() {
    let _g = serialised();
    let t = capture(|| {
        telemetry::counter("c.a", 2);
        telemetry::counter("c.a", 3);
        telemetry::counter("c.zero", 0); // no-op, must not create the key
        telemetry::value("h.x", 5);
        telemetry::value("h.x", 4096);
        let _s = telemetry::span("only");
    });
    assert_eq!(t.counters["c.a"], 5);
    assert!(!t.counters.contains_key("c.zero"));
    let h = &t.hists["h.x"];
    assert_eq!((h.count, h.sum, h.min, h.max), (2, 4101, 5, 4096));
    // Full JSON round-trip of a real capture.
    let back = Trace::parse(&t.emit_pretty()).unwrap();
    assert_eq!(back, t);
}

#[test]
fn disabled_path_records_nothing() {
    let _g = serialised();
    telemetry::disable();
    assert!(!telemetry::is_enabled());
    // All entry points must be inert no-ops.
    let g = telemetry::span("ghost");
    assert_eq!(g.id(), 0);
    assert_eq!(telemetry::current_span(), 0);
    telemetry::counter("ghost.c", 9);
    telemetry::value("ghost.h", 9);
    drop(g);
    assert!(telemetry::take_trace().is_none());
    // Whatever was emitted while disabled must not leak into the next capture.
    let t = capture(|| {
        let _s = telemetry::span("real");
    });
    assert_eq!(t.spans.len(), 1);
    assert_eq!(t.spans[0].name, "real");
    assert!(t.counters.is_empty() && t.hists.is_empty());
}

/// A deterministic workload exercising every record type, with span names
/// that stress JSONL escaping (quotes, newlines, non-ASCII).
fn workload() {
    let _run = telemetry::span("run");
    for i in 0..3u64 {
        let _it = telemetry::span_dyn(|| format!("itér \"{i}\"\nline2"));
        telemetry::counter("iters", 1);
        telemetry::value("cost", 10 + i);
        telemetry::event("progress", &[("iter", i), ("best_ns", 100 - i)]);
    }
}

#[test]
fn stream_sink_replays_to_the_memory_sink_trace() {
    let _g = serialised();
    let mem = capture(workload);

    let path = std::env::temp_dir()
        .join(format!("citroen-telemetry-it-{}.jsonl", std::process::id()));
    telemetry::enable_stream(&path).unwrap();
    workload();
    drop(telemetry::disable()); // joins the writer and flushes the file
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let streamed = Trace::parse_jsonl(&text).unwrap();

    // Identical modulo timestamps and absolute span ids (the id counter is
    // process-global and does not reset between runs).
    assert_eq!(streamed.counters, mem.counters);
    assert_eq!(streamed.hists, mem.hists);
    let names =
        |t: &Trace| t.spans.iter().map(|s| s.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&streamed), names(&mem));
    let parent_names = |t: &Trace| -> Vec<(String, String)> {
        t.spans
            .iter()
            .map(|s| {
                let p = t
                    .spans
                    .iter()
                    .find(|q| q.id == s.parent)
                    .map(|q| q.name.clone())
                    .unwrap_or_default();
                (s.name.clone(), p)
            })
            .collect()
    };
    assert_eq!(parent_names(&streamed), parent_names(&mem));
    let events = |t: &Trace| {
        t.events
            .iter()
            .map(|e| (e.name.clone(), e.fields.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(events(&streamed), events(&mem));
    assert_eq!(mem.events.len(), 3);
    assert_eq!(mem.events[2].field("best_ns"), Some(98));
}

#[test]
fn enable_disable_cycles_produce_independent_traces() {
    let _g = serialised();
    let t1 = capture(|| telemetry::counter("cycle", 1));
    let t2 = capture(|| telemetry::counter("cycle", 41));
    assert_eq!(t1.counters["cycle"], 1);
    assert_eq!(t2.counters["cycle"], 41);
    // A guard opened while enabled but dropped after disable must not panic
    // and must not record.
    telemetry::enable();
    let g = telemetry::span("straddler");
    let _ = telemetry::take_trace();
    telemetry::disable();
    drop(g);
    assert!(telemetry::take_trace().is_none());
}
