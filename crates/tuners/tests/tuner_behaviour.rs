//! Behavioural tests for the baseline tuners: determinism, trace invariants,
//! and ensemble credit assignment.

use citroen_core::{Task, TaskConfig};
use citroen_passes::Registry;
use citroen_sim::Platform;
use citroen_tuners::{
    AnnealingTuner, BoAutophaseTuner, EnsembleTuner, GeneticTuner, HillClimbTuner, RandomTuner,
    SeqTuner,
};

fn task(seed: u64) -> Task {
    Task::new(
        citroen_suite::kernels::automotive_bitcount(),
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 12, seed, ..Default::default() },
    )
}

#[test]
fn traces_are_monotone_and_sized() {
    let tuners: Vec<Box<dyn SeqTuner>> = vec![
        Box::new(RandomTuner { seed: 1 }),
        Box::new(GeneticTuner { seed: 1, pop: 8 }),
        Box::new(HillClimbTuner { seed: 1, patience: 6 }),
        Box::new(AnnealingTuner { seed: 1, ..Default::default() }),
        Box::new(EnsembleTuner { seed: 1 }),
    ];
    for t in tuners {
        let mut task = task(1);
        let trace = t.run(&mut task, 8);
        assert_eq!(task.measurements, 8, "{}", t.name());
        assert!(
            trace.best_history.windows(2).all(|w| w[1] <= w[0] + 1e-15),
            "{}: best history must be monotone",
            t.name()
        );
        assert!(!trace.best_seqs.is_empty(), "{}", t.name());
    }
}

#[test]
fn same_seed_same_trace() {
    for mk in [|s| -> Box<dyn SeqTuner> { Box::new(RandomTuner { seed: s }) }, |s| -> Box<dyn SeqTuner> {
        Box::new(GeneticTuner { seed: s, pop: 8 })
    }] {
        let t1 = mk(42);
        let t2 = mk(42);
        let mut a = task(42);
        let mut b = task(42);
        let ra = t1.run(&mut a, 6);
        let rb = t2.run(&mut b, 6);
        assert_eq!(ra.runtimes, rb.runtimes, "{} must be seed-deterministic", t1.name());
    }
}

#[test]
fn different_seeds_explore_differently() {
    let mut a = task(1);
    let mut b = task(2);
    let ra = RandomTuner { seed: 1 }.run(&mut a, 6);
    let rb = RandomTuner { seed: 2 }.run(&mut b, 6);
    assert_ne!(ra.best_seqs, rb.best_seqs);
}

#[test]
fn bo_autophase_uses_the_model_loop() {
    // Budget must exceed the default `init_random` (8): with them equal, the
    // model loop only runs when the random init phase happens to hit
    // duplicate-binary cache hits, which depends on the rng stream.
    let mut t = task(3);
    let trace = BoAutophaseTuner { seed: 3 }.run(&mut t, 12);
    assert_eq!(t.measurements, 12);
    // The model loop compiles many candidates per measurement.
    assert!(t.compilations > 4 * t.measurements);
    assert!(trace.candidates_generated > 0);
}
