//! # citroen-tuners
//!
//! The competing baselines of the paper's evaluation (§5.4.4): random search,
//! a sequence genetic algorithm, hill climbing, simulated annealing, an
//! OpenTuner-style bandit ensemble, and thin wrappers exposing the
//! standard-BO feature ablations (raw-sequence and Autophase features) via
//! the CITROEN engine.

#![warn(missing_docs)]

use citroen_core::{run_citroen, CitroenConfig, FeatureKind, GeneratorKind, Task, TuneTrace};
use citroen_passes::PassId;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::{Rng, SeedableRng};

/// A phase-ordering tuner: consumes a measurement budget on a [`Task`].
pub trait SeqTuner {
    /// Tuner name for reports.
    fn name(&self) -> &'static str;
    /// Run for `budget` runtime measurements.
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace;
}

fn random_genome(rng: &mut StdRng, len: usize, npasses: usize) -> Vec<u16> {
    (0..len).map(|_| rng.gen_range(0..npasses) as u16).collect()
}

fn to_seq(g: &[u16]) -> Vec<PassId> {
    g.iter().map(|&v| PassId(v)).collect()
}

fn measure_genome(task: &mut Task, g: &[u16], trace: &mut TuneTrace) -> Option<f64> {
    let seq = to_seq(g);
    match task.measure_seq(&seq) {
        Ok(t) => {
            trace.record(t, vec![seq]);
            Some(t)
        }
        Err(_) => None,
    }
}

/// Mutate a genome: point substitutions plus an occasional swap.
fn mutate(rng: &mut StdRng, g: &[u16], npasses: usize, rate: f64) -> Vec<u16> {
    let mut out = g.to_vec();
    let mut changed = false;
    for v in out.iter_mut() {
        if rng.gen_bool(rate) {
            *v = rng.gen_range(0..npasses) as u16;
            changed = true;
        }
    }
    if rng.gen_bool(0.3) && out.len() >= 2 {
        let a = rng.gen_range(0..out.len());
        let b = rng.gen_range(0..out.len());
        out.swap(a, b);
        changed = true;
    }
    if !changed {
        let i = rng.gen_range(0..out.len());
        out[i] = rng.gen_range(0..npasses) as u16;
    }
    out
}

// ---------------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------------

/// Uniform random sequences (the paper's `RS` baseline).
pub struct RandomTuner {
    /// RNG seed.
    pub seed: u64,
}

impl SeqTuner for RandomTuner {
    fn name(&self) -> &'static str {
        "random"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = TuneTrace::default();
        let (len, np) = (task.seq_len(), task.registry.len());
        let mut guard = 0;
        while task.measurements < budget && guard < budget * 50 {
            let g = random_genome(&mut rng, len, np);
            measure_genome(task, &g, &mut trace);
            guard += 1;
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// Sequence GA
// ---------------------------------------------------------------------------

/// Genetic algorithm over pass sequences: tournament selection, two-point
/// crossover, point/swap mutation (Cooper-style GA phase ordering).
pub struct GeneticTuner {
    /// RNG seed.
    pub seed: u64,
    /// Population size.
    pub pop: usize,
}

impl Default for GeneticTuner {
    fn default() -> GeneticTuner {
        GeneticTuner { seed: 0, pop: 16 }
    }
}

impl SeqTuner for GeneticTuner {
    fn name(&self) -> &'static str {
        "ga"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = TuneTrace::default();
        let (len, np) = (task.seq_len(), task.registry.len());
        // population of (genome, fitness) kept best-first
        let mut pop: Vec<(Vec<u16>, f64)> = Vec::new();
        let mut guard = 0;
        while task.measurements < budget && guard < budget * 50 {
            guard += 1;
            let child = if pop.len() < self.pop {
                random_genome(&mut rng, len, np)
            } else {
                // tournament of 2, two-point crossover, mutation
                let pick = |rng: &mut StdRng, pop: &[(Vec<u16>, f64)]| {
                    let a = rng.gen_range(0..pop.len());
                    let b = rng.gen_range(0..pop.len());
                    pop[a.min(b)].0.clone()
                };
                let p1 = pick(&mut rng, &pop);
                let p2 = pick(&mut rng, &pop);
                let (mut lo, mut hi) = (rng.gen_range(0..len), rng.gen_range(0..len));
                if lo > hi {
                    std::mem::swap(&mut lo, &mut hi);
                }
                let mut child: Vec<u16> = p1.clone();
                child[lo..=hi].copy_from_slice(&p2[lo..=hi]);
                mutate(&mut rng, &child, np, 1.5 / len as f64)
            };
            if let Some(t) = measure_genome(task, &child, &mut trace) {
                let pos = pop.partition_point(|(_, f)| *f <= t);
                pop.insert(pos, (child, t));
                pop.truncate(self.pop.max(2));
            }
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// Hill climbing
// ---------------------------------------------------------------------------

/// First-improvement hill climbing from a random start with restarts.
pub struct HillClimbTuner {
    /// RNG seed.
    pub seed: u64,
    /// Non-improving steps before a restart.
    pub patience: usize,
}

impl Default for HillClimbTuner {
    fn default() -> HillClimbTuner {
        HillClimbTuner { seed: 0, patience: 12 }
    }
}

impl SeqTuner for HillClimbTuner {
    fn name(&self) -> &'static str {
        "hill-climb"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = TuneTrace::default();
        let (len, np) = (task.seq_len(), task.registry.len());
        let mut cur = random_genome(&mut rng, len, np);
        let mut cur_fit = f64::INFINITY;
        let mut stale = 0;
        let mut guard = 0;
        while task.measurements < budget && guard < budget * 50 {
            guard += 1;
            let cand = if stale > self.patience {
                stale = 0;
                cur_fit = f64::INFINITY;
                random_genome(&mut rng, len, np)
            } else {
                mutate(&mut rng, &cur, np, 1.0 / len as f64)
            };
            if let Some(t) = measure_genome(task, &cand, &mut trace) {
                if t < cur_fit {
                    cur = cand;
                    cur_fit = t;
                    stale = 0;
                } else {
                    stale += 1;
                }
            }
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// Simulated annealing
// ---------------------------------------------------------------------------

/// Simulated annealing with a geometric cooling schedule.
pub struct AnnealingTuner {
    /// RNG seed.
    pub seed: u64,
    /// Initial acceptance temperature (relative runtime units).
    pub t0: f64,
    /// Cooling factor per step.
    pub cooling: f64,
}

impl Default for AnnealingTuner {
    fn default() -> AnnealingTuner {
        AnnealingTuner { seed: 0, t0: 0.05, cooling: 0.97 }
    }
}

impl SeqTuner for AnnealingTuner {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = TuneTrace::default();
        let (len, np) = (task.seq_len(), task.registry.len());
        let mut cur = random_genome(&mut rng, len, np);
        let mut cur_fit = f64::INFINITY;
        let mut temp = self.t0 * task.o3_seconds;
        let mut guard = 0;
        while task.measurements < budget && guard < budget * 50 {
            guard += 1;
            let cand = mutate(&mut rng, &cur, np, 1.5 / len as f64);
            if let Some(t) = measure_genome(task, &cand, &mut trace) {
                let accept = t < cur_fit
                    || rng.gen_bool(((cur_fit - t) / temp.max(1e-12)).exp().clamp(0.0, 1.0));
                if accept {
                    cur = cand;
                    cur_fit = t;
                }
                temp *= self.cooling;
            }
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// OpenTuner-style ensemble
// ---------------------------------------------------------------------------

/// Bandit ensemble over {random, GA-step, HC-step, SA-step} with sliding-
/// window credit assignment — the mechanism of OpenTuner's AUC bandit (§3.1.1).
pub struct EnsembleTuner {
    /// RNG seed.
    pub seed: u64,
}

impl SeqTuner for EnsembleTuner {
    fn name(&self) -> &'static str {
        "ensemble"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = TuneTrace::default();
        let (len, np) = (task.seq_len(), task.registry.len());
        const ARMS: usize = 3; // random / mutate-best / crossover
        let mut rewards = [1.0f64; ARMS]; // optimistic init
        let mut pulls = [1.0f64; ARMS];
        let mut archive: Vec<(Vec<u16>, f64)> = Vec::new();
        let mut guard = 0;
        while task.measurements < budget && guard < budget * 50 {
            guard += 1;
            // UCB1 arm choice.
            let total: f64 = pulls.iter().sum();
            let arm = (0..ARMS)
                .max_by(|&a, &b| {
                    let ua = rewards[a] / pulls[a] + (2.0 * total.ln() / pulls[a]).sqrt();
                    let ub = rewards[b] / pulls[b] + (2.0 * total.ln() / pulls[b]).sqrt();
                    ua.partial_cmp(&ub).unwrap()
                })
                .unwrap();
            let cand = match arm {
                0 => random_genome(&mut rng, len, np),
                1 if !archive.is_empty() => {
                    mutate(&mut rng, &archive[0].0, np, 1.5 / len as f64)
                }
                2 if archive.len() >= 2 => {
                    let cut = rng.gen_range(0..len);
                    let mut c = archive[0].0.clone();
                    c[cut..].copy_from_slice(&archive[1].0[cut..]);
                    mutate(&mut rng, &c, np, 0.5 / len as f64)
                }
                _ => random_genome(&mut rng, len, np),
            };
            let best_before = trace.best();
            if let Some(t) = measure_genome(task, &cand, &mut trace) {
                pulls[arm] += 1.0;
                if t < best_before {
                    rewards[arm] += 1.0;
                }
                let pos = archive.partition_point(|(_, f)| *f <= t);
                archive.insert(pos, (cand, t));
                archive.truncate(8);
            }
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// Standard-BO feature ablations via the CITROEN engine
// ---------------------------------------------------------------------------

/// Standard BO on raw sequence features (the "previous BO works use raw
/// tuning parameters" baseline, §5.1/Fig. 5.9).
pub struct BoSeqTuner {
    /// RNG seed.
    pub seed: u64,
}

impl SeqTuner for BoSeqTuner {
    fn name(&self) -> &'static str {
        "bo-seq"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let cfg = CitroenConfig {
            features: FeatureKind::RawSequence,
            seed: self.seed,
            ..Default::default()
        };
        run_citroen(task, budget, &cfg).0
    }
}

/// BO on Autophase static IR features (Fig. 5.9/5.10's comparison).
pub struct BoAutophaseTuner {
    /// RNG seed.
    pub seed: u64,
}

impl SeqTuner for BoAutophaseTuner {
    fn name(&self) -> &'static str {
        "bo-autophase"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let cfg = CitroenConfig {
            features: FeatureKind::Autophase,
            seed: self.seed,
            ..Default::default()
        };
        run_citroen(task, budget, &cfg).0
    }
}

/// CITROEN itself, as a [`SeqTuner`] for uniform comparisons.
pub struct CitroenTuner {
    /// RNG seed.
    pub seed: u64,
    /// Optional config override.
    pub cfg: Option<CitroenConfig>,
}

impl SeqTuner for CitroenTuner {
    fn name(&self) -> &'static str {
        "citroen"
    }
    fn run(&self, task: &mut Task, budget: usize) -> TuneTrace {
        let cfg = self.cfg.clone().unwrap_or(CitroenConfig {
            seed: self.seed,
            ..Default::default()
        });
        run_citroen(task, budget, &cfg).0
    }
}

/// CITROEN without the compilation-statistics features / without the DES
/// generator / without coverage filtering — Fig. 5.8's ablations.
pub fn ablation(name: &str, seed: u64) -> CitroenConfig {
    let base = CitroenConfig { seed, ..Default::default() };
    match name {
        "no-stats" => CitroenConfig { features: FeatureKind::RawSequence, ..base },
        "no-des" => CitroenConfig { generator: GeneratorKind::Random, ..base },
        "no-coverage" => CitroenConfig { coverage_filter: false, ..base },
        "full" => base,
        other => panic!("unknown ablation '{other}'"),
    }
}

/// Every baseline tuner, seeded.
pub fn baselines(seed: u64) -> Vec<Box<dyn SeqTuner>> {
    vec![
        Box::new(RandomTuner { seed }),
        Box::new(GeneticTuner { seed, ..Default::default() }),
        Box::new(HillClimbTuner { seed, ..Default::default() }),
        Box::new(AnnealingTuner { seed, ..Default::default() }),
        Box::new(EnsembleTuner { seed }),
        Box::new(BoSeqTuner { seed }),
        Box::new(BoAutophaseTuner { seed }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_core::TaskConfig;
    use citroen_passes::Registry;
    use citroen_sim::Platform;

    fn task(seed: u64) -> Task {
        Task::new(
            citroen_suite::kernels::telecom_crc32(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig { seq_len: 12, seed, ..Default::default() },
        )
    }

    #[test]
    fn all_baselines_consume_exact_budget() {
        for tuner in baselines(3) {
            let mut t = task(3);
            let trace = tuner.run(&mut t, 10);
            assert_eq!(t.measurements, 10, "{} missed budget", tuner.name());
            assert!(trace.best().is_finite());
            assert!(trace.best_history.len() >= 10);
        }
    }

    #[test]
    fn ga_beats_or_matches_random_with_budget() {
        // Quantile check over a 10-seed window: either tuner can get stuck at
        // ~1.9x on a single unlucky draw, but the *median* over seeds is a
        // stable property — GA must not lose to random search there. Seeds
        // run in parallel (`par_map` is sequential on single-core hosts).
        let seeds: Vec<u64> = (1..=10).collect();
        let runs = citroen_rt::par::par_map(seeds, |seed| {
            let mut t1 = task(seed);
            let g = GeneticTuner { seed, ..Default::default() }.run(&mut t1, 25);
            let mut t2 = task(seed);
            let r = RandomTuner { seed }.run(&mut t2, 25);
            (g.best() / t1.o3_seconds, r.best() / t2.o3_seconds)
        });
        let median = |mut xs: Vec<f64>| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let ga = median(runs.iter().map(|(g, _)| *g).collect());
        let rnd = median(runs.iter().map(|(_, r)| *r).collect());
        eprintln!("GA median best/O3 {ga} vs random {rnd} over {runs:?}");
        assert!(ga < rnd * 1.10, "GA median {ga} vs random median {rnd}");
    }

    #[test]
    fn ablation_configs_differ() {
        assert_eq!(ablation("no-stats", 0).features, FeatureKind::RawSequence);
        assert_eq!(ablation("no-des", 0).generator, GeneratorKind::Random);
        assert!(!ablation("no-coverage", 0).coverage_filter);
        assert_eq!(ablation("full", 0).features, FeatureKind::CompilationStats);
    }
}
