//! Per-session telemetry routing.
//!
//! The telemetry facade is process-global (one sink), but the daemon runs
//! many sessions at once and wants one live-tailable JSONL stream per job.
//! [`RoutingSink`] multiplexes: sink methods run synchronously on the
//! recording thread, so the record's origin is
//! [`citroen_telemetry::current_thread_id`] (spans and events also carry it
//! explicitly), and each session thread registers itself in the shared
//! [`RouteTable`] for the duration of its job.
//!
//! Caveat: records emitted by *worker-pool* threads (per-candidate `compile`
//! spans inside a `batch` sweep) carry the pool thread's id, not the
//! session's, and are dropped — the per-job stream covers the session
//! thread's own spans, counters, and progress events, which is what
//! `citroen-trace tail` renders.
//!
//! The sink optionally also feeds the daemon's [`ServeMetrics`] hub
//! (DESIGN.md §12): span durations and counters from registered session
//! threads flow into the windowed metrics registries and the continuous
//! profiler *before* being routed to the per-job stream, so the `metrics`
//! verb works with or without `--trace-dir`.

use crate::metrics::ServeMetrics;
use citroen_telemetry::{current_thread_id, EventRecord, SpanRecord, StreamSink, TelemetrySink};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Thread-id → per-job stream registry, shared between the installed
/// [`RoutingSink`] and the session threads that register with it.
#[derive(Default)]
pub struct RouteTable {
    routes: Mutex<HashMap<u64, StreamSink>>,
}

impl RouteTable {
    /// Fresh, empty table.
    pub fn new() -> Arc<RouteTable> {
        Arc::new(RouteTable::default())
    }

    /// Route the *calling* thread's records to a new JSONL stream at `path`
    /// until [`RouteTable::unregister`]. Errors are reported, not fatal —
    /// the session simply runs without a stream.
    pub fn register_current(&self, path: PathBuf) {
        match StreamSink::create(&path) {
            Ok(sink) => {
                self.routes.lock().unwrap().insert(current_thread_id(), sink);
            }
            Err(e) => eprintln!("warning: cannot stream to '{}': {e}", path.display()),
        }
    }

    /// Stop routing the calling thread and flush/close its stream.
    pub fn unregister_current(&self) {
        let sink = self.routes.lock().unwrap().remove(&current_thread_id());
        if let Some(mut sink) = sink {
            let _ = sink.finish();
        }
    }

    fn with_route<F: FnOnce(&mut StreamSink)>(&self, thread: u64, f: F) {
        if let Some(sink) = self.routes.lock().unwrap().get_mut(&thread) {
            f(sink);
        }
    }
}

/// The installed process-global sink: feeds the metrics hub (when present),
/// then dispatches each record to the emitting thread's registered stream,
/// dropping unrouted records.
pub struct RoutingSink {
    table: Option<Arc<RouteTable>>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl RoutingSink {
    /// A sink dispatching through `table` (no metrics hub).
    pub fn new(table: Arc<RouteTable>) -> RoutingSink {
        RoutingSink { table: Some(table), metrics: None }
    }

    /// A sink with any combination of per-job stream routing and metrics
    /// feeding (at least one should be present to be useful).
    pub fn with_metrics(
        table: Option<Arc<RouteTable>>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> RoutingSink {
        RoutingSink { table, metrics }
    }

    fn with_route<F: FnOnce(&mut StreamSink)>(&self, thread: u64, f: F) {
        if let Some(table) = &self.table {
            table.with_route(thread, f);
        }
    }
}

impl TelemetrySink for RoutingSink {
    fn record_span(&mut self, rec: SpanRecord) {
        if let Some(m) = &self.metrics {
            m.feed_span(&rec);
        }
        let thread = rec.thread;
        self.with_route(thread, move |s| s.record_span(rec));
    }

    fn add_counter(&mut self, name: &str, delta: u64) {
        if let Some(m) = &self.metrics {
            m.feed_counter(name, delta);
        }
        self.with_route(current_thread_id(), |s| s.add_counter(name, delta));
    }

    fn record_value(&mut self, name: &str, value: u64) {
        self.with_route(current_thread_id(), |s| s.record_value(name, value));
    }

    fn record_event(&mut self, rec: EventRecord) {
        let thread = rec.thread;
        self.with_route(thread, move |s| s.record_event(rec));
    }
}
