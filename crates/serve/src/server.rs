//! The daemon: job lifecycle, session threads, and the serve loop.
//!
//! One [`Server`] owns the shared state; [`Server::serve`] reads
//! newline-delimited JSON requests from any `BufRead`, runs accepted jobs on
//! `max_concurrent` session threads, and writes replies (one JSON object per
//! line) to the output. EOF or a `shutdown` request starts a graceful drain:
//! no new jobs are accepted, queued and running jobs finish (cancel still
//! works), and a final `bye` reply is emitted.
//!
//! Determinism: a session's trajectory is a function of its own
//! `(spec, seed)` only. The shared compile cache returns bit-identical
//! results to a local compile, the shared pool affects scheduling but not
//! admission order (strictly-ordered within a session), and session RNGs are
//! private — so a cold job's `result.digest` equals the standalone
//! [`citroen_core::run_citroen`] digest at the same seed, regardless of what
//! other tenants run concurrently. Warm (`warm > 0`) jobs additionally
//! depend on the corpus contents at their start, i.e. on completion order.

use crate::metrics::{JobSummary, ServeMetrics, SloConfig};
use crate::protocol::{self as proto, codes, JobOutcome, JobSpec, JobState, ProtoError, Request};
use crate::state::{ServeConfig, ServeState};
use crate::telemetry_route::RouteTable;
use citroen_telemetry::metrics::WindowCfg;
use citroen_bo::transfer::{warm_seeds, TransferEntry};
use citroen_core::{
    run_citroen_session, trace_digest, CitroenConfig, SessionCtl, SessionEnv, SessionExit,
    SessionResult, Task, TaskConfig,
};
use citroen_passes::{PassId, Registry};
use citroen_sim::Platform;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Terminal tallies for one serve loop, returned by [`Server::serve`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs finished with a result.
    pub done: u64,
    /// Jobs that panicked or errored.
    pub failed: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Requests rejected with an `error` reply.
    pub rejected: u64,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    ctl: SessionCtl,
    queued_at: Instant,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<String>,
    open: bool,
}

/// The daemon. Create once; [`Server::serve`] may be called for successive
/// connections — the shared cache and transfer corpus persist across them.
pub struct Server {
    state: ServeState,
    jobs: Mutex<HashMap<String, JobEntry>>,
    queue: Mutex<QueueState>,
    cv: Condvar,
    next_tenant: AtomicU64,
    router: Option<Arc<RouteTable>>,
    metrics: Option<Arc<ServeMetrics>>,
    started: Instant,
}

/// The session configuration a job spec maps to. Public so the bench client
/// and the determinism gates can rerun the *exact* standalone equivalent.
pub fn job_citroen_config(spec: &JobSpec) -> CitroenConfig {
    CitroenConfig {
        candidates: 24,
        init_random: 6,
        oracle_prune: spec.oracle_prune,
        subsume_collapse: spec.subsume,
        batch: spec.batch.max(1),
        seed: spec.seed,
        ..Default::default()
    }
}

/// Build the tuning task a job spec describes.
pub fn job_task(spec: &JobSpec) -> Option<Task> {
    let bench = citroen_suite::all_benchmarks().into_iter().find(|b| b.name == spec.bench)?;
    Some(Task::new(
        bench,
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: spec.seq_len, seed: spec.seed, ..Default::default() },
    ))
}

impl Server {
    /// Build a daemon over fresh shared state.
    ///
    /// **Process-global side effect**: this may install a routing telemetry
    /// sink (and enable telemetry) for the whole process.
    ///
    /// - `cfg.trace_dir` set: always installs, replacing any previously
    ///   installed sink — the operator explicitly asked for per-job trace
    ///   streams (the last server constructed wins, as in PR 9).
    /// - metrics only (`cfg.metrics`, the default): installs **only when no
    ///   telemetry sink is currently installed**, so an embedder's or
    ///   test's own sink (e.g. `MemorySink`) is never silently rerouted.
    ///   The cost of skipping: this server's span-latency histograms and
    ///   flame profiles stay empty; job lifecycle metrics (submitted/done/
    ///   queue wait/run wall/cache) still work, as they bypass the sink.
    pub fn new(cfg: ServeConfig) -> Server {
        let router = cfg.trace_dir.as_deref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            RouteTable::new()
        });
        let metrics = cfg.metrics.then(|| {
            ServeMetrics::new(
                WindowCfg { width_ms: cfg.metrics_window_ms.max(1), ring: 6 },
                SloConfig {
                    queue_ms: cfg.slo_queue_ms,
                    run_ms: cfg.slo_run_ms,
                    compile_us: cfg.slo_compile_us,
                    hit_ratio_min: cfg.slo_hit_ratio,
                    ..SloConfig::default()
                },
            )
        });
        if router.is_some() || (metrics.is_some() && !citroen_telemetry::is_enabled()) {
            citroen_telemetry::install(Box::new(
                crate::telemetry_route::RoutingSink::with_metrics(
                    router.clone(),
                    metrics.clone(),
                ),
            ));
        }
        Server {
            state: ServeState::new(cfg),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            next_tenant: AtomicU64::new(1),
            router,
            metrics,
            started: Instant::now(),
        }
    }

    /// Shared-state handle (for gates inspecting cache counters).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// The observability hub (`None` when the daemon runs `--no-metrics`).
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.metrics.as_ref()
    }

    fn health_str(&self) -> &'static str {
        self.metrics.as_deref().map(|m| m.health_str()).unwrap_or("ok")
    }

    /// Serve one connection: read requests until EOF or `shutdown`, drain,
    /// emit `bye`, and return the tallies.
    pub fn serve<R: BufRead, W: Write + Send>(&self, input: R, output: W) -> ServeSummary {
        let out = Mutex::new(output);
        let summary = Mutex::new(ServeSummary::default());
        self.queue.lock().unwrap().open = true;

        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..self.state.cfg.max_concurrent.max(1))
                .map(|_| scope.spawn(|| self.worker_loop(&out, &summary)))
                .collect();

            for line in input.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                if line.trim().is_empty() {
                    continue;
                }
                match proto::parse_request(&line) {
                    Err(ProtoError { code, msg }) => {
                        summary.lock().unwrap().rejected += 1;
                        send(&out, proto::error_reply(code, &msg, None));
                    }
                    Ok(Request::Submit(spec)) => self.submit(spec, &out, &summary),
                    Ok(Request::Cancel { id }) => self.cancel(&id, &out, &summary),
                    Ok(Request::Status { id }) => self.status(id.as_deref(), &out, &summary),
                    Ok(Request::Stats) => self.stats(&out),
                    Ok(Request::Metrics { format }) => self.metrics_verb(format.as_deref(), &out),
                    Ok(Request::Shutdown) => break,
                }
            }

            // Graceful drain: close the queue, wake idle workers, join.
            self.queue.lock().unwrap().open = false;
            self.cv.notify_all();
            for w in workers {
                let _ = w.join();
            }
        });

        let s = *summary.lock().unwrap();
        send(&out, proto::bye_reply(s.done));
        s
    }

    fn submit(&self, spec: JobSpec, out: &Mutex<impl Write>, summary: &Mutex<ServeSummary>) {
        let reject = |code: &str, msg: &str| {
            summary.lock().unwrap().rejected += 1;
            send(out, proto::error_reply(code, msg, Some(&spec.id)));
        };
        if spec.budget == 0 || spec.budget > self.state.cfg.max_budget {
            return reject(
                codes::OVER_BUDGET,
                &format!("budget must be in 1..={}", self.state.cfg.max_budget),
            );
        }
        if !citroen_suite::all_benchmarks().iter().any(|b| b.name == spec.bench) {
            return reject(codes::UNKNOWN_BENCH, &format!("no benchmark '{}'", spec.bench));
        }
        {
            let mut jobs = self.jobs.lock().unwrap();
            if jobs.contains_key(&spec.id) {
                drop(jobs);
                return reject(codes::DUPLICATE_ID, "job id already used");
            }
            let mut queue = self.queue.lock().unwrap();
            if !queue.open {
                drop(queue);
                drop(jobs);
                return reject(codes::SHUTTING_DOWN, "daemon is draining");
            }
            let tenant = self.next_tenant.fetch_add(1, Ordering::Relaxed);
            jobs.insert(
                spec.id.clone(),
                JobEntry {
                    spec: spec.clone(),
                    state: JobState::Queued,
                    ctl: SessionCtl::new(tenant),
                    queued_at: Instant::now(),
                },
            );
            queue.q.push_back(spec.id.clone());
        }
        if let Some(m) = &self.metrics {
            m.job_queued(&spec.tenant);
        }
        self.cv.notify_one();
        summary.lock().unwrap().submitted += 1;
        send(out, proto::ack_reply(&spec.id, JobState::Queued.as_str()));
    }

    fn cancel(&self, id: &str, out: &Mutex<impl Write>, summary: &Mutex<ServeSummary>) {
        let mut jobs = self.jobs.lock().unwrap();
        match jobs.get_mut(id) {
            None => {
                summary.lock().unwrap().rejected += 1;
                send(out, proto::error_reply(codes::UNKNOWN_JOB, "no such job", Some(id)));
            }
            Some(entry) => match entry.state {
                JobState::Queued => {
                    // The worker skips it on dequeue; report terminal now.
                    // No session ever starts, so the metrics plane must
                    // count the terminal state here to balance
                    // `jobs.submitted`.
                    entry.state = JobState::Cancelled;
                    if let Some(m) = &self.metrics {
                        m.job_cancelled_queued(&entry.spec.tenant);
                    }
                    summary.lock().unwrap().cancelled += 1;
                    send(out, proto::job_reply(id, JobState::Cancelled));
                }
                JobState::Running => {
                    // The session observes the flag at its next iteration
                    // boundary and emits the terminal `result` itself.
                    entry.ctl.cancel();
                    send(out, proto::ack_reply(id, "cancelling"));
                }
                terminal => send(out, proto::job_reply(id, terminal)),
            },
        }
    }

    fn status(&self, id: Option<&str>, out: &Mutex<impl Write>, summary: &Mutex<ServeSummary>) {
        let jobs = self.jobs.lock().unwrap();
        match id {
            Some(id) => match jobs.get(id) {
                Some(e) => send(out, proto::job_reply(id, e.state)),
                None => {
                    summary.lock().unwrap().rejected += 1;
                    send(out, proto::error_reply(codes::UNKNOWN_JOB, "no such job", Some(id)));
                }
            },
            None => {
                let mut ids: Vec<&String> = jobs.keys().collect();
                ids.sort();
                for id in ids {
                    send(out, proto::job_reply(id, jobs[id].state));
                }
                let uptime = self.started.elapsed().as_millis() as u64;
                send(out, proto::daemon_reply(uptime, self.health_str()));
            }
        }
    }

    fn metrics_verb(&self, format: Option<&str>, out: &Mutex<impl Write>) {
        match &self.metrics {
            None => send(
                out,
                proto::error_reply(
                    codes::METRICS_DISABLED,
                    "daemon runs with metrics disabled",
                    None,
                ),
            ),
            Some(m) => match format {
                Some("text") => send(out, m.reply_text()),
                _ => send(out, m.reply_json()),
            },
        }
    }

    fn stats(&self, out: &Mutex<impl Write>) {
        let cache = self.state.cache.stats();
        let mut counts: Vec<(JobState, u64)> = [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ]
        .into_iter()
        .map(|s| (s, 0u64))
        .collect();
        for e in self.jobs.lock().unwrap().values() {
            if let Some(c) = counts.iter_mut().find(|(s, _)| *s == e.state) {
                c.1 += 1;
            }
        }
        let corpus = self.state.corpus.lock().unwrap().len() as u64;
        let uptime = self.started.elapsed().as_millis() as u64;
        send(out, proto::stats_reply(&cache, &counts, corpus, uptime, self.health_str()));
    }

    fn worker_loop(&self, out: &Mutex<impl Write>, summary: &Mutex<ServeSummary>) {
        loop {
            let id = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(id) = queue.q.pop_front() {
                        break id;
                    }
                    if !queue.open {
                        return;
                    }
                    queue = self.cv.wait(queue).unwrap();
                }
            };
            self.run_job(&id, out, summary);
        }
    }

    fn run_job(&self, id: &str, out: &Mutex<impl Write>, summary: &Mutex<ServeSummary>) {
        // Claim the job (it may have been cancelled while queued).
        let (spec, ctl, queue_wait) = {
            let mut jobs = self.jobs.lock().unwrap();
            let entry = jobs.get_mut(id).expect("queued job exists");
            if entry.state != JobState::Queued {
                return; // cancelled while queued; already reported terminal
            }
            entry.state = JobState::Running;
            let mut ctl = entry.ctl.clone();
            if entry.spec.timeout_ms > 0 {
                ctl = ctl.with_deadline(
                    Instant::now() + Duration::from_millis(entry.spec.timeout_ms),
                );
            }
            (entry.spec.clone(), ctl, entry.queued_at.elapsed())
        };
        send(out, proto::job_reply(id, JobState::Running));

        if let Some(router) = &self.router {
            let dir = self.state.cfg.trace_dir.as_deref().unwrap_or(".");
            router.register_current(std::path::Path::new(dir).join(format!("{id}.jsonl")));
        }
        if let Some(m) = &self.metrics {
            // Registers this session thread: spans/counters recorded from
            // here until `session_finished` flow into the tenant registry.
            m.session_started(&spec.tenant, queue_wait.as_millis() as u64);
        }
        let run_start = Instant::now();
        let ran = catch_unwind(AssertUnwindSafe(|| self.execute(&spec, ctl)));
        if let Some(router) = &self.router {
            router.unregister_current();
        }

        let (state, outcome) = match ran {
            Ok(outcome) => {
                let state = match outcome.exit.as_str() {
                    "completed" => JobState::Done,
                    _ => JobState::Cancelled,
                };
                (state, outcome)
            }
            Err(_) => (
                JobState::Failed,
                JobOutcome { exit: "panicked".to_string(), ..JobOutcome::default() },
            ),
        };
        if let Some(m) = &self.metrics {
            m.session_finished(
                JobSummary {
                    id: id.to_string(),
                    tenant: spec.tenant.clone(),
                    bench: spec.bench.clone(),
                    exit: outcome.exit.clone(),
                    queue_ms: queue_wait.as_millis() as u64,
                    run_ms: run_start.elapsed().as_millis() as u64,
                    compiles: outcome.compiles,
                    measurements: outcome.measurements,
                    warm_seeds: outcome.warm_seeds,
                },
                self.state.cache.stats(),
                self.state.corpus.lock().unwrap().len() as u64,
            );
        }
        {
            let mut jobs = self.jobs.lock().unwrap();
            jobs.get_mut(id).expect("running job exists").state = state;
        }
        {
            let mut s = summary.lock().unwrap();
            match state {
                JobState::Done => s.done += 1,
                JobState::Failed => s.failed += 1,
                JobState::Cancelled => s.cancelled += 1,
                _ => {}
            }
        }
        send(out, proto::result_reply(id, state, &outcome));
    }

    /// Run one tuning session under the shared environment and convert its
    /// result into the wire outcome. Completed sessions feed the corpus.
    fn execute(&self, spec: &JobSpec, ctl: SessionCtl) -> JobOutcome {
        let mut task = job_task(spec).expect("bench validated at submit");
        let mut cfg = job_citroen_config(spec);

        // Transfer warm-start: seed the initial design from the statistics-
        // space nearest neighbours among completed tenants.
        let descriptor = task.stats_descriptor();
        if spec.warm > 0 {
            let corpus = self.state.corpus.lock().unwrap();
            cfg.init_seeds = warm_seeds(&descriptor, &corpus, spec.warm);
        }
        let n_warm = cfg.init_seeds.len() as u64;

        let env = SessionEnv {
            shared_cache: Some(self.state.cache.clone()),
            graph: self.state.graph.clone(),
            pool: Some(self.state.pool.clone()),
            ctl,
        };
        let SessionResult { trace, report: _, exit } =
            run_citroen_session(&mut task, spec.budget, &cfg, &env);

        let best = trace.best();
        let speedup = if best.is_finite() && best > 0.0 { task.o3_seconds / best } else { 0.0 };
        if exit == SessionExit::Completed && best.is_finite() {
            if let Some(seq) = trace.best_seqs.first() {
                self.state.corpus.lock().unwrap().push(TransferEntry {
                    name: spec.bench.clone(),
                    descriptor,
                    genome: seq.iter().map(|p| p.0).collect(),
                    best_speedup: speedup,
                });
            }
        }
        JobOutcome {
            exit: match exit {
                SessionExit::Completed => "completed",
                SessionExit::Cancelled => "cancelled",
                SessionExit::TimedOut => "timed-out",
            }
            .to_string(),
            best_ns_bits: if best.is_finite() { best.to_bits() } else { 0 },
            speedup_bits: if speedup > 0.0 { speedup.to_bits() } else { 0 },
            digest: trace_digest(&trace),
            measurements: task.measurements as u64,
            compiles: task.compilations as u64,
            warm_seeds: n_warm,
            best_seq: trace
                .best_seqs
                .first()
                .map(|s| s.iter().map(|p: &PassId| p.0).collect())
                .unwrap_or_default(),
        }
    }
}

fn send(out: &Mutex<impl Write>, line: String) {
    let mut w = out.lock().unwrap();
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}
