//! # citroen-serve
//!
//! CITROEN-as-a-service: a multi-tenant tuning daemon. Tenants submit
//! tuning jobs (benchmark + budget + seed) as newline-delimited JSON over
//! stdio or a Unix socket; the daemon runs up to `max_concurrent` sessions
//! concurrently and shares state across them:
//!
//! 1. a global bounded LRU compile cache keyed by (source-module
//!    fingerprint, canonical genome) — tenants tuning the same program reuse
//!    each other's compilations bit-identically;
//! 2. a persisted `citroen-analyze oracle` interaction graph + work model,
//!    loaded once and warm-starting every session's canonicalizer;
//! 3. GRACE-style transfer warm-starts: completed sessions deposit their
//!    best genome keyed by an O3 compilation-statistics descriptor, and new
//!    jobs may seed their initial design from statistics-space nearest
//!    neighbours (`warm > 0`).
//!
//! See `DESIGN.md` §11 for the protocol, shared-state invariants, and the
//! determinism argument.

#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;
pub mod server;
pub mod state;
pub mod telemetry_route;

pub use metrics::{JobSummary, ServeMetrics, SloConfig};
pub use protocol::{codes, JobOutcome, JobSpec, JobState, ProtoError, Request};
pub use server::{job_citroen_config, job_task, Server, ServeSummary};
pub use state::{ServeConfig, ServeState};
pub use telemetry_route::{RouteTable, RoutingSink};
