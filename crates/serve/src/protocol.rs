//! The daemon's wire protocol: newline-delimited JSON, one message per line.
//!
//! Requests (client → daemon):
//!
//! ```json
//! {"type":"submit","job":{"id":"j1","bench":"telecom_gsm","budget":20,"seed":1}}
//! {"type":"cancel","id":"j1"}
//! {"type":"status"}            // or {"type":"status","id":"j1"}
//! {"type":"stats"}
//! {"type":"metrics"}           // or {"type":"metrics","format":"text"}
//! {"type":"shutdown"}
//! ```
//!
//! Replies (daemon → client): `ack`, `error`, `job` (state change),
//! `result` (terminal), `stats`, `metrics` (the observability snapshot,
//! DESIGN.md §12), `daemon` (uptime/health line closing a full `status`),
//! and `bye` (sent once after the graceful drain). All numbers are unsigned
//! integers ([`citroen_rt::json`] has no float form); fractional values
//! travel as IEEE-754 bit patterns (`f64::to_bits`), which is also what the
//! bit-identity gates compare. Wherever a `*_bits` field appears, a
//! *readable* twin may sit next to it — same name minus the suffix (e.g.
//! `speedup_bits` + `speedup`, `hit_ratio_bits` + `hit_ratio`) — holding a
//! trimmed three-decimal string purely for humans; gates and clients doing
//! exact comparison must use the `_bits` form.
//!
//! A malformed or unacceptable request yields one structured `error` reply
//! and leaves the daemon and every other tenant untouched.

use citroen_rt::json::Value;

/// Machine-readable error codes carried on `error` replies.
pub mod codes {
    /// The line was not valid JSON (or not a JSON object).
    pub const BAD_JSON: &str = "bad-json";
    /// The `type` field is missing or not a known request type.
    pub const UNKNOWN_TYPE: &str = "unknown-type";
    /// A required field is missing or has the wrong shape.
    pub const BAD_FIELD: &str = "bad-field";
    /// A job with this id already exists (any state).
    pub const DUPLICATE_ID: &str = "duplicate-id";
    /// The requested budget is zero or exceeds the daemon's cap.
    pub const OVER_BUDGET: &str = "over-budget";
    /// The named benchmark is not in the suite.
    pub const UNKNOWN_BENCH: &str = "unknown-bench";
    /// The id names no known job.
    pub const UNKNOWN_JOB: &str = "unknown-job";
    /// The daemon is draining and accepts no new jobs.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// A `metrics` request reached a daemon running with metrics disabled.
    pub const METRICS_DISABLED: &str = "metrics-disabled";
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a session slot.
    Queued,
    /// A session thread is tuning it.
    Running,
    /// Finished; a `result` reply was emitted.
    Done,
    /// The session panicked or errored; a `result` reply was emitted.
    Failed,
    /// Cancelled before or during the run.
    Cancelled,
}

impl JobState {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// One tuning job as submitted by a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen unique id.
    pub id: String,
    /// Benchmark name (must exist in [`citroen_suite::all_benchmarks`]).
    pub bench: String,
    /// Tenant the job is grouped under in the metrics plane (per-tenant
    /// registries, rates, health). Defaults to the benchmark name.
    pub tenant: String,
    /// Runtime-measurement budget.
    pub budget: usize,
    /// Session RNG seed (also the task's measurement-noise seed).
    pub seed: u64,
    /// Pass-sequence length (default 16).
    pub seq_len: usize,
    /// Measurements per model-guided iteration (default 1).
    pub batch: usize,
    /// Enable oracle pruning for this session.
    pub oracle_prune: bool,
    /// Enable subsumption collapse for this session.
    pub subsume: bool,
    /// Number of statistics-space nearest-neighbour transfer seeds to
    /// inject from the daemon's corpus (0 = cold start, the default).
    pub warm: usize,
    /// Per-job wall-clock timeout in milliseconds (0 = none).
    pub timeout_ms: u64,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a job.
    Submit(JobSpec),
    /// Cancel a queued or running job.
    Cancel {
        /// Target job id.
        id: String,
    },
    /// Report one job's state, or every job's when `id` is absent.
    Status {
        /// Optional target job id.
        id: Option<String>,
    },
    /// Report shared-cache and job counters.
    Stats,
    /// Report the observability snapshot (windowed metrics, profiles, SLO
    /// sentinels). `format: Some("text")` requests Prometheus-style text
    /// exposition instead of structured JSON.
    Metrics {
        /// Optional exposition format (`"json"` default, or `"text"`).
        format: Option<String>,
    },
    /// Stop accepting jobs, drain, and exit.
    Shutdown,
}

/// A request that could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of [`codes`].
    pub code: &'static str,
    /// Human-readable detail.
    pub msg: String,
}

fn err(code: &'static str, msg: impl Into<String>) -> ProtoError {
    ProtoError { code, msg: msg.into() }
}

fn need_str(v: &Value, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| err(codes::BAD_FIELD, format!("missing string field '{key}'")))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| err(codes::BAD_FIELD, format!("missing integer field '{key}'")))
}

fn opt_u64(v: &Value, key: &str, default: u64) -> Result<u64, ProtoError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_u64()
            .ok_or_else(|| err(codes::BAD_FIELD, format!("field '{key}' must be an integer"))),
    }
}

/// Parse one request line. Errors carry the structured code the daemon
/// echoes back; they never abort the read loop.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = Value::parse(line).map_err(|e| err(codes::BAD_JSON, e.to_string()))?;
    let ty = match v.get("type").and_then(Value::as_str) {
        Some(t) => t,
        None => return Err(err(codes::UNKNOWN_TYPE, "missing 'type' field")),
    };
    match ty {
        "submit" => {
            let job = v
                .get("job")
                .ok_or_else(|| err(codes::BAD_FIELD, "missing object field 'job'"))?;
            let bench = need_str(job, "bench")?;
            let tenant = match job.get("tenant").and_then(Value::as_str) {
                Some(t) => t.to_string(),
                None => bench.clone(),
            };
            let spec = JobSpec {
                id: need_str(job, "id")?,
                bench,
                tenant,
                budget: need_u64(job, "budget")? as usize,
                seed: opt_u64(job, "seed", 0)?,
                seq_len: opt_u64(job, "seq_len", 16)? as usize,
                batch: opt_u64(job, "batch", 1)?.max(1) as usize,
                oracle_prune: opt_u64(job, "oracle_prune", 0)? != 0,
                subsume: opt_u64(job, "subsume", 0)? != 0,
                warm: opt_u64(job, "warm", 0)? as usize,
                timeout_ms: opt_u64(job, "timeout_ms", 0)?,
            };
            Ok(Request::Submit(spec))
        }
        "cancel" => Ok(Request::Cancel { id: need_str(&v, "id")? }),
        "status" => Ok(Request::Status {
            id: v.get("id").and_then(Value::as_str).map(str::to_string),
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics {
            format: v.get("format").and_then(Value::as_str).map(str::to_string),
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(err(codes::UNKNOWN_TYPE, format!("unknown request type '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Reply builders
// ---------------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// `ack` reply: the request was accepted; `state` says what happens next.
pub fn ack_reply(id: &str, state: &str) -> String {
    obj(vec![("type", s("ack")), ("id", s(id)), ("state", s(state))]).emit_compact()
}

/// `error` reply with a structured code.
pub fn error_reply(code: &str, msg: &str, id: Option<&str>) -> String {
    let mut pairs = vec![("type", s("error")), ("code", s(code)), ("msg", s(msg))];
    if let Some(id) = id {
        pairs.push(("id", s(id)));
    }
    obj(pairs).emit_compact()
}

/// `job` reply: a state observation or transition.
pub fn job_reply(id: &str, state: JobState) -> String {
    obj(vec![("type", s("job")), ("id", s(id)), ("state", s(state.as_str()))]).emit_compact()
}

/// Terminal per-job numbers carried on the `result` reply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobOutcome {
    /// How the session ended: `completed`, `cancelled`, `timed-out`,
    /// or `panicked`.
    pub exit: String,
    /// Best runtime in seconds, as `f64::to_bits` (0 = no measurement).
    pub best_ns_bits: u64,
    /// Speedup over O3, as `f64::to_bits` (0 = no measurement).
    pub speedup_bits: u64,
    /// [`citroen_core::trace_digest`] of the session trace — the
    /// bit-identity fingerprint the determinism gate compares.
    pub digest: u64,
    /// Runtime measurements consumed.
    pub measurements: u64,
    /// Compilations performed by this session (shared-cache hits excluded).
    pub compiles: u64,
    /// Transfer seeds injected into this session's initial design.
    pub warm_seeds: u64,
    /// Best pass-id sequence found.
    pub best_seq: Vec<u16>,
}

/// `result` reply: the job reached a terminal state. `best_ns`/`speedup`
/// are the readable twins of the `_bits` fields (see the module doc).
pub fn result_reply(id: &str, state: JobState, o: &JobOutcome) -> String {
    obj(vec![
        ("type", s("result")),
        ("id", s(id)),
        ("state", s(state.as_str())),
        ("exit", s(&o.exit)),
        ("best_ns_bits", Value::U64(o.best_ns_bits)),
        ("best_ns", s(&crate::metrics::fmt_f64(f64::from_bits(o.best_ns_bits)))),
        ("speedup_bits", Value::U64(o.speedup_bits)),
        ("speedup", s(&crate::metrics::fmt_f64(f64::from_bits(o.speedup_bits)))),
        ("digest", Value::U64(o.digest)),
        ("measurements", Value::U64(o.measurements)),
        ("compiles", Value::U64(o.compiles)),
        ("warm_seeds", Value::U64(o.warm_seeds)),
        ("best_seq", Value::Arr(o.best_seq.iter().map(|&p| Value::U64(p as u64)).collect())),
    ])
    .emit_compact()
}

/// `stats` reply: shared-cache counters (including the LRU eviction count),
/// job-state counts, transfer-corpus size, daemon uptime, and the current
/// health verdict. `hit_ratio` is the readable twin of `hit_ratio_bits`
/// (see the module doc).
#[allow(clippy::too_many_arguments)]
pub fn stats_reply(
    cache: &citroen_core::SharedCacheStats,
    jobs: &[(JobState, u64)],
    corpus: u64,
    uptime_ms: u64,
    health: &str,
) -> String {
    let ratio = if cache.hits + cache.misses > 0 {
        cache.hits as f64 / (cache.hits + cache.misses) as f64
    } else {
        0.0
    };
    obj(vec![
        ("type", s("stats")),
        ("uptime_ms", Value::U64(uptime_ms)),
        ("health", s(health)),
        (
            "cache",
            obj(vec![
                ("hits", Value::U64(cache.hits)),
                ("cross_hits", Value::U64(cache.cross_hits)),
                ("misses", Value::U64(cache.misses)),
                ("insertions", Value::U64(cache.insertions)),
                ("evictions", Value::U64(cache.evictions)),
                ("len", Value::U64(cache.len)),
                ("hit_ratio_bits", Value::U64(ratio.to_bits())),
                ("hit_ratio", s(&crate::metrics::fmt_f64(ratio))),
            ]),
        ),
        (
            "jobs",
            Value::Obj(
                jobs.iter()
                    .map(|(st, n)| (st.as_str().to_string(), Value::U64(*n)))
                    .collect(),
            ),
        ),
        ("corpus", Value::U64(corpus)),
    ])
    .emit_compact()
}

/// `daemon` reply: the uptime/health line appended to a full `status`
/// listing.
pub fn daemon_reply(uptime_ms: u64, health: &str) -> String {
    obj(vec![
        ("type", s("daemon")),
        ("uptime_ms", Value::U64(uptime_ms)),
        ("health", s(health)),
    ])
    .emit_compact()
}

/// `bye` reply: emitted once after the graceful drain, then the daemon exits.
pub fn bye_reply(done: u64) -> String {
    obj(vec![("type", s("bye")), ("done", Value::U64(done))]).emit_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_with_defaults() {
        let r = parse_request(
            r#"{"type":"submit","job":{"id":"a","bench":"telecom_gsm","budget":10}}"#,
        )
        .unwrap();
        match r {
            Request::Submit(j) => {
                assert_eq!(j.id, "a");
                assert_eq!(j.bench, "telecom_gsm");
                assert_eq!(j.tenant, "telecom_gsm"); // defaults to the bench
                assert_eq!(j.budget, 10);
                assert_eq!(j.seed, 0);
                assert_eq!(j.seq_len, 16);
                assert_eq!(j.batch, 1);
                assert_eq!(j.warm, 0);
                assert_eq!(j.timeout_ms, 0);
                assert!(!j.oracle_prune && !j.subsume);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines_with_structured_codes() {
        assert_eq!(parse_request("{oops").unwrap_err().code, codes::BAD_JSON);
        assert_eq!(parse_request(r#"{"id":"x"}"#).unwrap_err().code, codes::UNKNOWN_TYPE);
        assert_eq!(parse_request(r#"{"type":"zap"}"#).unwrap_err().code, codes::UNKNOWN_TYPE);
        assert_eq!(parse_request(r#"{"type":"cancel"}"#).unwrap_err().code, codes::BAD_FIELD);
        assert_eq!(
            parse_request(r#"{"type":"submit","job":{"id":"a","bench":"b"}}"#)
                .unwrap_err()
                .code,
            codes::BAD_FIELD
        );
        assert_eq!(
            parse_request(r#"{"type":"submit","job":{"id":"a","bench":"b","budget":"x"}}"#)
                .unwrap_err()
                .code,
            codes::BAD_FIELD
        );
    }

    #[test]
    fn replies_are_single_line_json() {
        let lines = [
            ack_reply("j1", "queued"),
            error_reply(codes::BAD_JSON, "truncated", None),
            job_reply("j1", JobState::Running),
            result_reply("j1", JobState::Done, &JobOutcome::default()),
            bye_reply(3),
        ];
        for l in &lines {
            assert!(!l.contains('\n'), "{l}");
            Value::parse(l).expect("reply parses back");
        }
    }

    #[test]
    fn status_and_shutdown_round_trip() {
        assert_eq!(parse_request(r#"{"type":"status"}"#).unwrap(), Request::Status { id: None });
        assert_eq!(
            parse_request(r#"{"type":"status","id":"z"}"#).unwrap(),
            Request::Status { id: Some("z".into()) }
        );
        assert_eq!(parse_request(r#"{"type":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"type":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn parses_metrics_and_explicit_tenant() {
        assert_eq!(
            parse_request(r#"{"type":"metrics"}"#).unwrap(),
            Request::Metrics { format: None }
        );
        assert_eq!(
            parse_request(r#"{"type":"metrics","format":"text"}"#).unwrap(),
            Request::Metrics { format: Some("text".into()) }
        );
        let r = parse_request(
            r#"{"type":"submit","job":{"id":"a","bench":"telecom_gsm","budget":1,"tenant":"team-x"}}"#,
        )
        .unwrap();
        match r {
            Request::Submit(j) => assert_eq!(j.tenant, "team-x"),
            other => panic!("wrong parse: {other:?}"),
        }
    }
}
