//! The daemon's observability hub: windowed metrics, continuous profiling,
//! and SLO sentinels (DESIGN.md §12).
//!
//! One [`ServeMetrics`] per daemon, shared (`Arc`) between the server's job
//! lifecycle hooks, the installed [`crate::RoutingSink`] (which feeds span
//! durations and counters from registered session threads), and the
//! `metrics` protocol verb. All state lives behind one mutex; every signal
//! recorded here is coarse (per span completion, per job transition), so
//! contention is negligible next to the timed work — `micro --metrics-gate`
//! bounds the per-record cost.
//!
//! Three layers:
//!
//! - **Registries** ([`citroen_telemetry::metrics::MetricsRegistry`]): a
//!   daemon-global registry plus one per tenant, holding windowed counters
//!   (job transitions, compiles, cache traffic), gauges (cache/corpus
//!   sizes), and windowed histograms (queue wait, run wall, span latencies).
//! - **Continuous profiling**: each registered session thread's spans are
//!   sampled into a bounded per-job buffer; on job completion the buffer is
//!   folded through [`Trace::flame_stacks`] into a daemon-wide flame-stack
//!   map, alongside a bounded ring of recent job summaries.
//! - **SLO sentinels** ([`citroen_telemetry::metrics::Sentinel`]): EWMA
//!   watchdogs on queue wait, run wall, compile latency, and the shared
//!   cache hit ratio. A breach flips the daemon's `health` verdict to
//!   `degraded` (recoverable) and emits one `slo.breach.<name>` telemetry
//!   event per ok→breach edge.
//!
//! Reentrancy discipline: [`ServeMetrics::feed_span`] and
//! [`ServeMetrics::feed_counter`] run *inside* sink dispatch — the caller
//! ([`crate::RoutingSink`] via `citroen_telemetry`) holds the process-global
//! `SINK` mutex, so nothing on those paths may call back into
//! `citroen_telemetry` (`event()` re-locks the same non-reentrant mutex on
//! the same thread: instant self-deadlock). Breaches detected there are
//! queued in the hub and emitted by the next lifecycle hook
//! (`job_queued` / `session_started` / `session_finished`), which the server
//! calls from plain (non-sink) contexts. The `health` verdict itself flips
//! immediately either way — only the event record is deferred.
//!
//! Determinism: nothing in here feeds back into any session — recording is
//! strictly observational, which is what the 10-seed metrics-on identity
//! test pins.

use citroen_core::SharedCacheStats;
use citroen_rt::json::Value;
use citroen_telemetry::metrics::{MetricsRegistry, Sentinel, SloKind, WindowCfg};
use citroen_telemetry::{current_thread_id, Histogram, SpanRecord, Trace};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Span names whose durations are folded into latency histograms
/// (`span.<name>_us`, microseconds) on the global and tenant registries.
const TRACKED_SPANS: [&str; 3] = ["compile", "measure", "iteration"];

/// Flame-stack entries retained daemon-wide (top by self-time).
const FLAME_CAP: usize = 256;

/// SLO thresholds and EWMA smoothing. Latency thresholds are upper bounds;
/// the hit ratio is a lower bound (0.0 disables it — a ratio never goes
/// negative).
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Queue-wait EWMA ceiling in milliseconds.
    pub queue_ms: f64,
    /// Run-wall EWMA ceiling in milliseconds.
    pub run_ms: f64,
    /// Compile-span EWMA ceiling in microseconds.
    pub compile_us: f64,
    /// Shared-cache hit-ratio EWMA floor (per-job hit-ratio samples).
    pub hit_ratio_min: f64,
    /// EWMA smoothing factor for every sentinel.
    pub alpha: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            queue_ms: 60_000.0,
            run_ms: 300_000.0,
            compile_us: 5_000_000.0,
            hit_ratio_min: 0.0,
            alpha: 0.3,
        }
    }
}

/// One completed job's footprint, kept in the bounded recent ring.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Job id.
    pub id: String,
    /// Tenant the job was grouped under.
    pub tenant: String,
    /// Benchmark name.
    pub bench: String,
    /// Terminal exit: `completed`, `cancelled`, `timed-out`, `panicked`.
    pub exit: String,
    /// Milliseconds spent queued.
    pub queue_ms: u64,
    /// Milliseconds of session wall time.
    pub run_ms: u64,
    /// Compilations performed.
    pub compiles: u64,
    /// Runtime measurements consumed.
    pub measurements: u64,
    /// Transfer warm-start seeds injected.
    pub warm_seeds: u64,
}

struct ThreadScope {
    tenant: String,
    spans: Vec<SpanRecord>,
    dropped: u64,
}

struct TenantScope {
    reg: MetricsRegistry,
    run_sentinel: Sentinel,
}

struct Hub {
    global: MetricsRegistry,
    tenants: BTreeMap<String, TenantScope>,
    sentinels: Vec<Sentinel>,
    threads: HashMap<u64, ThreadScope>,
    flames: BTreeMap<String, u64>,
    spans_sampled: u64,
    spans_dropped: u64,
    recent: VecDeque<JobSummary>,
    cache_last: SharedCacheStats,
    /// Breaches detected inside sink dispatch (`feed_span`), awaiting
    /// emission from a non-sink context — see the module docs.
    pending_breaches: Vec<(String, f64, f64)>,
}

/// The daemon-wide observability hub. Cheap to clone the `Arc`; all methods
/// take `&self`.
pub struct ServeMetrics {
    epoch: Instant,
    window: WindowCfg,
    slo: SloConfig,
    profile_cap: usize,
    recent_cap: usize,
    hub: Mutex<Hub>,
}

impl ServeMetrics {
    /// A fresh hub. `window` sets the ring geometry of every registry.
    pub fn new(window: WindowCfg, slo: SloConfig) -> Arc<ServeMetrics> {
        let sentinels = vec![
            Sentinel::new("queue_wait_ms", slo.queue_ms, SloKind::Above, slo.alpha),
            Sentinel::new("run_wall_ms", slo.run_ms, SloKind::Above, slo.alpha),
            Sentinel::new("compile_us", slo.compile_us, SloKind::Above, slo.alpha),
            Sentinel::new("cache_hit_ratio", slo.hit_ratio_min, SloKind::Below, slo.alpha),
        ];
        Arc::new(ServeMetrics {
            epoch: Instant::now(),
            window,
            slo,
            profile_cap: 2048,
            recent_cap: 32,
            hub: Mutex::new(Hub {
                global: MetricsRegistry::new(window),
                tenants: BTreeMap::new(),
                sentinels,
                threads: HashMap::new(),
                flames: BTreeMap::new(),
                spans_sampled: 0,
                spans_dropped: 0,
                recent: VecDeque::new(),
                cache_last: SharedCacheStats::default(),
                pending_breaches: Vec::new(),
            }),
        })
    }

    /// Milliseconds since the hub was created (the registries' time base).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Daemon uptime in milliseconds (alias of [`ServeMetrics::now_ms`]).
    pub fn uptime_ms(&self) -> u64 {
        self.now_ms()
    }

    fn tenant_reg<'h>(hub: &'h mut Hub, tenant: &str, window: WindowCfg, slo: &SloConfig) -> &'h mut TenantScope {
        hub.tenants.entry(tenant.to_string()).or_insert_with(|| TenantScope {
            reg: MetricsRegistry::new(window),
            run_sentinel: Sentinel::new("run_wall_ms", slo.run_ms, SloKind::Above, slo.alpha),
        })
    }

    /// A job was accepted into the queue.
    pub fn job_queued(&self, tenant: &str) {
        let now = self.now_ms();
        let breached = {
            let mut hub = self.hub.lock().unwrap();
            hub.global.add("jobs.submitted", 1, now);
            Self::tenant_reg(&mut hub, tenant, self.window, &self.slo)
                .reg
                .add("jobs.submitted", 1, now);
            std::mem::take(&mut hub.pending_breaches)
        };
        Self::emit_breaches(&breached);
    }

    /// A queued job was cancelled before any session thread claimed it.
    /// `session_finished` never fires for such a job, so this is what keeps
    /// `jobs.submitted` balanced by terminal counters
    /// (`jobs.done + jobs.failed + jobs.cancelled`).
    pub fn job_cancelled_queued(&self, tenant: &str) {
        let now = self.now_ms();
        let breached = {
            let mut hub = self.hub.lock().unwrap();
            hub.global.add("jobs.cancelled", 1, now);
            Self::tenant_reg(&mut hub, tenant, self.window, &self.slo)
                .reg
                .add("jobs.cancelled", 1, now);
            std::mem::take(&mut hub.pending_breaches)
        };
        Self::emit_breaches(&breached);
    }

    /// A session thread claimed a job: records the queue wait and routes the
    /// *calling* thread's spans/counters to `tenant` until
    /// [`ServeMetrics::session_finished`].
    pub fn session_started(&self, tenant: &str, queue_wait_ms: u64) {
        let now = self.now_ms();
        let mut breached: Vec<(String, f64, f64)>;
        {
            let mut hub = self.hub.lock().unwrap();
            breached = std::mem::take(&mut hub.pending_breaches);
            hub.global.observe("queue_wait_ms", queue_wait_ms, now);
            let scope = Self::tenant_reg(&mut hub, tenant, self.window, &self.slo);
            scope.reg.observe("queue_wait_ms", queue_wait_ms, now);
            hub.threads.insert(
                current_thread_id(),
                ThreadScope { tenant: tenant.to_string(), spans: Vec::new(), dropped: 0 },
            );
            let q = &mut hub.sentinels[0];
            if q.observe(queue_wait_ms as f64) {
                breached.push((q.name.clone(), q.ewma.value().unwrap_or(0.0), q.threshold));
            }
        }
        // Emitted outside the hub lock: the event goes through the global
        // sink, whose span path locks the hub (lock-order discipline). This
        // is a plain (non-sink) context, so the telemetry SINK mutex is free
        // and queued sink-path breaches can drain here too.
        Self::emit_breaches(&breached);
    }

    /// The session finished (any exit, including panic): fold its profile,
    /// account its lifecycle numbers, observe the SLOs, push the summary.
    pub fn session_finished(&self, job: JobSummary, cache: SharedCacheStats, corpus_len: u64) {
        let now = self.now_ms();
        let mut breached: Vec<(String, f64, f64)>;
        {
            let mut hub = self.hub.lock().unwrap();
            breached = std::mem::take(&mut hub.pending_breaches);

            // Lifecycle counters and run-wall histograms, global + tenant.
            let outcome_key = match job.exit.as_str() {
                "completed" => "jobs.done",
                "panicked" => "jobs.failed",
                _ => "jobs.cancelled",
            };
            hub.global.add(outcome_key, 1, now);
            hub.global.add("compiles", job.compiles, now);
            hub.global.add("measurements", job.measurements, now);
            hub.global.add("warm_seeds", job.warm_seeds, now);
            hub.global.observe("run_wall_ms", job.run_ms, now);
            {
                let scope = Self::tenant_reg(&mut hub, &job.tenant, self.window, &self.slo);
                scope.reg.add(outcome_key, 1, now);
                scope.reg.add("compiles", job.compiles, now);
                scope.reg.add("measurements", job.measurements, now);
                scope.reg.add("warm_seeds", job.warm_seeds, now);
                scope.reg.observe("run_wall_ms", job.run_ms, now);
                if scope.run_sentinel.observe(job.run_ms as f64) {
                    let s = &scope.run_sentinel;
                    breached.push((
                        format!("tenant.{}.{}", event_safe(&job.tenant), s.name),
                        s.ewma.value().unwrap_or(0.0),
                        s.threshold,
                    ));
                }
            }

            // Shared-cache deltas since the previous completion: windowed
            // counters for traffic, gauges for sizes, a hit-ratio sample
            // for the sentinel.
            let d_hits = cache.hits.saturating_sub(hub.cache_last.hits);
            let d_cross = cache.cross_hits.saturating_sub(hub.cache_last.cross_hits);
            let d_miss = cache.misses.saturating_sub(hub.cache_last.misses);
            let d_evict = cache.evictions.saturating_sub(hub.cache_last.evictions);
            hub.global.add("cache.hits", d_hits, now);
            hub.global.add("cache.cross_hits", d_cross, now);
            hub.global.add("cache.misses", d_miss, now);
            hub.global.add("cache.evictions", d_evict, now);
            hub.global.set_gauge("cache.len", cache.len);
            hub.global.set_gauge("corpus.len", corpus_len);
            hub.cache_last = cache;

            // Continuous profiling: fold the thread's sampled spans into the
            // daemon-wide flame stacks.
            if let Some(scope) = hub.threads.remove(&current_thread_id()) {
                hub.spans_sampled += scope.spans.len() as u64;
                hub.spans_dropped += scope.dropped;
                if !scope.spans.is_empty() {
                    let trace = Trace { spans: scope.spans, ..Trace::default() };
                    for (stack, ns) in trace.flame_stacks() {
                        *hub.flames.entry(stack).or_insert(0) += ns;
                    }
                    if hub.flames.len() > FLAME_CAP {
                        let mut by_ns: Vec<(String, u64)> =
                            std::mem::take(&mut hub.flames).into_iter().collect();
                        by_ns.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                        by_ns.truncate(FLAME_CAP);
                        hub.flames = by_ns.into_iter().collect();
                    }
                }
            }

            let recent_cap = self.recent_cap;
            hub.recent.push_back(job.clone());
            while hub.recent.len() > recent_cap {
                hub.recent.pop_front();
            }

            // Sentinels: run wall always; hit ratio only when the job
            // generated cache traffic.
            let r = &mut hub.sentinels[1];
            if r.observe(job.run_ms as f64) {
                breached.push((r.name.clone(), r.ewma.value().unwrap_or(0.0), r.threshold));
            }
            if d_hits + d_miss > 0 {
                let ratio = d_hits as f64 / (d_hits + d_miss) as f64;
                let h = &mut hub.sentinels[3];
                if h.observe(ratio) {
                    breached.push((h.name.clone(), h.ewma.value().unwrap_or(0.0), h.threshold));
                }
            }
        }
        Self::emit_breaches(&breached);
    }

    /// Feed one completed span (called by the routing sink, synchronously on
    /// the recording thread — but keyed by `rec.thread`, so pool-worker
    /// spans forwarded later would still attribute correctly).
    ///
    /// Runs while the caller holds the process-global telemetry `SINK`
    /// mutex, so it must NOT call back into `citroen_telemetry` (see the
    /// module docs): a compile-latency breach is queued in the hub and
    /// emitted by the next lifecycle hook instead.
    pub fn feed_span(&self, rec: &SpanRecord) {
        let now = self.now_ms();
        let mut hub = self.hub.lock().unwrap();
        let Some(scope) = hub.threads.get_mut(&rec.thread) else { return };
        if scope.spans.len() < self.profile_cap {
            scope.spans.push(rec.clone());
        } else {
            scope.dropped += 1;
        }
        let tenant = scope.tenant.clone();
        if TRACKED_SPANS.contains(&rec.name.as_str()) {
            let us = rec.dur_ns / 1_000;
            let key = format!("span.{}_us", rec.name);
            hub.global.observe(&key, us, now);
            Self::tenant_reg(&mut hub, &tenant, self.window, &self.slo)
                .reg
                .observe(&key, us, now);
            if rec.name == "compile" {
                let c = &mut hub.sentinels[2];
                if c.observe(us as f64) {
                    let rec = (c.name.clone(), c.ewma.value().unwrap_or(0.0), c.threshold);
                    hub.pending_breaches.push(rec);
                }
            }
        }
    }

    /// Feed one counter increment from the calling thread (registered
    /// session threads only; everything else is ignored).
    pub fn feed_counter(&self, name: &str, delta: u64) {
        let now = self.now_ms();
        let mut hub = self.hub.lock().unwrap();
        let Some(scope) = hub.threads.get(&current_thread_id()) else { return };
        let tenant = scope.tenant.clone();
        Self::tenant_reg(&mut hub, &tenant, self.window, &self.slo).reg.add(name, delta, now);
    }

    /// Emit one `slo.breach.<name>` event per record. Only callable from
    /// plain (non-sink) contexts: `event()` locks the global telemetry
    /// `SINK` mutex, which sink-dispatch paths already hold.
    fn emit_breaches(breached: &[(String, f64, f64)]) {
        for (name, ewma, threshold) in breached {
            citroen_telemetry::event(
                &format!("slo.breach.{name}"),
                &[("ewma_bits", ewma.to_bits()), ("threshold_bits", threshold.to_bits())],
            );
        }
    }

    /// `true` while no sentinel (global or per-tenant) is in breach.
    pub fn healthy(&self) -> bool {
        let hub = self.hub.lock().unwrap();
        hub.sentinels.iter().all(|s| !s.breached)
            && hub.tenants.values().all(|t| !t.run_sentinel.breached)
    }

    /// The wire spelling of the health verdict: `ok` or `degraded`.
    pub fn health_str(&self) -> &'static str {
        if self.healthy() {
            "ok"
        } else {
            "degraded"
        }
    }

    // -- exposition ---------------------------------------------------------

    /// The `metrics` reply as structured JSON (one line). Readable `f64`s
    /// are carried twice: `*_bits` (`f64::to_bits`, exact) and a formatted
    /// decimal string (for humans; never compared by gates).
    pub fn reply_json(&self) -> String {
        let now = self.now_ms();
        let hub = self.hub.lock().unwrap();
        let healthy = hub.sentinels.iter().all(|s| !s.breached)
            && hub.tenants.values().all(|t| !t.run_sentinel.breached);
        let mut slo: Vec<Value> = hub.sentinels.iter().map(sentinel_json).collect();
        for t in hub.tenants.values() {
            if t.run_sentinel.breached {
                slo.push(sentinel_json(&t.run_sentinel));
            }
        }
        let tenants = Value::Obj(
            hub.tenants
                .iter()
                .map(|(name, t)| {
                    let mut fields = registry_json(&t.reg, now);
                    fields.insert(
                        0,
                        (
                            "health".to_string(),
                            vs(if t.run_sentinel.breached { "degraded" } else { "ok" }),
                        ),
                    );
                    (name.clone(), Value::Obj(fields))
                })
                .collect(),
        );
        let mut stacks: Vec<(&String, &u64)> = hub.flames.iter().collect();
        stacks.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let stacks = Value::Arr(
            stacks
                .into_iter()
                .take(40)
                .map(|(st, ns)| {
                    Value::Obj(vec![
                        ("stack".to_string(), vs(st)),
                        ("ns".to_string(), Value::U64(*ns)),
                    ])
                })
                .collect(),
        );
        let recent = Value::Arr(
            hub.recent
                .iter()
                .rev()
                .map(|j| {
                    Value::Obj(vec![
                        ("id".to_string(), vs(&j.id)),
                        ("tenant".to_string(), vs(&j.tenant)),
                        ("bench".to_string(), vs(&j.bench)),
                        ("exit".to_string(), vs(&j.exit)),
                        ("queue_ms".to_string(), Value::U64(j.queue_ms)),
                        ("run_ms".to_string(), Value::U64(j.run_ms)),
                        ("compiles".to_string(), Value::U64(j.compiles)),
                        ("measurements".to_string(), Value::U64(j.measurements)),
                        ("warm_seeds".to_string(), Value::U64(j.warm_seeds)),
                    ])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("type".to_string(), vs("metrics")),
            ("uptime_ms".to_string(), Value::U64(now)),
            ("health".to_string(), vs(if healthy { "ok" } else { "degraded" })),
            ("window_ms".to_string(), Value::U64(self.window.width_ms)),
            ("windows".to_string(), Value::U64(self.window.ring as u64)),
            ("slo".to_string(), Value::Arr(slo)),
            ("global".to_string(), Value::Obj(registry_json(&hub.global, now))),
            ("tenants".to_string(), tenants),
            (
                "profile".to_string(),
                Value::Obj(vec![
                    ("spans_sampled".to_string(), Value::U64(hub.spans_sampled)),
                    ("spans_dropped".to_string(), Value::U64(hub.spans_dropped)),
                    ("stacks".to_string(), stacks),
                ]),
            ),
            ("recent".to_string(), recent),
        ])
        .emit_compact()
    }

    /// The `metrics` reply in Prometheus-style text exposition, wrapped in a
    /// one-line JSON envelope (`{"type":"metrics","format":"text","text":…}`)
    /// so the NDJSON framing survives.
    pub fn reply_text(&self) -> String {
        let now = self.now_ms();
        let hub = self.hub.lock().unwrap();
        let healthy = hub.sentinels.iter().all(|s| !s.breached)
            && hub.tenants.values().all(|t| !t.run_sentinel.breached);
        let mut t = String::new();
        t.push_str("# TYPE citroen_uptime_ms gauge\n");
        t.push_str(&format!("citroen_uptime_ms {now}\n"));
        t.push_str("# TYPE citroen_health gauge\n");
        t.push_str(&format!("citroen_health {}\n", if healthy { 1 } else { 0 }));
        expose_registry(&mut t, &hub.global, "", now);
        for (name, scope) in &hub.tenants {
            expose_registry(&mut t, &scope.reg, &format!("tenant=\"{}\",", escape_label(name)), now);
        }
        for s in &hub.sentinels {
            t.push_str(&format!(
                "citroen_slo_breached{{name=\"{}\"}} {}\n",
                escape_label(&s.name),
                if s.breached { 1 } else { 0 }
            ));
            t.push_str(&format!(
                "citroen_slo_breaches_total{{name=\"{}\"}} {}\n",
                escape_label(&s.name),
                s.breaches
            ));
        }
        Value::Obj(vec![
            ("type".to_string(), vs("metrics")),
            ("format".to_string(), vs("text")),
            ("uptime_ms".to_string(), Value::U64(now)),
            ("health".to_string(), vs(if healthy { "ok" } else { "degraded" })),
            ("text".to_string(), vs(&t)),
        ])
        .emit_compact()
    }
}

fn vs(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Escape a Prometheus text-format label value: backslash, double quote,
/// and newline. Tenant names are client-controlled, so they must not be
/// able to corrupt the exposition body.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Clamp a client-controlled string to the event-name-safe charset
/// (`[A-Za-z0-9_-]`, everything else becomes `_`) before splicing it into a
/// `slo.breach.tenant.<name>` event name.
fn event_safe(v: &str) -> String {
    v.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// `12.345`-style decimal rendering for the readable twin of a `*_bits`
/// field.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

fn sentinel_json(s: &Sentinel) -> Value {
    let ewma = s.ewma.value().unwrap_or(0.0);
    Value::Obj(vec![
        ("name".to_string(), vs(&s.name)),
        (
            "kind".to_string(),
            vs(match s.kind {
                SloKind::Above => "above",
                SloKind::Below => "below",
            }),
        ),
        ("threshold_bits".to_string(), Value::U64(s.threshold.to_bits())),
        ("threshold".to_string(), vs(&fmt_f64(s.threshold))),
        ("ewma_bits".to_string(), Value::U64(ewma.to_bits())),
        ("ewma".to_string(), vs(&fmt_f64(ewma))),
        ("breached".to_string(), Value::U64(s.breached as u64)),
        ("breaches".to_string(), Value::U64(s.breaches)),
    ])
}

fn hist_json(all: &Histogram, recent: &Histogram) -> Value {
    let quant = |h: &Histogram| {
        vec![
            ("count".to_string(), Value::U64(h.count)),
            ("sum".to_string(), Value::U64(h.sum)),
            ("min".to_string(), Value::U64(if h.count > 0 { h.min } else { 0 })),
            ("max".to_string(), Value::U64(h.max)),
            ("p50".to_string(), Value::U64(h.quantile(0.5))),
            ("p90".to_string(), Value::U64(h.quantile(0.9))),
            ("p99".to_string(), Value::U64(h.quantile(0.99))),
        ]
    };
    let mut fields = quant(all);
    fields.push(("recent".to_string(), Value::Obj(quant(recent))));
    Value::Obj(fields)
}

fn registry_json(reg: &MetricsRegistry, now: u64) -> Vec<(String, Value)> {
    let counters = Value::Obj(
        reg.counters()
            .map(|(name, c)| {
                let rate = c.rate_per_sec(&reg.cfg, now);
                (
                    name.to_string(),
                    Value::Obj(vec![
                        ("total".to_string(), Value::U64(c.total)),
                        (
                            "win".to_string(),
                            Value::Arr(
                                c.window_deltas(&reg.cfg, now)
                                    .into_iter()
                                    .map(Value::U64)
                                    .collect(),
                            ),
                        ),
                        ("rate_bits".to_string(), Value::U64(rate.to_bits())),
                        ("rate".to_string(), vs(&fmt_f64(rate))),
                    ]),
                )
            })
            .collect(),
    );
    let gauges = Value::Obj(
        reg.gauges().map(|(name, v)| (name.to_string(), Value::U64(v))).collect(),
    );
    let hists = Value::Obj(
        reg.hists()
            .map(|(name, h)| {
                (name.to_string(), hist_json(&h.all, &h.recent(&reg.cfg, now)))
            })
            .collect(),
    );
    vec![
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("hists".to_string(), hists),
    ]
}

fn expose_registry(out: &mut String, reg: &MetricsRegistry, label_prefix: &str, now: u64) {
    for (name, c) in reg.counters() {
        let name = escape_label(name);
        out.push_str(&format!(
            "citroen_counter_total{{{label_prefix}name=\"{name}\"}} {}\n",
            c.total
        ));
        out.push_str(&format!(
            "citroen_counter_rate{{{label_prefix}name=\"{name}\"}} {}\n",
            fmt_f64(c.rate_per_sec(&reg.cfg, now))
        ));
    }
    for (name, v) in reg.gauges() {
        let name = escape_label(name);
        out.push_str(&format!("citroen_gauge{{{label_prefix}name=\"{name}\"}} {v}\n"));
    }
    for (name, h) in reg.hists() {
        let name = escape_label(name);
        out.push_str(&format!(
            "citroen_hist_count{{{label_prefix}name=\"{name}\"}} {}\n",
            h.all.count
        ));
        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!(
                "citroen_hist_quantile{{{label_prefix}name=\"{name}\",q=\"{qs}\"}} {}\n",
                h.all.quantile(q)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> Arc<ServeMetrics> {
        ServeMetrics::new(WindowCfg::default(), SloConfig::default())
    }

    fn job(id: &str, tenant: &str, exit: &str, run_ms: u64) -> JobSummary {
        JobSummary {
            id: id.to_string(),
            tenant: tenant.to_string(),
            bench: "telecom_gsm".to_string(),
            exit: exit.to_string(),
            queue_ms: 2,
            run_ms,
            compiles: 10,
            measurements: 4,
            warm_seeds: 1,
        }
    }

    #[test]
    fn lifecycle_accounting_lands_in_global_and_tenant() {
        let m = hub();
        m.job_queued("a");
        m.session_started("a", 2);
        m.session_finished(
            job("j1", "a", "completed", 7),
            SharedCacheStats { hits: 3, misses: 1, ..Default::default() },
            5,
        );
        let hub = m.hub.lock().unwrap();
        assert_eq!(hub.global.total("jobs.submitted"), 1);
        assert_eq!(hub.global.total("jobs.done"), 1);
        assert_eq!(hub.global.total("compiles"), 10);
        assert_eq!(hub.global.total("cache.hits"), 3);
        assert_eq!(hub.global.gauge("corpus.len"), Some(5));
        assert_eq!(hub.global.hist("queue_wait_ms").unwrap().count, 1);
        assert_eq!(hub.global.hist("run_wall_ms").unwrap().max, 7);
        let t = &hub.tenants["a"];
        assert_eq!(t.reg.total("jobs.done"), 1);
        assert_eq!(t.reg.hist("run_wall_ms").unwrap().count, 1);
        assert_eq!(hub.recent.len(), 1);
        assert_eq!(hub.recent[0].id, "j1");
        // Session thread is unregistered after completion.
        assert!(hub.threads.is_empty());
    }

    #[test]
    fn cache_deltas_are_incremental_not_cumulative() {
        let m = hub();
        m.session_started("a", 0);
        m.session_finished(
            job("j1", "a", "completed", 1),
            SharedCacheStats { hits: 10, misses: 10, ..Default::default() },
            0,
        );
        m.session_started("a", 0);
        m.session_finished(
            job("j2", "a", "completed", 1),
            SharedCacheStats { hits: 12, misses: 10, ..Default::default() },
            0,
        );
        let hub = m.hub.lock().unwrap();
        // Second job contributed only the delta (2 hits, 0 misses).
        assert_eq!(hub.global.total("cache.hits"), 12);
        assert_eq!(hub.global.total("cache.misses"), 10);
    }

    #[test]
    fn slo_breach_flips_health_and_recovers() {
        let m = ServeMetrics::new(
            WindowCfg::default(),
            SloConfig { run_ms: 100.0, alpha: 1.0, ..Default::default() },
        );
        assert!(m.healthy());
        m.session_started("a", 0);
        m.session_finished(job("j1", "a", "completed", 500), Default::default(), 0);
        assert!(!m.healthy());
        assert_eq!(m.health_str(), "degraded");
        // A fast job brings the EWMA (alpha=1 → last sample) back under.
        m.session_started("a", 0);
        m.session_finished(job("j2", "a", "completed", 5), Default::default(), 0);
        assert!(m.healthy());
        let hub = m.hub.lock().unwrap();
        assert_eq!(hub.sentinels[1].breaches, 1);
    }

    #[test]
    fn spans_feed_profiles_and_latency_hists_for_registered_threads_only() {
        let m = hub();
        let rec = |thread: u64, name: &str, dur_ns: u64| SpanRecord {
            id: 1,
            parent: 0,
            name: name.to_string(),
            thread,
            start_ns: 0,
            dur_ns,
        };
        // Not registered: ignored.
        m.feed_span(&rec(999, "compile", 5_000));
        m.session_started("a", 0);
        let me = current_thread_id();
        m.feed_span(&rec(me, "compile", 5_000));
        m.feed_span(&rec(me, "measure", 2_000));
        m.feed_span(&rec(me, "gp.fit", 1_000)); // profiled but not a tracked hist
        {
            let hub = m.hub.lock().unwrap();
            assert_eq!(hub.global.hist("span.compile_us").unwrap().max, 5);
            assert_eq!(hub.global.hist("span.measure_us").unwrap().count, 1);
            assert!(hub.global.hist("span.gp.fit_us").is_none());
            assert_eq!(hub.threads[&me].spans.len(), 3);
        }
        m.session_finished(job("j1", "a", "completed", 1), Default::default(), 0);
        let hub = m.hub.lock().unwrap();
        assert_eq!(hub.spans_sampled, 3);
        assert!(hub.flames.contains_key("compile"), "flames: {:?}", hub.flames);
    }

    #[test]
    fn compile_breach_in_sink_path_is_queued_then_drained_by_lifecycle() {
        // feed_span runs under the global telemetry SINK mutex, so a breach
        // there must be queued, not emitted (emitting re-locks SINK on the
        // same thread: self-deadlock). The next lifecycle hook drains it.
        let m = ServeMetrics::new(
            WindowCfg::default(),
            SloConfig { compile_us: 0.001, alpha: 1.0, ..Default::default() },
        );
        m.session_started("a", 0);
        m.feed_span(&SpanRecord {
            id: 1,
            parent: 0,
            name: "compile".to_string(),
            thread: current_thread_id(),
            start_ns: 0,
            dur_ns: 5_000_000,
        });
        assert!(!m.healthy(), "compile sentinel must flip health immediately");
        {
            let hub = m.hub.lock().unwrap();
            assert_eq!(hub.pending_breaches.len(), 1, "breach queued, not emitted in-sink");
            assert_eq!(hub.pending_breaches[0].0, "compile_us");
        }
        m.session_finished(job("j1", "a", "completed", 1), Default::default(), 0);
        let hub = m.hub.lock().unwrap();
        assert!(hub.pending_breaches.is_empty(), "lifecycle hook drains the queue");
    }

    #[test]
    fn cancelled_queued_jobs_balance_submitted() {
        let m = hub();
        m.job_queued("a");
        m.job_cancelled_queued("a");
        let hub = m.hub.lock().unwrap();
        assert_eq!(hub.global.total("jobs.submitted"), 1);
        assert_eq!(hub.global.total("jobs.cancelled"), 1);
        assert_eq!(hub.tenants["a"].reg.total("jobs.cancelled"), 1);
    }

    #[test]
    fn hostile_tenant_names_cannot_corrupt_the_text_exposition() {
        let m = hub();
        let tenant = "ev\"il\\ten{ant}";
        m.session_started(tenant, 1);
        m.session_finished(job("j1", tenant, "completed", 3), Default::default(), 0);
        let v = Value::parse(&m.reply_text()).expect("envelope still parses");
        let body = v.get("text").and_then(Value::as_str).unwrap().to_string();
        assert!(
            body.contains(r#"tenant="ev\"il\\ten{ant}","#),
            "label value must be escaped: {body}"
        );
        assert!(!body.contains("tenant=\"ev\"il"), "raw quote must not survive");
    }

    #[test]
    fn event_safe_clamps_to_the_event_charset() {
        assert_eq!(event_safe("tenant-9_ok"), "tenant-9_ok");
        assert_eq!(event_safe("a\"b\\c d.e"), "a_b_c_d_e");
    }

    #[test]
    fn feed_counter_reaches_the_registered_tenant() {
        let m = hub();
        m.feed_counter("citroen.iterations", 3); // unregistered: dropped
        m.session_started("t9", 0);
        m.feed_counter("citroen.iterations", 3);
        {
            let hub = m.hub.lock().unwrap();
            assert_eq!(hub.tenants["t9"].reg.total("citroen.iterations"), 3);
            assert_eq!(hub.global.total("citroen.iterations"), 0);
        }
        m.session_finished(job("j", "t9", "completed", 1), Default::default(), 0);
    }

    #[test]
    fn replies_are_single_line_parseable_json() {
        let m = hub();
        m.session_started("a", 1);
        m.session_finished(job("j1", "a", "completed", 3), Default::default(), 2);
        for line in [m.reply_json(), m.reply_text()] {
            assert!(!line.contains('\n'), "{line}");
            let v = Value::parse(&line).expect("parses");
            assert_eq!(v.get("type").and_then(Value::as_str), Some("metrics"));
            assert_eq!(v.get("health").and_then(Value::as_str), Some("ok"));
        }
        let v = Value::parse(&m.reply_json()).unwrap();
        let done = v
            .get("global")
            .and_then(|g| g.get("counters"))
            .and_then(|c| c.get("jobs.done"))
            .and_then(|c| c.get("total"))
            .and_then(Value::as_u64);
        assert_eq!(done, Some(1));
        let text = Value::parse(&m.reply_text()).unwrap();
        let body = text.get("text").and_then(Value::as_str).unwrap().to_string();
        assert!(body.contains("citroen_health 1"));
        assert!(body.contains("citroen_counter_total{name=\"jobs.done\"} 1"));
    }

    #[test]
    fn fmt_f64_is_compact() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(12.3456), "12.346");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
    }
}
