//! Cross-tenant shared state: the compile cache, the once-loaded
//! interaction graph, the shared worker pool, and the transfer corpus.

use citroen_bo::transfer::TransferEntry;
use citroen_core::SharedCompileCache;
use citroen_passes::oracle::InteractionGraph;
use citroen_rt::par::WorkerPool;
use std::sync::{Arc, Mutex};

/// Daemon configuration (one per process).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent tuning sessions (session threads). Default 2.
    pub max_concurrent: usize,
    /// Per-job budget cap; submissions above it are rejected with
    /// `over-budget`. Default 200.
    pub max_budget: usize,
    /// Cross-tenant compile-cache capacity in entries (LRU; 0 = unbounded).
    /// Default 4096.
    pub cache_cap: usize,
    /// Persisted `citroen-analyze oracle --json` interaction graph, loaded
    /// once and shared with every session (warm-starting canonicalisation).
    pub graph_path: Option<String>,
    /// Directory for per-job JSONL telemetry streams (`<dir>/<job id>.jsonl`,
    /// live-tailable with `citroen-trace tail`). `None` = no telemetry.
    pub trace_dir: Option<String>,
    /// Maintain the observability plane (windowed metrics, continuous
    /// profiling, SLO sentinels; DESIGN.md §12). Default on — the 10-seed
    /// identity gate proves it never perturbs results.
    pub metrics: bool,
    /// Window width of the metrics ring buffers in milliseconds. Default
    /// 10 000 (six windows ≈ one minute of recent history).
    pub metrics_window_ms: u64,
    /// SLO sentinel: queue-wait EWMA ceiling, milliseconds.
    pub slo_queue_ms: f64,
    /// SLO sentinel: run-wall EWMA ceiling, milliseconds.
    pub slo_run_ms: f64,
    /// SLO sentinel: compile-span EWMA ceiling, microseconds.
    pub slo_compile_us: f64,
    /// SLO sentinel: shared-cache hit-ratio EWMA floor (0 = disabled).
    pub slo_hit_ratio: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let slo = crate::metrics::SloConfig::default();
        ServeConfig {
            max_concurrent: 2,
            max_budget: 200,
            cache_cap: 4096,
            graph_path: None,
            trace_dir: None,
            metrics: true,
            metrics_window_ms: 10_000,
            slo_queue_ms: slo.queue_ms,
            slo_run_ms: slo.run_ms,
            slo_compile_us: slo.compile_us,
            slo_hit_ratio: slo.hit_ratio_min,
        }
    }
}

/// Shared state every session sees. One instance per daemon; connections
/// served sequentially reuse it, so the cache and corpus keep warming.
pub struct ServeState {
    /// Daemon configuration.
    pub cfg: ServeConfig,
    /// Cross-tenant compile cache, keyed (source-module fingerprint,
    /// canonical genome).
    pub cache: Arc<SharedCompileCache>,
    /// Interaction graph loaded once from [`ServeConfig::graph_path`]
    /// (`None` when unset or unreadable — sessions fall back to per-task
    /// derivation exactly as standalone runs do).
    pub graph: Option<Arc<InteractionGraph>>,
    /// One worker pool shared by all sessions, so N tenants don't spawn
    /// N × threads. Safe for concurrent `map` callers (whole-batch
    /// serialisation in `rt::par`).
    pub pool: Arc<WorkerPool>,
    /// Completed sessions' transfer entries, in completion order.
    pub corpus: Mutex<Vec<TransferEntry>>,
}

impl ServeState {
    /// Build the daemon state, loading the interaction graph once.
    pub fn new(cfg: ServeConfig) -> ServeState {
        let graph = cfg.graph_path.as_deref().and_then(|path| {
            let load = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| InteractionGraph::from_json(&t));
            match load {
                Ok(g) => Some(Arc::new(g)),
                Err(e) => {
                    eprintln!("warning: ignoring oracle graph '{path}': {e}");
                    None
                }
            }
        });
        let pool = Arc::new(WorkerPool::new(citroen_rt::par::thread_count(8)));
        let cache = Arc::new(SharedCompileCache::new(cfg.cache_cap));
        ServeState { cfg, cache, graph, pool, corpus: Mutex::new(Vec::new()) }
    }
}
