//! The observability-inertness gate: with the metrics plane enabled (the
//! default), ten seeded jobs served by the daemon produce trace digests
//! bit-identical to standalone `run_citroen` runs at the same seeds —
//! recording is strictly observational and never feeds back into a session.
//! Also sanity-checks the drained hub's `metrics` reply content.
//!
//! Lives in its own integration-test binary: the telemetry sink is
//! process-global, and this test asserts on what the hub accumulated.

use citroen_core::{run_citroen, trace_digest};
use citroen_rt::json::Value;
use citroen_serve::{job_citroen_config, job_task, JobSpec, ServeConfig, Server};
use std::io::Cursor;

fn spec(id: &str, tenant: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        bench: "telecom_gsm".to_string(),
        tenant: tenant.to_string(),
        budget,
        seed,
        seq_len: 16,
        batch: 1,
        oracle_prune: false,
        subsume: false,
        warm: 0,
        timeout_ms: 0,
    }
}

fn submit_line(s: &JobSpec) -> String {
    format!(
        "{{\"type\":\"submit\",\"job\":{{\"id\":\"{}\",\"bench\":\"{}\",\"tenant\":\"{}\",\
         \"budget\":{},\"seed\":{}}}}}",
        s.id, s.bench, s.tenant, s.budget, s.seed
    )
}

#[test]
fn ten_seeds_with_metrics_on_match_standalone_digests() {
    let budget = 4;
    let specs: Vec<JobSpec> = (1..=10u64)
        .map(|seed| spec(&format!("s{seed}"), &format!("tenant{}", seed % 3), seed, budget))
        .collect();

    let server = Server::new(ServeConfig { max_concurrent: 4, ..Default::default() });
    assert!(server.metrics().is_some(), "metrics plane must default on");

    let mut script = String::new();
    for s in &specs {
        script.push_str(&submit_line(s));
        script.push('\n');
    }
    script.push_str("{\"type\":\"shutdown\"}\n");
    let mut out: Vec<u8> = Vec::new();
    let summary = server.serve(Cursor::new(script), &mut out);
    assert_eq!(summary.done, 10, "all ten jobs must complete");

    let text = String::from_utf8(out).unwrap();
    let results: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).unwrap())
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("result"))
        .collect();
    let digest_of = |id: &str| -> u64 {
        results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no result for {id}"))
            .get("digest")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("no digest on {id}"))
    };

    // Bit-identity at every seed: the metrics hub observed every one of
    // these sessions (spans, counters, lifecycle) yet none of them diverged
    // from an unobserved standalone run.
    for s in &specs {
        let mut task = job_task(s).unwrap();
        let (trace, _) = run_citroen(&mut task, s.budget, &job_citroen_config(s));
        assert_eq!(
            digest_of(&s.id),
            trace_digest(&trace),
            "job {} (seed {}) diverged from its standalone run with metrics on",
            s.id,
            s.seed
        );
    }

    // The hub actually recorded the work it watched.
    let m = server.metrics().expect("metrics hub");
    assert!(m.healthy(), "default SLOs must not breach on a tiny healthy run");
    let v = Value::parse(&m.reply_json()).unwrap();
    assert_eq!(v.get("type").and_then(Value::as_str), Some("metrics"));
    assert_eq!(v.get("health").and_then(Value::as_str), Some("ok"));
    let global = v.get("global").expect("global registry");
    let done = global
        .get("counters")
        .and_then(|c| c.get("jobs.done"))
        .and_then(|c| c.get("total"))
        .and_then(Value::as_u64);
    assert_eq!(done, Some(10));
    let run_wall = global
        .get("hists")
        .and_then(|h| h.get("run_wall_ms"))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64);
    assert_eq!(run_wall, Some(10), "one run-wall sample per completed job");
    let recent = v.get("recent").and_then(Value::as_arr).expect("recent ring");
    assert_eq!(recent.len(), 10);
    // All three tenants got their own registries, each reporting health.
    let tenants = v.get("tenants").expect("tenants object");
    for t in ["tenant0", "tenant1", "tenant2"] {
        assert_eq!(
            tenants.get(t).and_then(|t| t.get("health")).and_then(Value::as_str),
            Some("ok"),
            "missing tenant {t}"
        );
    }
    // Sessions profiled: spans flowed through the sink into flame stacks.
    let sampled = v
        .get("profile")
        .and_then(|p| p.get("spans_sampled"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(sampled > 0, "continuous profiler saw no spans");
}
