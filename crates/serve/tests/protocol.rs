//! Protocol-robustness gate: malformed and hostile inputs get structured
//! `error` replies and never kill the daemon or other tenants.

use citroen_rt::json::Value;
use citroen_serve::{codes, ServeConfig, ServeSummary, Server};
use std::io::Cursor;

fn run_script(cfg: ServeConfig, script: &str) -> (Vec<Value>, ServeSummary) {
    let server = Server::new(cfg);
    let mut out: Vec<u8> = Vec::new();
    let summary = server.serve(Cursor::new(script.to_string()), &mut out);
    let replies = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Value::parse(l).unwrap_or_else(|e| panic!("unparseable reply '{l}': {e}")))
        .collect();
    (replies, summary)
}

fn of_type<'a>(replies: &'a [Value], ty: &str) -> Vec<&'a Value> {
    replies
        .iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some(ty))
        .collect()
}

fn error_codes(replies: &[Value]) -> Vec<String> {
    of_type(replies, "error")
        .iter()
        .filter_map(|r| r.get("code").and_then(Value::as_str).map(str::to_string))
        .collect()
}

#[test]
fn hostile_input_yields_structured_errors_and_spares_the_tenant() {
    let script = concat!(
        "{oops\n",
        "[1,2,3]\n",
        "{\"id\":\"no-type\"}\n",
        "{\"type\":\"zap\"}\n",
        "{\"type\":\"cancel\"}\n",
        "{\"type\":\"cancel\",\"id\":\"ghost\"}\n",
        "{\"type\":\"status\",\"id\":\"ghost\"}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"ok\",\"bench\":\"telecom_gsm\",\"budget\":6,\"seed\":1}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"ok\",\"bench\":\"telecom_gsm\",\"budget\":6,\"seed\":2}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"nb\",\"bench\":\"no_such_bench\",\"budget\":6}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"ob\",\"bench\":\"telecom_gsm\",\"budget\":100000}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"zb\",\"bench\":\"telecom_gsm\",\"budget\":0}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"mf\",\"bench\":\"telecom_gsm\"}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"bf\",\"bench\":\"telecom_gsm\",\"budget\":\"six\"}}\n",
        "{\"type\":\"stats\"}\n",
        "{\"type\":\"shutdown\"}\n",
    );
    let (replies, summary) = run_script(ServeConfig::default(), script);

    // Every bad line produced exactly one structured error; the daemon
    // survived them all and the one valid job ran to completion.
    let codes_seen = error_codes(&replies);
    for want in [
        codes::BAD_JSON,
        codes::UNKNOWN_TYPE,
        codes::BAD_FIELD,
        codes::UNKNOWN_JOB,
        codes::DUPLICATE_ID,
        codes::UNKNOWN_BENCH,
        codes::OVER_BUDGET,
    ] {
        assert!(codes_seen.iter().any(|c| c == want), "missing error code {want}: {codes_seen:?}");
    }

    let results = of_type(&replies, "result");
    assert_eq!(results.len(), 1, "exactly one job should reach a terminal result");
    let r = results[0];
    assert_eq!(r.get("id").and_then(Value::as_str), Some("ok"));
    assert_eq!(r.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(r.get("measurements").and_then(Value::as_u64), Some(6));
    assert!(r.get("digest").and_then(Value::as_u64).unwrap() != 0);

    let stats = of_type(&replies, "stats");
    assert_eq!(stats.len(), 1);
    assert_eq!(of_type(&replies, "bye").len(), 1, "graceful drain must emit bye");

    assert_eq!(summary.submitted, 1);
    assert_eq!(summary.done, 1);
    assert_eq!(summary.failed, 0);
    // 7 malformed/unknown-target lines + 6 rejected submits.
    assert_eq!(summary.rejected, 13);
}

#[test]
fn queued_jobs_cancel_and_timeouts_fire() {
    // One worker: "slow" occupies it, "victim" waits in the queue and is
    // cancelled there; "expired" carries a 1 ms timeout and stops at its
    // first iteration boundary.
    let script = concat!(
        "{\"type\":\"submit\",\"job\":{\"id\":\"slow\",\"bench\":\"telecom_gsm\",\"budget\":6,\"seed\":1}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"victim\",\"bench\":\"telecom_gsm\",\"budget\":6,\"seed\":2}}\n",
        "{\"type\":\"submit\",\"job\":{\"id\":\"expired\",\"bench\":\"telecom_gsm\",\"budget\":30,\"seed\":3,\"timeout_ms\":1}}\n",
        "{\"type\":\"cancel\",\"id\":\"victim\"}\n",
        "{\"type\":\"shutdown\"}\n",
    );
    let cfg = ServeConfig { max_concurrent: 1, ..Default::default() };
    let (replies, summary) = run_script(cfg, script);

    let results = of_type(&replies, "result");
    let by_id = |id: &str| {
        results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no result for {id}"))
    };
    assert_eq!(by_id("slow").get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(by_id("expired").get("exit").and_then(Value::as_str), Some("timed-out"));
    assert!(
        by_id("expired").get("measurements").and_then(Value::as_u64).unwrap() < 30,
        "expired job ran its whole budget"
    );
    // The queued victim was cancelled via a `job` reply, not a result.
    assert!(of_type(&replies, "job").iter().any(|r| {
        r.get("id").and_then(Value::as_str) == Some("victim")
            && r.get("state").and_then(Value::as_str) == Some("cancelled")
    }));
    assert_eq!(summary.done, 1);
    assert_eq!(summary.cancelled, 2, "victim + expired");
}
