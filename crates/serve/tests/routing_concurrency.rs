//! [`RoutingSink`] under concurrent sessions: several threads interleave
//! spans, counters, and events through the one process-global sink; every
//! record must land in the emitting thread's own per-job stream (none
//! dropped, none crossed), and the metrics hub must attribute counters to
//! the right tenant.
//!
//! One test function: the telemetry facade is process-global, so the
//! scenario owns the whole test binary.

use citroen_serve::{JobSummary, RouteTable, RoutingSink, ServeMetrics, SloConfig};
use citroen_telemetry as telemetry;
use citroen_telemetry::metrics::WindowCfg;
use citroen_telemetry::Trace;
use citroen_rt::json::Value;
use std::sync::{Arc, Barrier};

const THREADS: usize = 4;
const RECORDS: usize = 200;

#[test]
fn interleaved_sessions_route_to_their_own_streams_without_loss() {
    let dir = std::env::temp_dir().join(format!("citroen-route-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let table = RouteTable::new();
    let metrics = ServeMetrics::new(WindowCfg::default(), SloConfig::default());
    telemetry::install(Box::new(RoutingSink::with_metrics(
        Some(table.clone()),
        Some(metrics.clone()),
    )));

    // All threads start recording at the same instant and yield frequently,
    // maximising interleaving through the shared sink mutex.
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let table = table.clone();
            let metrics = metrics.clone();
            let barrier = barrier.clone();
            let path = dir.join(format!("job{i}.jsonl"));
            std::thread::spawn(move || {
                table.register_current(path);
                metrics.session_started(&format!("tenant{i}"), 0);
                barrier.wait();
                for k in 0..RECORDS {
                    {
                        let _g = telemetry::span_dyn(|| format!("job{i}.op"));
                        telemetry::counter(&format!("job{i}.count"), 1);
                        telemetry::event(&format!("job{i}.event"), &[("k", k as u64)]);
                    }
                    if k % 8 == 0 {
                        std::thread::yield_now();
                    }
                }
                metrics.session_finished(
                    JobSummary {
                        id: format!("job{i}"),
                        tenant: format!("tenant{i}"),
                        bench: "synthetic".to_string(),
                        exit: "completed".to_string(),
                        queue_ms: 0,
                        run_ms: 1,
                        compiles: 0,
                        measurements: 0,
                        warm_seeds: 0,
                    },
                    Default::default(),
                    0,
                );
                table.unregister_current();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    telemetry::disable();

    // Every stream holds exactly its own thread's records — counts prove
    // nothing was dropped, names prove nothing crossed streams.
    for i in 0..THREADS {
        let path = dir.join(format!("job{i}.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        let t = Trace::parse_jsonl(&text)
            .unwrap_or_else(|e| panic!("stream {i} unparseable: {e}"));
        assert_eq!(t.spans.len(), RECORDS, "stream {i} dropped spans");
        assert!(
            t.spans.iter().all(|s| s.name == format!("job{i}.op")),
            "stream {i} holds foreign spans"
        );
        assert_eq!(
            t.counters.get(&format!("job{i}.count")).copied(),
            Some(RECORDS as u64),
            "stream {i} lost counter increments"
        );
        assert_eq!(t.counters.len(), 1, "stream {i} holds foreign counters");
        assert_eq!(t.events.len(), RECORDS, "stream {i} dropped events");
        assert!(
            t.events.iter().all(|e| e.name == format!("job{i}.event")),
            "stream {i} holds foreign events"
        );
    }

    // The hub attributed each thread's counters to its own tenant.
    let v = Value::parse(&metrics.reply_json()).unwrap();
    let tenants = v.get("tenants").expect("tenants object");
    for i in 0..THREADS {
        let total = tenants
            .get(&format!("tenant{i}"))
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get(&format!("job{i}.count")))
            .and_then(|c| c.get("total"))
            .and_then(Value::as_u64);
        assert_eq!(total, Some(RECORDS as u64), "tenant{i} counter misattributed");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
