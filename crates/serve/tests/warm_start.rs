//! Transfer warm-start gate (the `results/transfer_warm_start.csv` scenario,
//! service-side): a tuning task seeded from its statistics-space nearest
//! neighbour in the corpus reaches the cold-start median best-speedup with
//! measurably fewer compiles, at no loss in median best-speedup.
//!
//! Donor: `telecom_gsm` at seed 99 (exactly the CSV scenario's donor).
//! Recipient: `automotive_bitcount` over a 10-seed window; medians over the
//! window, not single seeds, as everywhere else in the suite. Everything is
//! deterministic for fixed seeds, so this is a regression gate, not a flake.

use citroen_bo::transfer::{warm_seeds, TransferEntry};
use citroen_core::{run_citroen_session, CitroenConfig, SessionEnv, SessionExit, Task};
use citroen_serve::{job_task, JobSpec};

fn spec(bench: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        id: format!("{bench}-{seed}"),
        bench: bench.to_string(),
        tenant: bench.to_string(),
        budget,
        seed,
        seq_len: 16,
        batch: 1,
        oracle_prune: false,
        subsume: false,
        warm: 0,
        timeout_ms: 0,
    }
}

fn run(task: &mut Task, budget: usize, seed: u64, init_seeds: Vec<Vec<u16>>) -> citroen_core::TuneTrace {
    let cfg = CitroenConfig { seed, init_seeds, ..Default::default() };
    let r = run_citroen_session(task, budget, &cfg, &SessionEnv::default());
    assert_eq!(r.exit, SessionExit::Completed);
    r.trace
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[test]
fn warm_started_tasks_reach_cold_median_with_fewer_compiles() {
    let budget = 16;

    // Donor sessions, exactly as completed daemon tenants would deposit
    // them: the CSV scenario's gsm donor (seed 99) plus a bitcount tenant
    // at the same off-window seed. The recipient's nearest-neighbour lookup
    // must pick the statistics-identical bitcount entry over the gsm one —
    // the selection the daemon's corpus machinery exists to make.
    let corpus: Vec<TransferEntry> = ["telecom_gsm", "automotive_bitcount"]
        .iter()
        .map(|bench| {
            let donor_spec = spec(bench, 99, 20);
            let mut donor = job_task(&donor_spec).unwrap();
            let descriptor = donor.stats_descriptor();
            let donor_trace = run(&mut donor, donor_spec.budget, 99, Vec::new());
            TransferEntry {
                name: donor_spec.bench.clone(),
                descriptor,
                genome: donor_trace.best_seqs[0].iter().map(|p| p.0).collect(),
                best_speedup: donor.o3_seconds / donor_trace.best(),
            }
        })
        .collect();

    // Recipient arms over the seed window. `par_map` over seeds as in the
    // core suite (sequential on single-core hosts).
    let seeds: Vec<u64> = (1..=10).collect();
    let runs = citroen_rt::par::par_map(seeds, |seed| {
        let s = spec("automotive_bitcount", seed, budget);

        let mut cold_task = job_task(&s).unwrap();
        let cold = run(&mut cold_task, budget, seed, Vec::new());

        let mut warm_task = job_task(&s).unwrap();
        let injected = warm_seeds(&warm_task.stats_descriptor(), &corpus, 1);
        assert_eq!(injected.len(), 1, "corpus lookup must return one donor");
        assert_eq!(
            injected[0], corpus[1].genome,
            "nearest neighbour must be the statistics-identical bitcount donor"
        );
        let warm = run(&mut warm_task, budget, seed, injected);

        let o3 = cold_task.o3_seconds;
        (o3 / cold.best(), o3 / warm.best(), cold, warm, cold_task.compilations, warm_task.compilations)
    });

    let cold_speedups: Vec<f64> = runs.iter().map(|r| r.0).collect();
    let warm_speedups: Vec<f64> = runs.iter().map(|r| r.1).collect();
    let cold_med = median(cold_speedups.clone());
    let warm_med = median(warm_speedups.clone());

    // Compiles to reach the cold-start median best runtime. Runs that never
    // reach the target are charged their full compile count (a ceiling, so
    // the median comparison stays honest).
    let target = {
        let mut bests: Vec<f64> = runs.iter().map(|r| r.2.best()).collect();
        bests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bests[bests.len() / 2]
    };
    let cold_reach: Vec<f64> = runs
        .iter()
        .map(|r| r.2.compiles_to_reach(target).unwrap_or(r.4) as f64)
        .collect();
    let warm_reach: Vec<f64> = runs
        .iter()
        .map(|r| r.3.compiles_to_reach(target).unwrap_or(r.5) as f64)
        .collect();
    let cold_reach_med = median(cold_reach.clone());
    let warm_reach_med = median(warm_reach.clone());

    eprintln!("cold speedups: {cold_speedups:?} (median {cold_med:.4})");
    eprintln!("warm speedups: {warm_speedups:?} (median {warm_med:.4})");
    eprintln!("cold compiles-to-target: {cold_reach:?} (median {cold_reach_med})");
    eprintln!("warm compiles-to-target: {warm_reach:?} (median {warm_reach_med})");

    // Gate 1: warm-starting must not cost quality — median best-speedup is
    // no worse than cold within a 2% noise band.
    assert!(
        warm_med >= cold_med * 0.98,
        "warm median speedup {warm_med:.4} fell below cold {cold_med:.4}"
    );
    // Gate 2: the warm arm reaches the cold median target measurably
    // earlier in compile terms — the whole point of the transfer.
    assert!(
        warm_reach_med < cold_reach_med * 0.8,
        "warm median compiles-to-target {warm_reach_med} not measurably below cold {cold_reach_med}"
    );
}
