//! Determinism-under-concurrency gate: jobs served concurrently against the
//! shared state are bit-identical to standalone `run_citroen` runs at the
//! same seeds, and cross-tenant cache reuse actually happens.

use citroen_core::{run_citroen, trace_digest};
use citroen_rt::json::Value;
use citroen_serve::{job_citroen_config, job_task, JobSpec, ServeConfig, Server};
use std::io::Cursor;

fn spec(id: &str, seed: u64, budget: usize) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        bench: "telecom_gsm".to_string(),
        tenant: "telecom_gsm".to_string(),
        budget,
        seed,
        seq_len: 16,
        batch: 1,
        oracle_prune: false,
        subsume: false,
        warm: 0,
        timeout_ms: 0,
    }
}

fn submit_line(s: &JobSpec) -> String {
    format!(
        "{{\"type\":\"submit\",\"job\":{{\"id\":\"{}\",\"bench\":\"{}\",\"budget\":{},\"seed\":{}}}}}",
        s.id, s.bench, s.budget, s.seed
    )
}

#[test]
fn concurrent_jobs_match_standalone_digests_with_cross_tenant_reuse() {
    // a (seed 5) and b (seed 6) run concurrently on two session threads;
    // c replays a's spec and runs after one of them finishes, so every one
    // of its compiles can hit the shared cache across tenants.
    let budget = 8;
    let a = spec("a", 5, budget);
    let b = spec("b", 6, budget);
    let c = spec("c", 5, budget);

    let server = Server::new(ServeConfig { max_concurrent: 2, ..Default::default() });
    let script = format!(
        "{}\n{}\n{}\n{{\"type\":\"shutdown\"}}\n",
        submit_line(&a),
        submit_line(&b),
        submit_line(&c)
    );
    let mut out: Vec<u8> = Vec::new();
    let summary = server.serve(Cursor::new(script), &mut out);
    assert_eq!(summary.done, 3, "all three jobs must complete");

    let text = String::from_utf8(out).unwrap();
    let results: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).unwrap())
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("result"))
        .collect();
    let field = |id: &str, key: &str| -> u64 {
        results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no result for {id}"))
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("no field {key} on {id}"))
    };

    // Standalone replays: the daemon's published config/task builders are
    // the exact session equivalents, so digests must match bit-for-bit.
    for s in [&a, &b, &c] {
        let mut task = job_task(s).unwrap();
        let (trace, _) = run_citroen(&mut task, s.budget, &job_citroen_config(s));
        assert_eq!(
            field(&s.id, "digest"),
            trace_digest(&trace),
            "job {} diverged from its standalone run",
            s.id
        );
        assert_eq!(field(&s.id, "measurements"), task.measurements as u64);
    }
    // Same seed ⇒ same trajectory; different seed ⇒ different one.
    assert_eq!(field("a", "digest"), field("c", "digest"));
    assert_ne!(field("a", "digest"), field("b", "digest"));

    // Cross-tenant sharing is real: c (the replay) found a's compiles in
    // the shared cache, so it compiled strictly less, and the cache counted
    // hits attributed across tenants.
    assert!(
        field("c", "compiles") < field("a", "compiles"),
        "replay tenant compiled {} vs {} — no shared-cache reuse",
        field("c", "compiles"),
        field("a", "compiles")
    );
    let stats = server.state().cache.stats();
    assert!(stats.cross_hits > 0, "no cross-tenant hits recorded: {stats:?}");
    assert!(stats.insertions > 0);
}
