//! Simulator integration tests: cost-model sensitivity to code quality,
//! platform ordering, and noise accounting.

use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
use citroen_ir::inst::{BinOp, CastKind, Operand};
use citroen_ir::module::{GlobalInit, Module};
use citroen_ir::types::{ScalarTy, Ty, I32, I64};
use citroen_ir::FuncId;
use citroen_sim::Platform;
use citroen_rt::rng::StdRng;
use citroen_rt::rng::SeedableRng;

fn scalar_vs_vector_module() -> Module {
    // Two functions computing the same 64-element i32 sum: scalar loop vs
    // 4-wide vector loop.
    let mut m = Module::new("m");
    let g = m.add_global("a", GlobalInit::I32s((0..64).collect()), false);

    let mut s = FunctionBuilder::new("scalar", vec![], Some(I64));
    let acc = s.alloca(8);
    s.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut s, Operand::imm64(64), |b, iv| {
        let a = b.gep(Operand::Global(g), iv, 4);
        let x = b.load(I32, a);
        let x64 = b.cast(CastKind::SExt, I64, x);
        let c = b.load(I64, acc);
        let n = b.bin(BinOp::Add, I64, c, x64);
        b.store(I64, n, acc);
    });
    let r = s.load(I64, acc);
    s.ret(Some(r));
    m.add_func(s.finish());

    let v4 = Ty::vector(ScalarTy::I32, 4);
    let mut v = FunctionBuilder::new("vector", vec![], Some(I64));
    let acc = v.alloca(8);
    v.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut v, Operand::imm64(16), |b, iv| {
        let off = b.bin(BinOp::Mul, I64, iv, Operand::imm64(16));
        let a = b.bin(BinOp::Add, I64, Operand::Global(g), off);
        let x = b.load(v4, a);
        let red = b.reduce(BinOp::Add, ScalarTy::I32, x);
        let r64 = b.cast(CastKind::SExt, I64, red);
        let c = b.load(I64, acc);
        let n = b.bin(BinOp::Add, I64, c, r64);
        b.store(I64, n, acc);
    });
    let r = v.load(I64, acc);
    v.ret(Some(r));
    m.add_func(v.finish());
    m
}

#[test]
fn vector_code_is_cheaper_and_equivalent() {
    let m = scalar_vs_vector_module();
    citroen_ir::verify::assert_valid(&m);
    for p in [Platform::tx2(), Platform::amd()] {
        let s = p.execute(&m, FuncId(0), &[]).unwrap();
        let v = p.execute(&m, FuncId(1), &[]).unwrap();
        assert_eq!(s.output.ret, v.output.ret, "same result on {}", p.model.name);
        assert!(
            v.cycles < s.cycles * 0.7,
            "{}: vector {} !<< scalar {}",
            p.model.name,
            v.cycles,
            s.cycles
        );
    }
}

#[test]
fn division_heavy_code_is_penalised() {
    let mut m = Module::new("m");
    let mut a = FunctionBuilder::new("divs", vec![], Some(I64));
    let acc = a.alloca(8);
    a.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut a, Operand::imm64(100), |b, iv| {
        let x = b.bin(BinOp::Add, I64, iv, Operand::imm64(100));
        let d = b.bin(BinOp::SDiv, I64, x, Operand::imm64(7));
        let c = b.load(I64, acc);
        let n = b.bin(BinOp::Add, I64, c, d);
        b.store(I64, n, acc);
    });
    let r = a.load(I64, acc);
    a.ret(Some(r));
    m.add_func(a.finish());

    let mut b2 = FunctionBuilder::new("adds", vec![], Some(I64));
    let acc = b2.alloca(8);
    b2.store(I64, Operand::imm64(0), acc);
    counted_loop_mem(&mut b2, Operand::imm64(100), |b, iv| {
        let x = b.bin(BinOp::Add, I64, iv, Operand::imm64(100));
        let d = b.bin(BinOp::AShr, I64, x, Operand::imm64(3));
        let c = b.load(I64, acc);
        let n = b.bin(BinOp::Add, I64, c, d);
        b.store(I64, n, acc);
    });
    let r = b2.load(I64, acc);
    b2.ret(Some(r));
    m.add_func(b2.finish());

    let p = Platform::tx2();
    let divs = p.execute(&m, FuncId(0), &[]).unwrap();
    let adds = p.execute(&m, FuncId(1), &[]).unwrap();
    // Same dynamic op count, very different cycles.
    assert!(divs.cycles > adds.cycles * 1.5, "{} !> {}", divs.cycles, adds.cycles);
}

#[test]
fn measurement_noise_is_seeded_and_bounded() {
    let m = scalar_vs_vector_module();
    let p = Platform::tx2();
    let e = p.execute(&m, FuncId(0), &[]).unwrap();
    let mut r1 = StdRng::seed_from_u64(7);
    let mut r2 = StdRng::seed_from_u64(7);
    let a: Vec<f64> = (0..5).map(|_| p.measure(&e, &mut r1)).collect();
    let b: Vec<f64> = (0..5).map(|_| p.measure(&e, &mut r2)).collect();
    assert_eq!(a, b, "same seed, same measurements");
    for s in &a {
        assert!((s / e.seconds - 1.0).abs() < 0.1);
    }
    let avg = p.measure_avg(&e, &mut r1, 10);
    assert!((avg / e.seconds - 1.0).abs() < 0.02);
}

#[test]
fn branchy_code_pays_for_unpredictability() {
    // Same work, predictable vs data-dependent branches.
    let mut m = Module::new("m");
    let noise: Vec<i32> = (0..256).map(|i: i32| (i.wrapping_mul(2654435761i64 as i32)) & 1).collect();
    let g = m.add_global("bits", GlobalInit::I32s(noise), false);
    for (name, use_data) in [("predictable", false), ("unpredictable", true)] {
        let mut f = FunctionBuilder::new(name, vec![], Some(I64));
        let acc = f.alloca(8);
        f.store(I64, Operand::imm64(0), acc);
        counted_loop_mem(&mut f, Operand::imm64(256), |b, iv| {
            let bit = if use_data {
                let a = b.gep(Operand::Global(g), iv, 4);
                let x = b.load(I32, a);
                let x64 = b.cast(CastKind::SExt, I64, x);
                b.cmp(citroen_ir::CmpOp::Eq, x64, Operand::imm64(1))
            } else {
                b.cmp(citroen_ir::CmpOp::Sge, iv, Operand::imm64(0)) // always true
            };
            let t = b.block();
            let j = b.block();
            b.cond_br(bit, t, j);
            b.switch_to(t);
            let c = b.load(I64, acc);
            let n = b.bin(BinOp::Add, I64, c, Operand::imm64(1));
            b.store(I64, n, acc);
            b.br(j);
            b.switch_to(j);
            // Balance the memory work on both paths.
            let _ = b.load(I64, acc);
        });
        let r = f.load(I64, acc);
        f.ret(Some(r));
        m.add_func(f.finish());
    }
    let p = Platform::tx2();
    let pred = p.execute(&m, m.func_by_name("predictable").unwrap(), &[]).unwrap();
    let unpred = p.execute(&m, m.func_by_name("unpredictable").unwrap(), &[]).unwrap();
    assert!(unpred.mispredict_rate > pred.mispredict_rate + 0.05);
    // Note: per-cycle comparison isn't meaningful here because the loads differ.
}
