//! # citroen-sim
//!
//! The hardware substrate standing in for the paper's evaluation platforms:
//! trace-based performance simulation with per-op-class costs, an L1/L2
//! cache hierarchy, a branch predictor, and a log-normal measurement-noise
//! model. See DESIGN.md §1 for why this substitution preserves the paper's
//! experimental structure.

#![warn(missing_docs)]

pub mod machine;
pub mod platform;

pub use machine::{all_models, amd_x86, tx2_a57, BranchPredictor, CacheConfig, CacheSim, MachineModel};
pub use platform::{sample_standard_normal, CostSink, Execution, Platform};
