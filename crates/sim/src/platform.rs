//! The platform abstraction: executing a binary once to produce deterministic
//! cycles, and sampling noisy "measurements" from it — the stand-in for the
//! paper's isolated runtime measurements on real hardware.

use crate::machine::{BranchPredictor, CacheSim, MachineModel};
use citroen_ir::interp::{self, EventSink, ExecOutput, Limits, OpClass, Trap, Value};
use citroen_ir::inst::FuncId;
use citroen_ir::module::Module;
use citroen_rt::rng::Rng;

/// Event sink that folds the dynamic trace into estimated cycles using a
/// machine model, an L1/L2 cache hierarchy and a branch predictor.
pub struct CostSink<'m> {
    model: &'m MachineModel,
    l1: CacheSim,
    l2: CacheSim,
    bpred: BranchPredictor,
    /// Accumulated cycles.
    pub cycles: f64,
    /// Dynamic operations per class.
    pub counts: [u64; interp::NUM_OP_CLASSES],
}

impl<'m> CostSink<'m> {
    /// Cold-state sink for one execution.
    pub fn new(model: &'m MachineModel) -> CostSink<'m> {
        CostSink {
            model,
            l1: CacheSim::new(model.l1),
            l2: CacheSim::new(model.l2),
            bpred: BranchPredictor::new(12),
            cycles: 0.0,
            counts: [0; interp::NUM_OP_CLASSES],
        }
    }

    /// L1 miss rate over the execution.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1.accesses == 0 {
            0.0
        } else {
            self.l1.misses as f64 / self.l1.accesses as f64
        }
    }

    /// Branch misprediction rate over the execution.
    pub fn mispredict_rate(&self) -> f64 {
        if self.bpred.predictions == 0 {
            0.0
        } else {
            self.bpred.mispredictions as f64 / self.bpred.predictions as f64
        }
    }
}

impl EventSink for CostSink<'_> {
    fn op(&mut self, class: OpClass, _lanes: u8) {
        self.counts[class.idx()] += 1;
        self.cycles += self.model.cost[class.idx()];
    }
    fn mem(&mut self, addr: u64, bytes: u32, _store: bool) {
        let l1_misses = self.l1.access(addr, bytes);
        if l1_misses > 0 {
            self.cycles += l1_misses as f64 * self.model.l1.miss_penalty;
            let l2_misses = self.l2.access(addr, bytes);
            self.cycles += l2_misses as f64 * self.model.l2.miss_penalty;
        }
    }
    fn branch(&mut self, site: u32, taken: bool) {
        if self.bpred.observe(site, taken) {
            self.cycles += self.model.mispredict_penalty;
        }
    }
}

/// Result of executing a binary once on a platform.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Estimated cycles (deterministic for a given binary + workload).
    pub cycles: f64,
    /// Estimated noise-free runtime in seconds.
    pub seconds: f64,
    /// Program output (return value + memory digest) for differential testing.
    pub output: ExecOutput,
    /// Dynamic op counts.
    pub counts: [u64; interp::NUM_OP_CLASSES],
    /// L1 miss rate.
    pub l1_miss_rate: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
}

/// An evaluation platform: machine model + measurement-noise characteristics.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The machine model.
    pub model: MachineModel,
    /// Multiplicative log-normal measurement noise (σ of ln-space). The paper
    /// runs each binary 3× and averages; our default σ matches the few-percent
    /// run-to-run variation typical of such measurements.
    pub noise_sigma: f64,
    /// Interpreter limits.
    pub limits: Limits,
}

impl Platform {
    /// Platform over `model` with default noise.
    pub fn new(model: MachineModel) -> Platform {
        Platform { model, noise_sigma: 0.008, limits: Limits::default() }
    }

    /// The TX2/Cortex-A57 platform of the paper's evaluation.
    pub fn tx2() -> Platform {
        Platform::new(crate::machine::tx2_a57())
    }

    /// The AMD x86 platform of the paper's evaluation.
    pub fn amd() -> Platform {
        Platform::new(crate::machine::amd_x86())
    }

    /// Execute `entry(args…)` in `m` once, producing deterministic cycles.
    pub fn execute(&self, m: &Module, entry: FuncId, args: &[Value]) -> Result<Execution, Trap> {
        let _exec_span = citroen_telemetry::span("sim.execute");
        let mut sink = CostSink::new(&self.model);
        let output = interp::run(m, entry, args, &mut sink, self.limits)?;
        citroen_telemetry::value("sim.cycles", sink.cycles as u64);
        let seconds = sink.cycles / (self.model.freq_ghz * 1e9);
        Ok(Execution {
            cycles: sink.cycles,
            seconds,
            l1_miss_rate: sink.l1_miss_rate(),
            mispredict_rate: sink.mispredict_rate(),
            counts: sink.counts,
            output,
        })
    }

    /// Sample one noisy runtime measurement (seconds) for an execution.
    /// Models run-to-run variation: multiplicative log-normal noise.
    pub fn measure(&self, exec: &Execution, rng: &mut impl Rng) -> f64 {
        let z: f64 = sample_standard_normal(rng);
        exec.seconds * (self.noise_sigma * z).exp()
    }

    /// The paper's protocol: measure `reps` times and average.
    pub fn measure_avg(&self, exec: &Execution, rng: &mut impl Rng, reps: u32) -> f64 {
        (0..reps).map(|_| self.measure(exec, rng)).sum::<f64>() / reps as f64
    }
}

/// Box–Muller standard normal (keeps `rand` at the plain-`Rng` API so we do
/// not need a distributions crate).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use citroen_ir::builder::{counted_loop_mem, FunctionBuilder};
    use citroen_ir::inst::{BinOp, Operand};
    use citroen_ir::module::GlobalInit;
    use citroen_ir::types::{I32, I64};
    use citroen_rt::rng::StdRng;
    use citroen_rt::rng::SeedableRng;

    fn loopy_module(n: i64) -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::I32s((0..1024).collect()), false);
        let mut b = FunctionBuilder::new("sum", vec![], Some(I64));
        let acc = b.alloca(8);
        b.store(I64, Operand::imm64(0), acc);
        counted_loop_mem(&mut b, Operand::imm64(n), |b, iv| {
            let masked = b.bin(BinOp::And, I64, iv, Operand::imm64(1023));
            let addr = b.gep(Operand::Global(g), masked, 4);
            let x = b.load(I32, addr);
            let x64 = b.cast(citroen_ir::CastKind::SExt, I64, x);
            let a0 = b.load(I64, acc);
            let a1 = b.bin(BinOp::Add, I64, a0, x64);
            b.store(I64, a1, acc);
        });
        let r = b.load(I64, acc);
        b.ret(Some(r));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn execution_is_deterministic() {
        let p = Platform::tx2();
        let m = loopy_module(500);
        let a = p.execute(&m, FuncId(0), &[]).unwrap();
        let b = p.execute(&m, FuncId(0), &[]).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.output, b.output);
        assert!(a.cycles > 0.0 && a.seconds > 0.0);
    }

    #[test]
    fn measurements_are_noisy_but_unbiased() {
        let p = Platform::tx2();
        let m = loopy_module(200);
        let e = p.execute(&m, FuncId(0), &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..2000).map(|_| p.measure(&e, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean / e.seconds - 1.0).abs() < 0.01, "mean {mean} vs {}", e.seconds);
        let distinct: std::collections::HashSet<u64> =
            samples.iter().map(|s| s.to_bits()).collect();
        assert!(distinct.len() > 1900);
    }

    #[test]
    fn platforms_rank_costs_differently_but_scale_with_work() {
        let small = loopy_module(100);
        let big = loopy_module(1000);
        for p in [Platform::tx2(), Platform::amd()] {
            let s = p.execute(&small, FuncId(0), &[]).unwrap();
            let b = p.execute(&big, FuncId(0), &[]).unwrap();
            assert!(b.cycles > 5.0 * s.cycles, "{}: {} vs {}", p.model.name, b.cycles, s.cycles);
        }
        // AMD core is faster per cycle count on the same program.
        let t = Platform::tx2().execute(&small, FuncId(0), &[]).unwrap();
        let a = Platform::amd().execute(&small, FuncId(0), &[]).unwrap();
        assert!(a.seconds < t.seconds);
    }

    #[test]
    fn cache_behaviour_is_visible() {
        // A strided walk over a large array misses much more than a dense one.
        let mut m = Module::new("m");
        let g = m.add_global("a", GlobalInit::Zero(1 << 20), false);
        for (name, stride) in [("dense", 8i64), ("sparse", 4096)] {
            let mut b = FunctionBuilder::new(name, vec![], Some(I64));
            let acc = b.alloca(8);
            b.store(I64, Operand::imm64(0), acc);
            counted_loop_mem(&mut b, Operand::imm64(200), |b, iv| {
                let off = b.bin(BinOp::Mul, I64, iv, Operand::imm64(stride));
                let masked = b.bin(BinOp::And, I64, off, Operand::imm64((1 << 20) - 8));
                let addr = b.bin(BinOp::Add, I64, Operand::Global(g), masked);
                let x = b.load(I64, addr);
                let a0 = b.load(I64, acc);
                let a1 = b.bin(BinOp::Add, I64, a0, x);
                b.store(I64, a1, acc);
            });
            let r = b.load(I64, acc);
            b.ret(Some(r));
            m.add_func(b.finish());
        }
        let p = Platform::tx2();
        let dense = p.execute(&m, m.func_by_name("dense").unwrap(), &[]).unwrap();
        let sparse = p.execute(&m, m.func_by_name("sparse").unwrap(), &[]).unwrap();
        assert!(sparse.l1_miss_rate > dense.l1_miss_rate * 2.0);
        assert!(sparse.cycles > dense.cycles);
    }
}
