//! Machine models: per-op-class costs, cache geometry, branch prediction.
//!
//! Two profiles stand in for the paper's evaluation platforms (§5.4.2):
//! an ARM Cortex-A57 (NVIDIA Jetson TX2) and an AMD x86 server core. The
//! numbers are public-microarchitecture-guide approximations; what matters
//! for reproducing the paper's *shape* is that vector ops amortise lanes,
//! divisions are expensive, calls have overhead, and memory behaviour is
//! level-dependent.

use citroen_ir::interp::{OpClass, NUM_OP_CLASSES};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Associativity.
    pub ways: u32,
    /// Extra cycles on a miss at this level (added to the access).
    pub miss_penalty: f64,
}

/// A complete machine model.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Core frequency in GHz (cycles → seconds).
    pub freq_ghz: f64,
    /// Cycles per dynamic operation, per op class. Vector classes are per
    /// *operation* (lanes amortised) — the vectorisation payoff.
    pub cost: [f64; NUM_OP_CLASSES],
    /// Branch mispredict penalty in cycles.
    pub mispredict_penalty: f64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
}

fn cost_table(entries: &[(OpClass, f64)]) -> [f64; NUM_OP_CLASSES] {
    let mut t = [1.0; NUM_OP_CLASSES];
    for (c, v) in entries {
        t[c.idx()] = *v;
    }
    t
}

/// ARM Cortex-A57-class core (Jetson TX2 profile): in-order-ish costs, slow
/// divide, 15-cycle mispredict, 32 KiB L1 / 2 MiB L2.
pub fn tx2_a57() -> MachineModel {
    use OpClass::*;
    MachineModel {
        name: "tx2_a57",
        freq_ghz: 2.0,
        cost: cost_table(&[
            (IntAlu, 1.0),
            (IntMul, 3.5),
            (IntDiv, 18.0),
            (FpAlu, 3.0),
            (FpMul, 3.5),
            (FpDiv, 17.0),
            (Cast, 1.0),
            (Load, 2.0),
            (Store, 1.0),
            (Br, 1.0),
            (CondBr, 1.0),
            (Call, 9.0),
            (Ret, 3.0),
            (Phi, 0.4),
            (Select, 1.0),
            (VecIntAlu, 1.4),
            (VecIntMul, 4.5),
            (VecFp, 4.5),
            (VecLoad, 2.5),
            (VecStore, 1.5),
            (Reduce, 4.0),
            (Splat, 1.2),
            (Alloca, 1.0),
        ]),
        mispredict_penalty: 15.0,
        l1: CacheConfig { size: 32 * 1024, line: 64, ways: 2, miss_penalty: 18.0 },
        l2: CacheConfig { size: 2 * 1024 * 1024, line: 64, ways: 16, miss_penalty: 130.0 },
    }
}

/// AMD Zen-class x86 server core: faster divide/mul, better memory, 17-cycle
/// mispredict, 32 KiB L1 / 512 KiB L2.
pub fn amd_x86() -> MachineModel {
    use OpClass::*;
    MachineModel {
        name: "amd_x86",
        freq_ghz: 2.25,
        cost: cost_table(&[
            (IntAlu, 0.8),
            (IntMul, 2.8),
            (IntDiv, 13.0),
            (FpAlu, 2.6),
            (FpMul, 3.0),
            (FpDiv, 12.0),
            (Cast, 0.8),
            (Load, 1.6),
            (Store, 0.9),
            (Br, 0.7),
            (CondBr, 0.8),
            (Call, 7.0),
            (Ret, 2.2),
            (Phi, 0.3),
            (Select, 0.8),
            (VecIntAlu, 1.1),
            (VecIntMul, 3.4),
            (VecFp, 3.6),
            (VecLoad, 2.0),
            (VecStore, 1.2),
            (Reduce, 3.2),
            (Splat, 1.0),
            (Alloca, 0.9),
        ]),
        mispredict_penalty: 17.0,
        l1: CacheConfig { size: 32 * 1024, line: 64, ways: 8, miss_penalty: 14.0 },
        l2: CacheConfig { size: 512 * 1024, line: 64, ways: 8, miss_penalty: 46.0 },
    }
}

/// All built-in machine models.
pub fn all_models() -> Vec<MachineModel> {
    vec![tx2_a57(), amd_x86()]
}

/// A set-associative LRU cache simulator.
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`; u64::MAX = invalid. LRU order per set is
    /// kept via per-slot timestamps.
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    sets: u32,
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheSim {
    /// New cold cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> CacheSim {
        let sets = (cfg.size / (cfg.line * cfg.ways)).max(1);
        let slots = (sets * cfg.ways) as usize;
        CacheSim {
            cfg,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            clock: 0,
            sets,
            accesses: 0,
            misses: 0,
        }
    }

    /// Access `bytes` at `addr`; returns the number of line misses.
    pub fn access(&mut self, addr: u64, bytes: u32) -> u32 {
        let first = addr / self.cfg.line as u64;
        let last = (addr + bytes.max(1) as u64 - 1) / self.cfg.line as u64;
        let mut misses = 0;
        for line in first..=last {
            self.accesses += 1;
            if !self.touch(line) {
                misses += 1;
                self.misses += 1;
            }
        }
        misses
    }

    fn touch(&mut self, line: u64) -> bool {
        self.clock += 1;
        let set = (line % self.sets as u64) as usize;
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        // Miss: evict LRU.
        let lru = (0..ways).min_by_key(|w| self.stamps[base + w]).unwrap();
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }
}

/// A table of 2-bit saturating counters indexed by branch-site hash.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    /// Number of predictions made.
    pub predictions: u64,
    /// Number of mispredictions.
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Predictor with `2^bits` counters initialised weakly-taken.
    pub fn new(bits: u32) -> BranchPredictor {
        BranchPredictor {
            table: vec![2; 1 << bits],
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Record a branch outcome; returns whether it was mispredicted.
    pub fn observe(&mut self, site: u32, taken: bool) -> bool {
        let idx = (site as usize).wrapping_mul(0x9E37_79B9) % self.table.len();
        let c = &mut self.table[idx];
        let predicted_taken = *c >= 2;
        self.predictions += 1;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let miss = predicted_taken != taken;
        if miss {
            self.mispredictions += 1;
        }
        miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_basics() {
        let mut c = CacheSim::new(CacheConfig { size: 1024, line: 64, ways: 2, miss_penalty: 10.0 });
        assert_eq!(c.access(0, 8), 1); // cold miss
        assert_eq!(c.access(8, 8), 0); // same line
        assert_eq!(c.access(64, 8), 1); // next line
        assert_eq!(c.access(0, 8), 0); // still resident
        // A straddling access touches two lines.
        assert_eq!(c.access(127, 2), 1); // line1 resident, line2 miss
    }

    #[test]
    fn cache_evicts_lru() {
        // 2 sets × 2 ways, 64B lines → lines mapping to set 0: 0, 2, 4...
        let mut c = CacheSim::new(CacheConfig { size: 256, line: 64, ways: 2, miss_penalty: 1.0 });
        assert_eq!(c.access(0, 1), 1); // line 0 -> set 0
        assert_eq!(c.access(128, 1), 1); // line 2 -> set 0
        assert_eq!(c.access(0, 1), 0); // hit, refreshes line 0
        assert_eq!(c.access(256, 1), 1); // line 4 -> set 0, evicts line 2 (LRU)
        assert_eq!(c.access(0, 1), 0); // line 0 still resident
        assert_eq!(c.access(128, 1), 1); // line 2 was evicted
    }

    #[test]
    fn predictor_learns_biased_branches() {
        let mut p = BranchPredictor::new(10);
        for _ in 0..100 {
            p.observe(42, true);
        }
        let before = p.mispredictions;
        for _ in 0..100 {
            p.observe(42, true);
        }
        assert_eq!(p.mispredictions, before, "steady taken branch mispredicts no more");
        // Alternating pattern mispredicts a lot.
        let mut p2 = BranchPredictor::new(10);
        for i in 0..100 {
            p2.observe(7, i % 2 == 0);
        }
        assert!(p2.mispredictions > 30);
    }

    #[test]
    fn models_are_sane() {
        for m in all_models() {
            assert!(m.freq_ghz > 0.5);
            assert!(m.cost[OpClass::IntDiv.idx()] > m.cost[OpClass::IntAlu.idx()]);
            assert!(m.cost[OpClass::VecIntAlu.idx()] < 4.0 * m.cost[OpClass::IntAlu.idx()]);
            assert!(m.l2.size > m.l1.size);
            assert!(m.l2.miss_penalty > m.l1.miss_penalty);
        }
    }
}
