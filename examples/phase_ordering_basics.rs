//! Phase-ordering mechanics: compile one kernel under different pass orders,
//! inspect the compilation statistics (`-stats-json` style) and watch the
//! Fig. 5.1 interaction — `instcombine` between `mem2reg` and
//! `slp-vectorizer` defeats vectorisation.
//!
//! ```sh
//! cargo run --release --example phase_ordering_basics
//! ```

use citroen::ir::interp::run_counting;
use citroen::passes::{PassManager, Registry};

fn main() {
    let bench = citroen::suite::kernels::telecom_gsm();
    let reg = Registry::full();
    let pm = PassManager::new(&reg);
    println!("registry: {} passes: {:?}\n", reg.len(), reg.names());

    let orders = [
        ("good (slp before instcombine)",
         "mem2reg,loop-rotate,loop-unroll,instsimplify,slp-vectorizer,instcombine"),
        ("bad (instcombine widens first)",
         "mem2reg,loop-rotate,loop-unroll,instsimplify,instcombine,slp-vectorizer"),
    ];
    for (label, seq) in orders {
        let res = pm.compile_named(&bench.modules[0], seq).expect("valid sequence");
        let linked = bench.link_with(Some(std::slice::from_ref(&res.module)));
        let entry = bench.entry_in(&linked);
        let (out, sink) = run_counting(&linked, entry, &bench.args).unwrap();
        println!("== {label} ==");
        println!("sequence      : {seq}");
        println!("stats (json)  : {}", res.stats.to_json());
        println!("dynamic ops   : {}", out.steps);
        println!(
            "vector insts  : {} loads, {} muls, {} reduces",
            sink.count(citroen::ir::interp::OpClass::VecLoad),
            sink.count(citroen::ir::interp::OpClass::VecIntMul),
            sink.count(citroen::ir::interp::OpClass::Reduce),
        );
        println!("fingerprint   : {:#018x}\n", res.fingerprint);
    }
    println!(
        "Both orders contain identical passes; only their order differs.\n\
         The SLP statistics expose the difference before any profiling —\n\
         the observation CITROEN's cost model is built on (paper §5.2)."
    );
}
