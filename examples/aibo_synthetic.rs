//! AIBO on a high-dimensional synthetic function (thesis Ch. 4): the same
//! GP + UCB machinery, with and without heuristic AF-maximiser
//! initialisation, against plain random search.
//!
//! ```sh
//! cargo run --release --example aibo_synthetic
//! ```

use citroen::bo::aibo::presets;
use citroen::bo::{run_aibo, run_random_search, AiboConfig};
use citroen::synthetic::functions::ackley;

fn main() {
    let fun = ackley(30);
    let budget = 200;
    println!("function: {} over [-5,10]^30, budget {budget} evaluations\n", fun.name);

    let mut evals = 0u32;
    let mut obj = |x: &[f64]| {
        evals += 1;
        (fun.f)(x)
    };

    let aibo = run_aibo(&fun.bounds, &AiboConfig::default(), 0, budget, &mut obj);
    println!("AIBO        best = {:>8.4}  (algo time {:?})", aibo.best(), aibo.algo_time);

    let mut obj2 = |x: &[f64]| (fun.f)(x);
    let bograd = run_aibo(&fun.bounds, &presets::bo_grad(500, 2), 0, budget, &mut obj2);
    println!("BO-grad     best = {:>8.4}  (random AF-maximiser init)", bograd.best());

    let mut obj3 = |x: &[f64]| (fun.f)(x);
    let rnd = run_random_search(&fun.bounds, 0, budget, &mut obj3);
    println!("Random      best = {:>8.4}", rnd.best());

    // Which initialisation strategy won each iteration's AF contest?
    let mut wins = [0usize; 3];
    for r in &aibo.records {
        wins[r.winner] += 1;
    }
    println!(
        "\nAIBO AF-contest wins: cma-es {}, ga {}, random {}",
        wins[0], wins[1], wins[2]
    );
    println!("(the heuristic initialisations should dominate — thesis Fig. 4.8)");
}
