//! Quickstart: autotune the phase ordering of the GSM kernel with CITROEN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use citroen::core::{run_citroen, CitroenConfig, Task, TaskConfig};
use citroen::passes::Registry;
use citroen::sim::Platform;

fn main() {
    // 1. Pick a benchmark (the paper's motivating GSM kernel), a platform
    //    (simulated Jetson TX2) and the pass registry.
    let bench = citroen::suite::kernels::telecom_gsm();
    let mut task = Task::new(
        bench,
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 24, ..Default::default() },
    );
    println!("benchmark : {}", task.benchmark().name);
    println!("-O0 time  : {:.3} ms", task.o0_seconds * 1e3);
    println!("-O3 time  : {:.3} ms (baseline)", task.o3_seconds * 1e3);

    // 2. Run CITROEN with a budget of 100 runtime measurements (the paper's
    //    constrained-budget setting). Results vary by seed; the experiment
    //    harness averages over seeds.
    let cfg = CitroenConfig { seed: 1, ..Default::default() };
    let (trace, impact) = run_citroen(&mut task, 100, &cfg);

    // 3. Report.
    let best = trace.best();
    println!("best time : {:.3} ms  (speedup over -O3: {:.3}x)", best * 1e3, task.speedup(best));
    println!(
        "budget    : {} measurements, {} compilations, {} cache hits",
        task.measurements, task.compilations, task.cache_hits
    );
    let seq = &trace.best_seqs[0];
    println!("best pass sequence:\n  {}", task.registry.seq_to_string(seq));
    println!("\nmost impactful compilation statistics (ARD ranking):");
    for (stat, ls) in impact.ranked.iter().take(5) {
        println!("  {stat:<40} lengthscale {ls:.4}");
    }
}
