//! Multi-module autotuning (thesis contribution 3): tune a SPEC-like
//! program made of five source modules, letting the adaptive allocator
//! decide which module each runtime measurement should be spent on.
//!
//! ```sh
//! cargo run --release --example multimodule_project
//! ```

use citroen::core::{run_multimodule, Allocation, MultiModuleConfig, Task, TaskConfig};
use citroen::passes::Registry;
use citroen::sim::Platform;

fn main() {
    let bench = citroen::suite::speclike::spec_imgproc();
    let module_names: Vec<String> = bench.modules.iter().map(|m| m.name.clone()).collect();
    let mut task = Task::new(
        bench,
        Registry::full(),
        Platform::tx2(),
        TaskConfig { seq_len: 16, ..Default::default() },
    );

    println!("project modules : {module_names:?}");
    println!(
        "hot modules     : {:?} (perf-style profile of the -O3 build)",
        task.hot_modules.iter().map(|&i| &module_names[i]).collect::<Vec<_>>()
    );
    // Give the allocator a real decision even if profiling found one very hot
    // module.
    if task.hot_modules.len() < 2 {
        let extra = (0..module_names.len()).find(|i| !task.hot_modules.contains(i)).unwrap();
        task.hot_modules.push(extra);
    }

    for policy in [Allocation::Adaptive, Allocation::RoundRobin] {
        let mut t = Task::new(
            citroen::suite::speclike::spec_imgproc(),
            Registry::full(),
            Platform::tx2(),
            TaskConfig { seq_len: 16, ..Default::default() },
        );
        t.hot_modules = task.hot_modules.clone();
        let cfg = MultiModuleConfig { allocation: policy, ..Default::default() };
        let res = run_multimodule(&mut t, 25, &cfg);
        println!("\npolicy {policy:?}:");
        println!("  best runtime : {:.3} ms ({:.3}x over -O3)",
            res.trace.best() * 1e3, t.speedup(res.trace.best()));
        let mut counts = vec![0usize; module_names.len()];
        for &m in res.allocation_log.iter().filter(|&&m| m != usize::MAX) {
            counts[t.hot_modules[m]] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            if *c > 0 {
                println!("  {:<12} got {c} measurements", module_names[i]);
            }
        }
    }
}
